//! Property-based tests (proptest) of cross-crate invariants.

use frac::dataset::dataset::{Column, Dataset, MISSING_CODE};
use frac::dataset::io::{from_tsv, to_tsv};
use frac::dataset::split::{derive_seed, k_fold, train_test_split};
use frac::dataset::{Schema, Value};
use frac::eval::auc::{auc_from_curve, auc_from_scores, roc_curve};
use frac::projection::{JlMatrixKind, JlTransform};
use proptest::prelude::*;

// ---------- strategies ----------

fn arb_real_column(n: usize) -> impl Strategy<Value = Column> {
    prop::collection::vec(
        prop_oneof![
            8 => (-1e6f64..1e6).prop_map(|x| x),
            1 => Just(f64::NAN),
        ],
        n,
    )
    .prop_map(|v| Column::Real(v.into()))
}

fn arb_cat_column(n: usize) -> impl Strategy<Value = Column> {
    (2u32..6).prop_flat_map(move |arity| {
        prop::collection::vec(
            prop_oneof![
                8 => (0u32..arity).prop_map(|c| c),
                1 => Just(MISSING_CODE),
            ],
            n,
        )
        .prop_map(move |codes| Column::Categorical { arity, codes: codes.into() })
    })
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..12, 1usize..6).prop_flat_map(|(n_rows, n_cols)| {
        prop::collection::vec(
            prop_oneof![arb_real_column(n_rows), arb_cat_column(n_rows)],
            n_cols,
        )
        .prop_map(|columns| {
            let schema = Schema::new(
                columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| frac::dataset::Feature::new(format!("f{i}"), c.kind()))
                    .collect(),
            );
            Dataset::new(schema, columns)
        })
    })
}

// ---------- dataset / io ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tsv_roundtrip_preserves_data(d in arb_dataset()) {
        let text = to_tsv(&d);
        let back = from_tsv(&text).unwrap();
        prop_assert_eq!(back.schema(), d.schema());
        prop_assert_eq!(back.n_rows(), d.n_rows());
        for r in 0..d.n_rows() {
            for j in 0..d.n_features() {
                match (d.value(r, j), back.value(r, j)) {
                    (Value::Real(a), Value::Real(b)) => {
                        // Round-trip through decimal text: equal up to
                        // formatting precision.
                        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
                    }
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn row_selection_composes(d in arb_dataset(), seed in 0u64..1000) {
        // Double reversal is the identity. Compare through the TSV
        // rendering: NaN (missing) breaks `PartialEq` reflexivity but
        // serializes canonically as `?`.
        let n = d.n_rows();
        let idx: Vec<usize> = (0..n).rev().collect();
        let back = d.select_rows(&idx).select_rows(&idx);
        prop_assert_eq!(to_tsv(&back), to_tsv(&d));
        let _ = seed;
    }

    #[test]
    fn split_partitions_rows(n in 2usize..200, frac in 0.01f64..0.99, seed in 0u64..500) {
        let s = train_test_split(n, frac, seed);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert!(!s.train.is_empty());
        prop_assert!(!s.test.is_empty());
    }

    #[test]
    fn k_fold_holdouts_partition(n in 2usize..100, k in 2usize..12, seed in 0u64..200) {
        let folds = k_fold(n, k, seed);
        let mut holdouts: Vec<usize> = folds.iter().flat_map(|f| f.holdout.clone()).collect();
        holdouts.sort_unstable();
        prop_assert_eq!(holdouts, (0..n).collect::<Vec<_>>());
        for f in &folds {
            for h in &f.holdout {
                prop_assert!(!f.train.contains(h));
            }
        }
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct(seed in any::<u64>(), a in 0u64..10_000, b in 0u64..10_000) {
        prop_assert_eq!(derive_seed(seed, a), derive_seed(seed, a));
        if a != b {
            prop_assert_ne!(derive_seed(seed, a), derive_seed(seed, b));
        }
    }
}

// ---------- AUC ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn auc_bounded_and_antisymmetric(
        scores in prop::collection::vec(-1e3f64..1e3, 2..50),
        flip in prop::collection::vec(any::<bool>(), 2..50),
    ) {
        let n = scores.len().min(flip.len());
        let scores = &scores[..n];
        let labels = &flip[..n];
        let auc = auc_from_scores(scores, labels);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating scores flips the ranking: AUC → 1 − AUC (when both
        // classes are present).
        let n_pos = labels.iter().filter(|&&l| l).count();
        if n_pos > 0 && n_pos < n {
            let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
            let auc_neg = auc_from_scores(&neg, labels);
            prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_auc_equals_curve_area(
        scores in prop::collection::vec(-100f64..100.0, 4..40),
        labels in prop::collection::vec(any::<bool>(), 4..40),
    ) {
        let n = scores.len().min(labels.len());
        let (scores, labels) = (&scores[..n], &labels[..n]);
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0 && n_pos < n);
        let a1 = auc_from_scores(scores, labels);
        let a2 = auc_from_curve(&roc_curve(scores, labels));
        prop_assert!((a1 - a2).abs() < 1e-9, "{} vs {}", a1, a2);
    }

    #[test]
    fn auc_invariant_under_monotone_maps(
        scores in prop::collection::vec(-50f64..50.0, 4..40),
        labels in prop::collection::vec(any::<bool>(), 4..40),
        scale in 0.001f64..100.0,
        offset in -100f64..100.0,
    ) {
        let n = scores.len().min(labels.len());
        let (scores, labels) = (&scores[..n], &labels[..n]);
        let mapped: Vec<f64> = scores.iter().map(|&s| s * scale + offset).collect();
        prop_assert_eq!(auc_from_scores(scores, labels), auc_from_scores(&mapped, labels));
    }
}

// ---------- JL projection ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn jl_projection_is_linear(
        x in prop::collection::vec(-10f64..10.0, 16),
        y in prop::collection::vec(-10f64..10.0, 16),
        seed in any::<u64>(),
    ) {
        let t = JlTransform::new(8, JlMatrixKind::Gaussian, seed);
        let px = t.project_vector(&x);
        let py = t.project_vector(&y);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let psum = t.project_vector(&sum);
        for i in 0..8 {
            prop_assert!((psum[i] - (px[i] + py[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn jl_norm_unbiased_on_average(seed in 0u64..64) {
        // E‖Rx‖² = ‖x‖²; with k = 256 the relative error concentrates.
        let x: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64 / 11.0 - 0.5).collect();
        let norm: f64 = x.iter().map(|v| v * v).sum();
        let t = JlTransform::new(256, JlMatrixKind::Rademacher, seed);
        let p = t.project_vector(&x);
        let pnorm: f64 = p.iter().map(|v| v * v).sum();
        prop_assert!((pnorm / norm - 1.0).abs() < 0.5, "ratio {}", pnorm / norm);
    }
}
