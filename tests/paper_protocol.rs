//! Integration tests of the paper's experimental protocol and its headline
//! resource claims, at miniature scale.

use frac::core::{FeatureSelector, FracConfig, SolverStrategy, Variant};
use frac::eval::replicates::{aggregate, run_replicates};
use frac::synth::registry::LabeledDataset;
use frac::synth::{ExpressionConfig, ExpressionGenerator};

fn mini_dataset() -> LabeledDataset {
    let g = ExpressionGenerator::new(ExpressionConfig {
        n_features: 40,
        n_modules: 6,
        relevant_fraction: 0.85,
        anomaly_modules: 2,
        anomaly_shift: 2.8,
        noise_sd: 0.7,
        structure_seed: 5,
        ..ExpressionConfig::default()
    });
    let (data, labels) = g.generate(30, 10, 9);
    LabeledDataset { name: "mini".into(), data, labels }
}

#[test]
fn replicate_splits_follow_two_thirds_rule() {
    let ld = mini_dataset();
    let results = run_replicates(&ld, &Variant::Full, &FracConfig::default(), 2, 1);
    for r in &results {
        // 30 normals → 20 train, 10 test normals + 10 anomalies.
        assert_eq!(r.ns.len(), 20);
        assert_eq!(r.labels.iter().filter(|&&l| !l).count(), 10);
        assert_eq!(r.labels.iter().filter(|&&l| l).count(), 10);
    }
}

#[test]
fn filtering_preserves_auc_at_fraction_of_cost() {
    // The paper's central claim, in miniature: an ensemble of random
    // filtering keeps the AUC while cutting compute and memory hard.
    let ld = mini_dataset();
    // The paper's Time%/Mem% columns model the d-dominated primal solver
    // cost; the Gram dual strategy (auto-picked at this miniature scale)
    // makes per-solve cost n-dominated, which compresses the analytic
    // ratio between Full and its filtered members. Pin the primal strategy
    // so this test exercises the protocol claim under the paper's cost
    // model; Gram-vs-primal agreement is gated in pool_equivalence.
    let cfg = FracConfig::default().with_solver_strategy(SolverStrategy::Primal);
    let full = aggregate(&run_replicates(&ld, &Variant::Full, &cfg, 3, 2));
    // p = 0.3 at this miniature scale keeps 12 of 40 features per member —
    // proportionally more than the paper's 5% of 20k, because a 40-feature
    // problem has far less redundancy to hide behind. Member count is kept
    // at 3: per-model solver epochs grow as the input dimension shrinks
    // (see EXPERIMENTS.md's Table IV note), which at this tiny scale erodes
    // the per-member savings that dominate at real scale.
    let ens = aggregate(&run_replicates(
        &ld,
        &Variant::Ensemble {
            base: Box::new(Variant::FullFilter {
                selector: FeatureSelector::Random,
                p: 0.3,
            }),
            members: 3,
        },
        &cfg,
        3,
        2,
    ));
    assert!(full.mean_auc > 0.7, "full AUC {}", full.mean_auc);
    let auc_frac = ens.auc_fraction_of(&full);
    assert!(auc_frac > 0.8, "AUC fraction {auc_frac}");
    let time_frac = ens.time_fraction_of(&full);
    assert!(time_frac < 0.95, "time fraction {time_frac}");
    let mem_frac = ens.mem_fraction_of(&full);
    assert!(mem_frac < 0.95, "memory fraction {mem_frac}");
}

#[test]
fn diverse_at_half_p_roughly_halves_memory() {
    // Table IV's signature: Diverse p=½ sits near 50% memory, far from the
    // tiny filtering footprints.
    let ld = mini_dataset();
    // Pinned to primal for the same reason as
    // `filtering_preserves_auc_at_fraction_of_cost`: Table IV's ratios are
    // stated under the d-dominated primal cost model.
    let cfg = FracConfig::default().with_solver_strategy(SolverStrategy::Primal);
    let full = aggregate(&run_replicates(&ld, &Variant::Full, &cfg, 2, 3));
    let diverse = aggregate(&run_replicates(
        &ld,
        &Variant::Diverse { p: 0.5, models_per_feature: 1 },
        &cfg,
        2,
        3,
    ));
    let mem_frac = diverse.mem_fraction_of(&full);
    assert!(
        (0.3..0.9).contains(&mem_frac),
        "diverse memory fraction {mem_frac} should be near ½"
    );
    // At miniature scale, time savings are partly eaten by slower solver
    // convergence on the reduced problems (the full-scale benches show the
    // paper's ≈0.35 ratio); just require it not blow up.
    let time_frac = diverse.time_fraction_of(&full);
    assert!(time_frac < 1.6, "diverse time fraction {time_frac}");
}

#[test]
fn ensembles_stabilize_random_filtering() {
    // §III-B-1: single small random filters are unstable across replicates;
    // the 10-member median ensemble tightens the spread. Use AUC dispersion
    // over replicates as the instability proxy.
    let ld = mini_dataset();
    let cfg = FracConfig::default();
    let single = aggregate(&run_replicates(
        &ld,
        &Variant::FullFilter { selector: FeatureSelector::Random, p: 0.08 },
        &cfg,
        6,
        4,
    ));
    let ensemble = aggregate(&run_replicates(
        &ld,
        &Variant::Ensemble {
            base: Box::new(Variant::FullFilter {
                selector: FeatureSelector::Random,
                p: 0.08,
            }),
            members: 10,
        },
        &cfg,
        6,
        4,
    ));
    assert!(
        ensemble.sd_auc <= single.sd_auc + 0.02,
        "ensemble sd {} vs single sd {}",
        ensemble.sd_auc,
        single.sd_auc
    );
    assert!(ensemble.mean_auc >= single.mean_auc - 0.05);
}

#[test]
fn resource_model_tracks_wall_clock_ordering() {
    // The analytic flops metric must order methods the same way real time
    // does (full > diverse > filter), otherwise the Time % columns would be
    // fiction.
    let ld = mini_dataset();
    let cfg = FracConfig::default();
    let full = aggregate(&run_replicates(&ld, &Variant::Full, &cfg, 2, 5));
    let diverse = aggregate(&run_replicates(
        &ld,
        &Variant::Diverse { p: 0.5, models_per_feature: 1 },
        &cfg,
        2,
        5,
    ));
    let filter = aggregate(&run_replicates(
        &ld,
        &Variant::FullFilter { selector: FeatureSelector::Random, p: 0.1 },
        &cfg,
        2,
        5,
    ));
    // Filtering is unambiguously cheapest in both the analytic and the
    // measured metric; full-vs-diverse ordering at this miniature scale is
    // dominated by per-model convergence, so it is not asserted.
    assert!(full.mean_flops > filter.mean_flops);
    assert!(diverse.mean_flops > filter.mean_flops);
    assert!(full.mean_wall_s >= filter.mean_wall_s);
}
