//! End-to-end integration tests: the complete pipeline — synthetic data →
//! per-feature models → error models → normalized surprisal → AUC — across
//! data kinds and variants.

use frac::core::{run_variant, FeatureSelector, FracConfig, Variant};
use frac::eval::auc_from_scores;
use frac::projection::JlMatrixKind;
use frac::synth::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};
use frac::synth::{ExpressionConfig, ExpressionGenerator};

fn expression_case() -> (frac::dataset::Dataset, frac::dataset::Dataset, Vec<bool>) {
    let g = ExpressionGenerator::new(ExpressionConfig {
        n_features: 30,
        n_modules: 5,
        relevant_fraction: 0.9,
        anomaly_modules: 2,
        anomaly_shift: 3.0,
        noise_sd: 0.5,
        structure_seed: 11,
        ..ExpressionConfig::default()
    });
    let (data, labels) = g.generate(36, 10, 3);
    let train = data.select_rows(&(0..26).collect::<Vec<_>>());
    let test_rows: Vec<usize> = (26..46).collect();
    let test = data.select_rows(&test_rows);
    let test_labels = test_rows.iter().map(|&r| labels[r]).collect();
    (train, test, test_labels)
}

#[test]
fn full_frac_detects_expression_anomalies() {
    let (train, test, labels) = expression_case();
    let out = run_variant(&train, &test, &Variant::Full, &FracConfig::default());
    let auc = auc_from_scores(&out.ns, &labels);
    assert!(auc > 0.8, "full FRaC AUC = {auc}");
}

#[test]
fn every_scalable_variant_preserves_detection() {
    let (train, test, labels) = expression_case();
    let cfg = FracConfig::default();
    let full_auc = auc_from_scores(
        &run_variant(&train, &test, &Variant::Full, &cfg).ns,
        &labels,
    );
    let variants: Vec<(&str, Variant)> = vec![
        (
            "random filter ensemble",
            Variant::Ensemble {
                base: Box::new(Variant::FullFilter {
                    selector: FeatureSelector::Random,
                    p: 0.3,
                }),
                members: 5,
            },
        ),
        ("diverse", Variant::Diverse { p: 0.5, models_per_feature: 1 }),
        (
            "jl",
            Variant::JlProject { dim: 16, kind: JlMatrixKind::Gaussian },
        ),
        (
            "entropy filter",
            Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.3 },
        ),
    ];
    for (name, v) in variants {
        let auc = auc_from_scores(&run_variant(&train, &test, &v, &cfg).ns, &labels);
        // The paper's headline: reduced variants preserve detection. With a
        // strong synthetic signal they must all stay well above chance and
        // within a reasonable band of the full run.
        assert!(
            auc > 0.65 && auc > full_auc - 0.25,
            "{name}: AUC {auc} vs full {full_auc}"
        );
    }
}

#[test]
fn snp_pipeline_detects_relationship_violations() {
    // Cases carry enriched risk alleles at disease loci; FRaC with decision
    // trees must rank them above controls.
    let g = SnpGenerator::new(SnpConfig {
        n_snps: 40,
        ld_block_size: 5,
        ld_rho: 0.8,
        n_subpops: 1,
        fst: 0.0,
        n_disease_loci: 10,
        disease_effect: 0.45,
        structure_seed: 23,
        ..SnpConfig::default()
    });
    let mix = SubpopulationMix::single(0, 1);
    let (train, _) = g.generate(
        &[CohortGroup { n: 60, mix: mix.clone(), is_case: false }],
        1,
    );
    let (test, labels) = g.generate(
        &[
            CohortGroup { n: 15, mix: mix.clone(), is_case: false },
            CohortGroup { n: 15, mix, is_case: true },
        ],
        2,
    );
    let out = run_variant(&train, &test, &Variant::Full, &FracConfig::snp());
    let auc = auc_from_scores(&out.ns, &labels);
    assert!(auc > 0.6, "SNP FRaC AUC = {auc}");
}

#[test]
fn ancestry_confounding_is_detectable_by_entropy_filtering() {
    // Miniature schizophrenia scenario: train on a 2-population mix, cases
    // from a third population; entropy filtering keys on the divergent loci.
    let g = SnpGenerator::new(SnpConfig {
        n_snps: 100,
        ld_block_size: 5,
        ld_rho: 0.4,
        n_subpops: 3,
        fst: 0.02,
        aim_fraction: 0.3,
        aim_fst: 0.6,
        structure_seed: 7,
        ..SnpConfig::default()
    });
    let train_mix = SubpopulationMix::new(vec![1.0, 1.0, 0.0]);
    let case_mix = SubpopulationMix::single(2, 3);
    let (train, _) = g.generate(
        &[CohortGroup { n: 120, mix: train_mix.clone(), is_case: false }],
        4,
    );
    let (test, labels) = g.generate(
        &[
            CohortGroup { n: 15, mix: train_mix, is_case: false },
            CohortGroup { n: 25, mix: case_mix, is_case: true },
        ],
        5,
    );
    // p must keep enough of the high-entropy set to cover the AIMs; below
    // ~0.3 the selection misses them for many structure seeds.
    let out = run_variant(
        &train,
        &test,
        &Variant::FullFilter { selector: FeatureSelector::Entropy, p: 0.4 },
        &FracConfig::snp(),
    );
    let auc = auc_from_scores(&out.ns, &labels);
    assert!(auc > 0.8, "ancestry-confounded AUC = {auc}");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let (train, test, _) = expression_case();
    let cfg = FracConfig::default().with_seed(77);
    let v = Variant::Ensemble {
        base: Box::new(Variant::FullFilter { selector: FeatureSelector::Random, p: 0.2 }),
        members: 3,
    };
    let a = run_variant(&train, &test, &v, &cfg);
    let b = run_variant(&train, &test, &v, &cfg);
    assert_eq!(a.ns, b.ns);
    assert_eq!(a.resources.flops, b.resources.flops);
    assert_eq!(a.resources.models_trained, b.resources.models_trained);
    // A different master seed changes the selection, hence the scores.
    let c = run_variant(&train, &test, &v, &cfg.with_seed(78));
    assert_ne!(a.ns, c.ns);
}

#[test]
fn mixed_schema_datasets_are_supported() {
    // FRaC is defined for "real, categorical, or mixed" data: build a mixed
    // data set where the categorical feature tracks a real one.
    use frac::dataset::dataset::DatasetBuilder;
    let n = 40;
    let real: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
    let cat: Vec<u32> = real.iter().map(|&x| if x < 3.0 { 0 } else if x < 7.0 { 1 } else { 2 }).collect();
    let noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 13) as f64).collect();
    let train = DatasetBuilder::new()
        .real("expr", real)
        .categorical("geno", 3, cat)
        .real("noise", noise)
        .build();
    // Test: one consistent row, one violating the expr↔geno relationship.
    let consistent = DatasetBuilder::new()
        .real("expr", vec![1.0])
        .categorical("geno", 3, vec![0])
        .real("noise", vec![5.0])
        .build();
    let violating = DatasetBuilder::new()
        .real("expr", vec![1.0])
        .categorical("geno", 3, vec![2])
        .real("noise", vec![5.0])
        .build();
    let out_ok = run_variant(&train, &consistent, &Variant::Full, &FracConfig::default());
    let out_bad = run_variant(&train, &violating, &Variant::Full, &FracConfig::default());
    assert!(
        out_bad.ns[0] > out_ok.ns[0],
        "violated mixed relationship must surprise: {} vs {}",
        out_bad.ns[0],
        out_ok.ns[0]
    );
}
