//! # frac-synth
//!
//! Synthetic surrogates for the paper's eight data sets (Table I).
//!
//! The originals are GEO gene-expression and SNP genotyping studies that we
//! cannot redistribute; these generators produce data with the *structural*
//! properties FRaC's evaluation depends on:
//!
//! * [`expression`] — a latent-factor (gene-module) model: genes load on
//!   correlated modules, anomalies dysregulate a subset of modules, and a
//!   configurable fraction of genes is pure noise. This reproduces the
//!   redundancy ("strong and diffuse signal") that makes random filtering
//!   work, and the irrelevant-variable load the paper worries about.
//! * [`snp`] — a population-genetics model: ternary genotypes in
//!   Hardy–Weinberg proportions from Balding–Nichols subpopulation allele
//!   frequencies, Gaussian-copula linkage-disequilibrium blocks, optional
//!   disease-risk loci, and optional ancestry confounding (the schizophrenia
//!   data set's train/test populations differ — the reason entropy filtering
//!   "solves" it with AUC ≈ 1.0).
//! * [`registry`] — one spec per paper data set, at a reduced scale chosen
//!   so the whole evaluation re-runs on one CPU core (scales documented in
//!   EXPERIMENTS.md), plus the [`registry::LabeledDataset`] carrier type.
//! * [`rng`] — seeded samplers (normal, gamma, beta) built on `rand`
//!   without extra dependencies.

#![warn(missing_docs)]

pub mod expression;
pub mod registry;
pub mod rng;
pub mod snp;

pub use expression::{AnomalyMode, ExpressionConfig, ExpressionGenerator};
pub use registry::{make_dataset, make_fixed_split, DatasetSpec, LabeledDataset, PAPER_DATASETS};
pub use snp::{SnpConfig, SnpGenerator, SubpopulationMix};
