//! Population-genetics SNP generator.
//!
//! Surrogate for the paper's genotyping data sets (autism GSE6754 and the
//! compound HapMap/schizophrenia set). Each feature is a common single
//! nucleotide polymorphism: a **ternary** categorical variable (homozygous
//! major / heterozygous / homozygous minor), exactly the representation the
//! paper describes. The model:
//!
//! * **Ancestral allele frequencies** are drawn uniformly from a
//!   common-variant range (the paper notes rare variants are useless for
//!   anomaly detection, so we only generate common ones).
//! * **Subpopulations** perturb frequencies by the Balding–Nichols model
//!   `p_s ~ Beta(p̄(1−F)/F′, (1−p̄)(1−F)/F′)` with differentiation `F`,
//!   giving HapMap-style ancestry structure — the confound that lets entropy
//!   filtering "diagnose schizophrenia" with AUC ≈ 1.0 in the paper.
//! * **Linkage disequilibrium** ties adjacent SNPs in blocks through a
//!   Gaussian copula, providing the signal redundancy random filtering
//!   exploits.
//! * **Disease loci** (optional) shift the risk-allele frequency in cases —
//!   the PLXNA2/GRIN2B-style weak true signal of the paper's §IV.
//! * Genotypes fall in Hardy–Weinberg proportions `( (1−p)², 2p(1−p), p² )`.

use crate::rng::Sampler;
use frac_dataset::{Column, Dataset, Schema};

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (|error| < 1.5e-7 — far below the genotype-probability resolution).
pub fn norm_cdf(x: f64) -> f64 {
    let t = x / std::f64::consts::SQRT_2;
    let erf = {
        let s = t.signum();
        let a = t.abs();
        let p = 0.3275911;
        let u = 1.0 / (1.0 + p * a);
        let poly = u
            * (0.254829592
                + u * (-0.284496736 + u * (1.421413741 + u * (-1.453152027 + u * 1.061405429))));
        s * (1.0 - poly * (-a * a).exp())
    };
    0.5 * (1.0 + erf)
}

/// Parameters of the SNP surrogate.
#[derive(Debug, Clone)]
pub struct SnpConfig {
    /// Number of SNP features.
    pub n_snps: usize,
    /// SNPs per linkage-disequilibrium block.
    pub ld_block_size: usize,
    /// Copula correlation within a block (0 = independent SNPs).
    pub ld_rho: f64,
    /// Number of subpopulations with distinct allele frequencies.
    pub n_subpops: usize,
    /// Balding–Nichols differentiation F (≈ F_ST); 0 = panmictic.
    pub fst: f64,
    /// Ancestral minor-allele-frequency range (common variants only).
    pub maf_range: (f64, f64),
    /// Number of disease-associated loci.
    pub n_disease_loci: usize,
    /// Risk-allele frequency shift in cases at disease loci.
    pub disease_effect: f64,
    /// Fraction of SNPs that are ancestry-informative markers (AIMs):
    /// loci whose differentiation uses `aim_fst` instead of `fst`. Real
    /// F_ST distributions are heavy-tailed; a small set of high-divergence
    /// markers is what lets entropy filtering "solve" the confounded
    /// schizophrenia data set while a random 5% subset usually misses them.
    pub aim_fraction: f64,
    /// Balding–Nichols differentiation at AIM loci.
    pub aim_fst: f64,
    /// Structure seed: frequencies, blocks and disease loci are pure
    /// functions of this.
    pub structure_seed: u64,
}

impl Default for SnpConfig {
    fn default() -> Self {
        SnpConfig {
            n_snps: 500,
            ld_block_size: 8,
            ld_rho: 0.6,
            n_subpops: 1,
            fst: 0.1,
            maf_range: (0.05, 0.5),
            n_disease_loci: 0,
            disease_effect: 0.15,
            aim_fraction: 0.0,
            aim_fst: 0.0,
            structure_seed: 0x5189,
        }
    }
}

/// A mixture over subpopulations, used to describe a cohort's ancestry.
#[derive(Debug, Clone, PartialEq)]
pub struct SubpopulationMix {
    weights: Vec<f64>,
}

impl SubpopulationMix {
    /// A mixture with the given (unnormalized) weights, one per subpop.
    ///
    /// # Panics
    /// Panics if empty or non-positive total.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            !weights.is_empty() && weights.iter().sum::<f64>() > 0.0,
            "mixture weights must be non-empty with positive total"
        );
        SubpopulationMix { weights }
    }

    /// All mass on one subpopulation.
    pub fn single(pop: usize, n_subpops: usize) -> Self {
        let mut w = vec![0.0; n_subpops];
        w[pop] = 1.0;
        SubpopulationMix { weights: w }
    }

    /// Uniform over `n` subpopulations.
    pub fn uniform(n_subpops: usize) -> Self {
        SubpopulationMix { weights: vec![1.0; n_subpops] }
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// One cohort group to generate: `n` individuals from `mix`, case or
/// control.
#[derive(Debug, Clone)]
pub struct CohortGroup {
    /// Number of individuals.
    pub n: usize,
    /// Ancestry mixture of the group.
    pub mix: SubpopulationMix,
    /// Whether these individuals are cases (anomalies).
    pub is_case: bool,
}

/// A fixed SNP "study": frequencies and structure frozen at construction.
#[derive(Debug, Clone)]
pub struct SnpGenerator {
    config: SnpConfig,
    /// `freqs[pop][snp]` = minor-allele frequency.
    freqs: Vec<Vec<f64>>,
    disease_loci: Vec<usize>,
    /// Designated ancestry-informative markers (high-F_ST loci).
    aims: Vec<usize>,
}

impl SnpGenerator {
    /// Build the study structure from the configuration.
    ///
    /// # Panics
    /// Panics on degenerate configurations.
    pub fn new(config: SnpConfig) -> Self {
        assert!(config.n_snps > 0, "need at least one SNP");
        assert!(config.n_subpops > 0, "need at least one subpopulation");
        assert!(config.ld_block_size > 0, "block size must be positive");
        assert!(
            (0.0..1.0).contains(&config.ld_rho),
            "ld_rho must be in [0, 1)"
        );
        assert!((0.0..1.0).contains(&config.fst), "fst must be in [0, 1)");
        let (lo, hi) = config.maf_range;
        assert!(0.0 < lo && lo < hi && hi <= 0.5, "bad MAF range");
        assert!(
            config.n_disease_loci <= config.n_snps,
            "more disease loci than SNPs"
        );

        assert!(
            (0.0..=1.0).contains(&config.aim_fraction),
            "aim_fraction must be in [0, 1]"
        );
        assert!((0.0..1.0).contains(&config.aim_fst), "aim_fst must be in [0, 1)");

        let mut s = Sampler::seed_from_u64(config.structure_seed);
        let n_aims = (config.aim_fraction * config.n_snps as f64).round() as usize;
        let mut aims = s.subset(config.n_snps, n_aims);
        aims.sort_unstable();
        let is_aim = {
            let mut mask = vec![false; config.n_snps];
            for &j in &aims {
                mask[j] = true;
            }
            mask
        };
        let ancestral: Vec<f64> = (0..config.n_snps)
            .map(|j| {
                if is_aim[j] {
                    // AIMs get common ancestral frequencies so their pooled
                    // genotype entropy is high — the property the entropy
                    // filter ranks by.
                    s.uniform_range(0.3, 0.5)
                } else {
                    s.uniform_range(lo, hi)
                }
            })
            .collect();
        let freqs: Vec<Vec<f64>> = (0..config.n_subpops)
            .map(|_| {
                ancestral
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| {
                        let fst = if is_aim[j] { config.aim_fst } else { config.fst };
                        if fst <= 0.0 {
                            p
                        } else {
                            let scale = (1.0 - fst) / fst;
                            s.beta((p * scale).max(1e-3), ((1.0 - p) * scale).max(1e-3))
                                .clamp(0.005, 0.995)
                        }
                    })
                    .collect()
            })
            .collect();
        let disease_loci = s.subset(config.n_snps, config.n_disease_loci);
        SnpGenerator { config, freqs, disease_loci, aims }
    }

    /// The designated ancestry-informative markers (empty when
    /// `aim_fraction` is 0).
    pub fn aims(&self) -> &[usize] {
        &self.aims
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnpConfig {
        &self.config
    }

    /// The disease-associated loci (ground truth for interpretability
    /// checks, the paper's PLXNA2/GRIN2B analogue).
    pub fn disease_loci(&self) -> &[usize] {
        &self.disease_loci
    }

    /// Minor-allele frequency of `snp` in `pop`.
    pub fn frequency(&self, pop: usize, snp: usize) -> f64 {
        self.freqs[pop][snp]
    }

    /// SNPs ranked by cross-subpopulation frequency divergence (max−min),
    /// descending — the ancestry-informative markers entropy filtering
    /// latches onto.
    pub fn ancestry_informative_loci(&self) -> Vec<usize> {
        let mut div: Vec<(f64, usize)> = (0..self.config.n_snps)
            .map(|j| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for pop in &self.freqs {
                    lo = lo.min(pop[j]);
                    hi = hi.max(pop[j]);
                }
                (hi - lo, j)
            })
            .collect();
        div.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        div.into_iter().map(|(_, j)| j).collect()
    }

    /// Sample one individual's genotype row.
    fn sample_row(&self, mix: &SubpopulationMix, is_case: bool, s: &mut Sampler) -> Vec<u32> {
        assert_eq!(
            mix.weights().len(),
            self.config.n_subpops,
            "mixture arity must match subpopulation count"
        );
        let pop = s.categorical(mix.weights());
        let rho = self.config.ld_rho;
        let noise_scale = (1.0 - rho * rho).sqrt();
        let mut row = Vec::with_capacity(self.config.n_snps);
        let mut block_u = 0.0f64;
        for j in 0..self.config.n_snps {
            if j % self.config.ld_block_size == 0 {
                block_u = s.normal();
            }
            let z = rho * block_u + noise_scale * s.normal();
            let u = norm_cdf(z);
            let p = self.freqs[pop][j];
            let q = 1.0 - p;
            // Hardy–Weinberg thresholds on the copula uniform.
            let g = if u < q * q {
                0
            } else if u < q * q + 2.0 * p * q {
                1
            } else {
                2
            };
            row.push(g);
        }
        if is_case && self.config.n_disease_loci > 0 {
            // Cases re-draw disease loci with an enriched risk allele
            // (independent of the copula: the effect is marginal).
            for &j in &self.disease_loci {
                let p = (self.freqs[pop][j] + self.config.disease_effect).clamp(0.005, 0.995);
                row[j] = s.binomial(2, p);
            }
        }
        row
    }

    /// Generate a cohort of several groups (concatenated in order). Returns
    /// the data set and per-row case labels.
    pub fn generate(&self, groups: &[CohortGroup], cohort_seed: u64) -> (Dataset, Vec<bool>) {
        let mut s = Sampler::seed_from_u64(cohort_seed);
        let n_total: usize = groups.iter().map(|g| g.n).sum();
        let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(n_total); self.config.n_snps];
        let mut labels = Vec::with_capacity(n_total);
        for group in groups {
            for _ in 0..group.n {
                let row = self.sample_row(&group.mix, group.is_case, &mut s);
                for (c, v) in columns.iter_mut().zip(row) {
                    c.push(v);
                }
                labels.push(group.is_case);
            }
        }
        let schema = Schema::new(
            (0..self.config.n_snps)
                .map(|j| frac_dataset::Feature::categorical(format!("rs{j}"), 3))
                .collect(),
        );
        let data = Dataset::new(
            schema,
            columns
                .into_iter()
                .map(|codes| Column::Categorical { arity: 3, codes: codes.into() })
                .collect(),
        );
        (data, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((norm_cdf(-1.0) - 0.1586553).abs() < 1e-5);
        assert!(norm_cdf(8.0) > 0.999999);
        assert!(norm_cdf(-8.0) < 1e-6);
    }

    fn gen(config: SnpConfig) -> SnpGenerator {
        SnpGenerator::new(config)
    }

    fn control_group(n: usize, pops: usize) -> CohortGroup {
        CohortGroup { n, mix: SubpopulationMix::uniform(pops), is_case: false }
    }

    #[test]
    fn genotypes_follow_hardy_weinberg() {
        let g = gen(SnpConfig {
            n_snps: 4,
            ld_rho: 0.0,
            n_subpops: 1,
            fst: 0.0,
            structure_seed: 1,
            ..SnpConfig::default()
        });
        let (d, _) = g.generate(&[control_group(6000, 1)], 2);
        for j in 0..4 {
            let p = g.frequency(0, j);
            let codes = d.column(j).as_categorical().unwrap();
            let mut counts = [0usize; 3];
            for &c in codes {
                counts[c as usize] += 1;
            }
            let n = codes.len() as f64;
            let expect = [(1.0 - p) * (1.0 - p), 2.0 * p * (1.0 - p), p * p];
            for k in 0..3 {
                let obs = counts[k] as f64 / n;
                assert!(
                    (obs - expect[k]).abs() < 0.02,
                    "snp {j} genotype {k}: {obs} vs {}",
                    expect[k]
                );
            }
        }
    }

    #[test]
    fn ld_blocks_are_correlated() {
        let g = gen(SnpConfig {
            n_snps: 16,
            ld_block_size: 8,
            ld_rho: 0.8,
            n_subpops: 1,
            fst: 0.0,
            structure_seed: 2,
            ..SnpConfig::default()
        });
        let (d, _) = g.generate(&[control_group(3000, 1)], 3);
        let corr = |a: usize, b: usize| -> f64 {
            let xa: Vec<f64> = d.column(a).as_categorical().unwrap().iter().map(|&c| c as f64).collect();
            let xb: Vec<f64> = d.column(b).as_categorical().unwrap().iter().map(|&c| c as f64).collect();
            let ma = xa.iter().sum::<f64>() / xa.len() as f64;
            let mb = xb.iter().sum::<f64>() / xb.len() as f64;
            let cov: f64 = xa.iter().zip(&xb).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f64 = xa.iter().map(|x| (x - ma) * (x - ma)).sum();
            let vb: f64 = xb.iter().map(|y| (y - mb) * (y - mb)).sum();
            cov / (va.sqrt() * vb.sqrt())
        };
        // Same block (0,1) strongly correlated; cross-block (0, 8) not.
        assert!(corr(0, 1) > 0.3, "within-block r = {}", corr(0, 1));
        assert!(corr(0, 8).abs() < 0.1, "cross-block r = {}", corr(0, 8));
    }

    #[test]
    fn subpopulations_diverge_with_fst() {
        let g = gen(SnpConfig {
            n_snps: 300,
            n_subpops: 3,
            fst: 0.15,
            structure_seed: 5,
            ..SnpConfig::default()
        });
        let ranked = g.ancestry_informative_loci();
        assert_eq!(ranked.len(), 300);
        let top_div = {
            let j = ranked[0];
            let f: Vec<f64> = (0..3).map(|p| g.frequency(p, j)).collect();
            f.iter().cloned().fold(f64::MIN, f64::max)
                - f.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(top_div > 0.2, "top ancestry divergence {top_div}");
    }

    #[test]
    fn zero_fst_means_identical_populations() {
        let g = gen(SnpConfig {
            n_snps: 50,
            n_subpops: 3,
            fst: 0.0,
            structure_seed: 6,
            ..SnpConfig::default()
        });
        for j in 0..50 {
            assert_eq!(g.frequency(0, j), g.frequency(1, j));
            assert_eq!(g.frequency(1, j), g.frequency(2, j));
        }
    }

    #[test]
    fn disease_loci_shift_case_genotypes() {
        let g = gen(SnpConfig {
            n_snps: 100,
            ld_rho: 0.0,
            n_subpops: 1,
            fst: 0.0,
            n_disease_loci: 5,
            disease_effect: 0.3,
            structure_seed: 7,
            ..SnpConfig::default()
        });
        let groups = [
            control_group(2000, 1),
            CohortGroup { n: 2000, mix: SubpopulationMix::single(0, 1), is_case: true },
        ];
        let (d, labels) = g.generate(&groups, 8);
        let mean_geno = |j: usize, case: bool| -> f64 {
            let codes = d.column(j).as_categorical().unwrap();
            let vals: Vec<f64> = codes
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == case)
                .map(|(&c, _)| c as f64)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        for &j in g.disease_loci() {
            let shift = mean_geno(j, true) - mean_geno(j, false);
            // Expected genotype shift ≈ 2 × effect = 0.6.
            assert!(shift > 0.3, "locus {j} shift {shift}");
        }
        // Non-disease loci do not shift.
        let j_null = (0..100).find(|j| !g.disease_loci().contains(j)).unwrap();
        let shift = (mean_geno(j_null, true) - mean_geno(j_null, false)).abs();
        assert!(shift < 0.1, "null locus shifted by {shift}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let cfg = SnpConfig { n_snps: 30, structure_seed: 11, ..SnpConfig::default() };
        let (a, _) = gen(cfg.clone()).generate(&[control_group(10, 1)], 4);
        let (b, _) = gen(cfg).generate(&[control_group(10, 1)], 4);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_match_groups() {
        let g = gen(SnpConfig { n_snps: 5, structure_seed: 12, ..SnpConfig::default() });
        let groups = [
            control_group(3, 1),
            CohortGroup { n: 2, mix: SubpopulationMix::single(0, 1), is_case: true },
        ];
        let (d, labels) = g.generate(&groups, 1);
        assert_eq!(d.n_rows(), 5);
        assert_eq!(labels, vec![false, false, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "mixture arity")]
    fn mismatched_mix_rejected() {
        let g = gen(SnpConfig { n_subpops: 2, ..SnpConfig::default() });
        let groups = [CohortGroup { n: 1, mix: SubpopulationMix::uniform(3), is_case: false }];
        g.generate(&groups, 0);
    }
}
