//! Per-paper-data-set surrogate registry (Table I).
//!
//! Each spec records the paper's original dimensions and Table II reference
//! results next to our scaled surrogate parameters, so the bench harness can
//! print paper-vs-measured side by side. Feature counts are scaled down
//! (factors documented in EXPERIMENTS.md) so the complete evaluation re-runs
//! on a single CPU core; every *relative* quantity the paper reports
//! (AUC-preservation fractions, time %, memory %) is preserved by
//! construction because numerator and denominator scale together.

use crate::expression::{ExpressionConfig, ExpressionGenerator};
use crate::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};
use frac_dataset::Dataset;

/// A data set with per-row anomaly labels (`true` = anomalous sample).
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// Data-set name (registry key).
    pub name: String,
    /// The samples.
    pub data: Dataset,
    /// `labels[r]` is true iff row `r` is an anomaly.
    pub labels: Vec<bool>,
}

impl LabeledDataset {
    /// Number of normal rows.
    pub fn n_normal(&self) -> usize {
        self.labels.iter().filter(|&&a| !a).count()
    }

    /// Number of anomalous rows.
    pub fn n_anomaly(&self) -> usize {
        self.labels.iter().filter(|&&a| a).count()
    }

    /// Row indices of normal samples.
    pub fn normal_indices(&self) -> Vec<usize> {
        (0..self.labels.len()).filter(|&r| !self.labels[r]).collect()
    }

    /// Row indices of anomalous samples.
    pub fn anomaly_indices(&self) -> Vec<usize> {
        (0..self.labels.len()).filter(|&r| self.labels[r]).collect()
    }
}

/// Which predictor family the paper used on this data set (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperModel {
    /// Linear SVM (all six expression data sets).
    LinearSvm,
    /// Decision trees (both SNP data sets).
    DecisionTree,
}

/// The generator family behind a surrogate.
#[derive(Debug, Clone)]
pub enum SpecKind {
    /// Latent-factor expression surrogate.
    Expression(ExpressionConfig),
    /// Population-genetics SNP surrogate.
    Snp(SnpConfig),
}

/// A surrogate data-set specification, with the paper's reference numbers.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Registry key, matching the paper's data-set name.
    pub name: &'static str,
    /// Generator configuration.
    pub kind: SpecKind,
    /// Normal samples to generate.
    pub n_normal: usize,
    /// Anomalous samples to generate.
    pub n_anomaly: usize,
    /// Predictor family the paper used.
    pub model: PaperModel,
    /// Paper Table I: original feature count.
    pub paper_features: usize,
    /// Paper Table I: original normal count.
    pub paper_normal: usize,
    /// Paper Table I: original anomaly count.
    pub paper_anomaly: usize,
    /// Paper Table II: full-FRaC mean AUC (None where not run).
    pub paper_auc: Option<f64>,
    /// Paper Table II: AUC standard deviation.
    pub paper_auc_sd: Option<f64>,
    /// Paper Table II: CPU hours (schizophrenia's is an extrapolation).
    pub paper_time_h: f64,
    /// Paper Table II: memory, GB.
    pub paper_mem_gb: f64,
    /// Default cohort seed used by the experiment harness.
    pub default_seed: u64,
}

impl DatasetSpec {
    /// Surrogate feature count.
    pub fn n_features(&self) -> usize {
        match &self.kind {
            SpecKind::Expression(c) => c.n_features,
            SpecKind::Snp(c) => c.n_snps,
        }
    }

    /// Is this a SNP (categorical) surrogate?
    pub fn is_snp(&self) -> bool {
        matches!(self.kind, SpecKind::Snp(_))
    }
}

/// Names of all eight paper data sets, in Table I order.
pub const PAPER_DATASETS: [&str; 8] = [
    "breast.basal",
    "biomarkers",
    "ethnic",
    "bild",
    "smokers2",
    "hematopoiesis",
    "autism",
    "schizophrenia",
];

fn expr(
    n_features: usize,
    n_modules: usize,
    anomaly_modules: usize,
    anomaly_shift: f64,
    relevant_fraction: f64,
    structure_seed: u64,
) -> SpecKind {
    SpecKind::Expression(ExpressionConfig {
        n_features,
        n_modules,
        relevant_fraction,
        loading_scale: 1.0,
        noise_sd: 1.0,
        anomaly_modules,
        anomaly_shift,
        anomaly_mode: crate::expression::AnomalyMode::Offset,
        structure_seed,
    })
}

/// The spec for a named paper data set.
///
/// # Panics
/// Panics on unknown names; valid names are in [`PAPER_DATASETS`].
pub fn spec(name: &str) -> DatasetSpec {
    match name {
        // ---- expression surrogates (paper AUC targets in comments) ----
        "breast.basal" => DatasetSpec {
            name: "breast.basal", // paper AUC 0.73
            kind: expr(320, 16, 4, 2.1, 0.55, 0xB3A5),
            n_normal: 56,
            n_anomaly: 19,
            model: PaperModel::LinearSvm,
            paper_features: 3167,
            paper_normal: 56,
            paper_anomaly: 19,
            paper_auc: Some(0.73),
            paper_auc_sd: Some(0.06),
            paper_time_h: 1.02,
            paper_mem_gb: 4.59,
            default_seed: 101,
        },
        "biomarkers" => DatasetSpec {
            name: "biomarkers", // paper AUC 0.88
            kind: expr(600, 24, 8, 2.0, 0.6, 0xB10A),
            n_normal: 74,
            n_anomaly: 53,
            model: PaperModel::LinearSvm,
            paper_features: 19739,
            paper_normal: 74,
            paper_anomaly: 53,
            paper_auc: Some(0.88),
            paper_auc_sd: Some(0.05),
            paper_time_h: 58.21,
            paper_mem_gb: 152.54,
            default_seed: 102,
        },
        "ethnic" => DatasetSpec {
            name: "ethnic", // paper AUC 0.71
            kind: expr(600, 24, 5, 1.9, 0.5, 0xE741),
            n_normal: 95,
            n_anomaly: 96,
            model: PaperModel::LinearSvm,
            paper_features: 19739,
            paper_normal: 95,
            paper_anomaly: 96,
            paper_auc: Some(0.71),
            paper_auc_sd: Some(0.03),
            paper_time_h: 96.67,
            paper_mem_gb: 195.11,
            default_seed: 103,
        },
        "bild" => DatasetSpec {
            name: "bild", // paper AUC 0.84
            kind: expr(620, 24, 7, 2.55, 0.6, 0xB17D),
            n_normal: 48,
            n_anomaly: 7,
            model: PaperModel::LinearSvm,
            paper_features: 20607,
            paper_normal: 48,
            paper_anomaly: 7,
            paper_auc: Some(0.84),
            paper_auc_sd: Some(0.08),
            paper_time_h: 36.51,
            paper_mem_gb: 106.59,
            default_seed: 104,
        },
        "smokers2" => DatasetSpec {
            name: "smokers2", // paper AUC 0.66
            kind: expr(600, 24, 4, 4.0, 0.5, 0x5307),
            n_normal: 40,
            n_anomaly: 39,
            model: PaperModel::LinearSvm,
            paper_features: 19739,
            paper_normal: 40,
            paper_anomaly: 39,
            paper_auc: Some(0.66),
            paper_auc_sd: Some(0.04),
            paper_time_h: 29.23,
            paper_mem_gb: 82.57,
            default_seed: 105,
        },
        "hematopoiesis" => DatasetSpec {
            name: "hematopoiesis", // paper AUC 0.88
            kind: expr(500, 20, 7, 2.2, 0.6, 0x4EA7),
            n_normal: 97,
            n_anomaly: 91,
            model: PaperModel::LinearSvm,
            paper_features: 13322,
            paper_normal: 97,
            paper_anomaly: 91,
            paper_auc: Some(0.88),
            paper_auc_sd: Some(0.02),
            paper_time_h: 56.56,
            paper_mem_gb: 90.69,
            default_seed: 106,
        },
        // ---- SNP surrogates ----
        "autism" => DatasetSpec {
            name: "autism", // paper AUC 0.50: genuinely no detectable signal
            kind: SpecKind::Snp(SnpConfig {
                n_snps: 300,
                ld_block_size: 8,
                ld_rho: 0.6,
                n_subpops: 1,
                fst: 0.0,
                maf_range: (0.05, 0.5),
                n_disease_loci: 0,
                disease_effect: 0.0,
                aim_fraction: 0.0,
                aim_fst: 0.0,
                structure_seed: 0xA871,
            }),
            n_normal: 158,
            n_anomaly: 114,
            model: PaperModel::DecisionTree,
            paper_features: 7267,
            paper_normal: 317,
            paper_anomaly: 228,
            paper_auc: Some(0.50),
            paper_auc_sd: Some(0.03),
            paper_time_h: 188.40,
            paper_mem_gb: 3.39,
            default_seed: 107,
        },
        "schizophrenia" => DatasetSpec {
            name: "schizophrenia",
            // Train = uniform mix of subpops 0-2 (HapMap analogue); test
            // cases come from subpop 3 — ancestry confounded with case
            // status, exactly the paper's hybrid-data caveat — plus a weak
            // true disease signal at 20 loci (the PLXNA2/GRIN2B analogue).
            kind: SpecKind::Snp(SnpConfig {
                n_snps: 2400,
                ld_block_size: 8,
                ld_rho: 0.6,
                n_subpops: 4,
                fst: 0.02,
                maf_range: (0.05, 0.5),
                n_disease_loci: 40,
                disease_effect: 0.25,
                aim_fraction: 0.04,
                aim_fst: 0.4,
                structure_seed: 0x5C12,
            }),
            n_normal: 280, // 270 train + 10 test normals
            n_anomaly: 54,
            model: PaperModel::DecisionTree,
            paper_features: 171763,
            paper_normal: 280,
            paper_anomaly: 54,
            paper_auc: None, // paper could not run full FRaC either
            paper_auc_sd: None,
            paper_time_h: 44_000.0, // extrapolated in the paper
            paper_mem_gb: 148.0,
            default_seed: 108,
        },
        other => panic!("unknown data set `{other}`; valid names: {PAPER_DATASETS:?}"),
    }
}

/// Non-panicking lookup of a named paper data set — `None` for unknown
/// names. Front ends (the CLI) should use this and report the error
/// themselves; [`spec`] stays panicking for internal callers that pass
/// names from [`PAPER_DATASETS`].
pub fn lookup(name: &str) -> Option<DatasetSpec> {
    PAPER_DATASETS.contains(&name).then(|| spec(name))
}

/// All specs in Table I order.
pub fn all_specs() -> Vec<DatasetSpec> {
    PAPER_DATASETS.iter().map(|n| spec(n)).collect()
}

/// Generate the pooled surrogate for a named data set: `n_normal` normal
/// rows followed by `n_anomaly` anomalous rows. Replicate splitting is the
/// evaluation harness's job.
///
/// For `schizophrenia` prefer [`make_fixed_split`], which reproduces the
/// paper's fixed train/test protocol.
pub fn make_dataset(name: &str, cohort_seed: u64) -> LabeledDataset {
    let spec = spec(name);
    let (data, labels) = match &spec.kind {
        SpecKind::Expression(cfg) => {
            ExpressionGenerator::new(cfg.clone()).generate(spec.n_normal, spec.n_anomaly, cohort_seed)
        }
        SpecKind::Snp(cfg) => {
            let g = SnpGenerator::new(cfg.clone());
            let pops = cfg.n_subpops;
            let normal_mix = if pops >= 4 {
                SubpopulationMix::new(vec![1.0, 1.0, 1.0, 0.0])
            } else {
                SubpopulationMix::uniform(pops)
            };
            let case_mix = if pops >= 4 {
                SubpopulationMix::single(3, pops)
            } else {
                SubpopulationMix::uniform(pops)
            };
            g.generate(
                &[
                    CohortGroup { n: spec.n_normal, mix: normal_mix, is_case: false },
                    CohortGroup { n: spec.n_anomaly, mix: case_mix, is_case: true },
                ],
                cohort_seed,
            )
        }
    };
    LabeledDataset { name: name.to_string(), data, labels }
}

/// The schizophrenia fixed split (paper §III-A): 270 training normals, then
/// a test set of 10 normals + 54 cases. Returns `(train, test)` where
/// `train` is unlabeled (all normal) and `test` carries labels.
pub fn make_fixed_split(cohort_seed: u64) -> (Dataset, LabeledDataset) {
    let full = make_dataset("schizophrenia", cohort_seed);
    let normals = full.normal_indices();
    assert_eq!(normals.len(), 280);
    let train_rows = &normals[..270];
    let mut test_rows: Vec<usize> = normals[270..].to_vec();
    test_rows.extend(full.anomaly_indices());
    let train = full.data.select_rows(train_rows);
    let test = LabeledDataset {
        name: "schizophrenia-test".to_string(),
        data: full.data.select_rows(&test_rows),
        labels: test_rows.iter().map(|&r| full.labels[r]).collect(),
    };
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_resolve_and_match_table1_samples() {
        for name in PAPER_DATASETS {
            let s = spec(name);
            assert_eq!(s.name, name);
            assert!(s.n_features() > 0);
            // Sample counts match the paper except autism (halved) —
            // schizophrenia normals include the 10 test normals.
            if name != "autism" {
                assert_eq!(s.n_normal, s.paper_normal, "{name}");
                assert_eq!(s.n_anomaly, s.paper_anomaly, "{name}");
            }
        }
    }

    #[test]
    fn expression_sets_use_svm_snp_sets_use_trees() {
        for name in PAPER_DATASETS {
            let s = spec(name);
            match s.model {
                PaperModel::LinearSvm => assert!(!s.is_snp(), "{name}"),
                PaperModel::DecisionTree => assert!(s.is_snp(), "{name}"),
            }
        }
    }

    #[test]
    fn make_dataset_shapes() {
        let d = make_dataset("breast.basal", 1);
        assert_eq!(d.n_normal(), 56);
        assert_eq!(d.n_anomaly(), 19);
        assert_eq!(d.data.n_features(), 320);
        assert_eq!(d.data.n_rows(), 75);
    }

    #[test]
    fn labeled_indices_partition_rows() {
        let d = make_dataset("autism", 2);
        let n = d.normal_indices();
        let a = d.anomaly_indices();
        assert_eq!(n.len() + a.len(), d.data.n_rows());
        assert!(n.iter().all(|&r| !d.labels[r]));
        assert!(a.iter().all(|&r| d.labels[r]));
    }

    #[test]
    fn fixed_split_matches_paper_protocol() {
        let (train, test) = make_fixed_split(3);
        assert_eq!(train.n_rows(), 270);
        assert_eq!(test.data.n_rows(), 64);
        assert_eq!(test.n_normal(), 10);
        assert_eq!(test.n_anomaly(), 54);
        assert_eq!(train.n_features(), 2400);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = make_dataset("smokers2", 7);
        let b = make_dataset("smokers2", 7);
        assert_eq!(a.data, b.data);
        let c = make_dataset("smokers2", 8);
        assert_ne!(a.data, c.data);
    }

    #[test]
    #[should_panic(expected = "unknown data set")]
    fn unknown_name_panics() {
        spec("nonexistent");
    }

    #[test]
    fn autism_has_no_signal_by_construction() {
        if let SpecKind::Snp(cfg) = spec("autism").kind {
            assert_eq!(cfg.n_disease_loci, 0);
            assert_eq!(cfg.n_subpops, 1);
        } else {
            panic!("autism must be SNP");
        }
    }

    #[test]
    fn schizophrenia_confounds_ancestry_with_case_status() {
        let d = make_dataset("schizophrenia", 11);
        // Cases come from subpop 3, controls from 0-2; ancestry-informative
        // loci must therefore separate the groups. Spot-check one high-
        // divergence locus's genotype means.
        if let SpecKind::Snp(cfg) = spec("schizophrenia").kind {
            let g = SnpGenerator::new(cfg);
            let top = g.ancestry_informative_loci()[0];
            let codes = d.data.column(top).as_categorical().unwrap();
            let mean = |case: bool| -> f64 {
                let v: Vec<f64> = codes
                    .iter()
                    .zip(&d.labels)
                    .filter(|(_, &l)| l == case)
                    .map(|(&c, _)| c as f64)
                    .collect();
                v.iter().sum::<f64>() / v.len() as f64
            };
            assert!(
                (mean(true) - mean(false)).abs() > 0.2,
                "ancestry-informative locus must separate cohorts"
            );
        }
    }
}
