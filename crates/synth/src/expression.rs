//! Latent-factor (gene-module) expression generator.
//!
//! Surrogate for the CSAX-compendium expression data sets. The generative
//! story matches how the paper reasons about its data:
//!
//! * genes are organized in co-regulated **modules** ("most phenotypes of
//!   interest involve large numbers of related genes") — a sample's module
//!   activities `z ~ N(0, I)` drive every member gene through a loading;
//! * a configurable fraction of genes is **irrelevant** pure noise ("the
//!   majority of features in most genomic data sets are likely to be
//!   irrelevant");
//! * anomalous samples **dysregulate a fixed subset of genes**: within each
//!   affected module, roughly half the member genes stop following the
//!   shared factor (they receive an offset their module-mates do not).
//!   This is the kind of signal FRaC detects — a *violated conditional
//!   relationship* between a gene and its predictors — and it is diffuse
//!   (spread over many genes in several modules), which is exactly the
//!   property that makes random filtering viable (paper §IV). Note that
//!   merely shifting a whole module's latent activity would be invisible to
//!   FRaC: every member gene would shift coherently and each would still be
//!   perfectly predicted by its mates.
//!
//! Generated values: `x_g = μ_g + Σ_m w_{gm} z_m + σ ε_g`, plus the gene's
//! dysregulation offset when the sample is anomalous.

use crate::rng::Sampler;
use frac_dataset::{Column, Dataset, Schema};

/// How anomalous samples deviate from the normal generative process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnomalyMode {
    /// Dysregulated genes receive a constant offset their module-mates do
    /// not follow. Breaks conditional structure *and* shifts marginals —
    /// the typical disease-expression signature, used for the paper-table
    /// surrogates.
    #[default]
    Offset,
    /// Dysregulated genes follow an *independent* copy of their module's
    /// latent factor: marginal distributions are exactly unchanged, only
    /// the inter-gene relationship breaks. Invisible to distance/density
    /// detectors, visible to FRaC — the construction behind the
    /// irrelevant-variable robustness comparison (paper §I's claim).
    Decouple,
}

/// Parameters of the expression surrogate.
#[derive(Debug, Clone)]
pub struct ExpressionConfig {
    /// Total number of gene features.
    pub n_features: usize,
    /// Number of latent modules.
    pub n_modules: usize,
    /// Fraction of genes loading on modules (the rest are pure noise).
    pub relevant_fraction: f64,
    /// Scale of module loadings `w`.
    pub loading_scale: f64,
    /// Per-gene observation noise σ.
    pub noise_sd: f64,
    /// Number of modules dysregulated in anomalous samples.
    pub anomaly_modules: usize,
    /// Latent shift applied to dysregulated modules in anomalies
    /// (ignored under [`AnomalyMode::Decouple`]).
    pub anomaly_shift: f64,
    /// How anomalies deviate (offset vs decoupling).
    pub anomaly_mode: AnomalyMode,
    /// Structure seed: module memberships, loadings, baselines, and the
    /// identity/sign of dysregulated modules are pure functions of this.
    pub structure_seed: u64,
}

impl Default for ExpressionConfig {
    fn default() -> Self {
        ExpressionConfig {
            n_features: 500,
            n_modules: 25,
            relevant_fraction: 0.6,
            loading_scale: 1.0,
            noise_sd: 1.0,
            anomaly_modules: 6,
            anomaly_shift: 1.0,
            anomaly_mode: AnomalyMode::Offset,
            structure_seed: 0xEE17,
        }
    }
}

/// Per-gene structure: baseline, module loadings.
#[derive(Debug, Clone)]
struct Gene {
    baseline: f64,
    /// (module index, loading weight); empty for irrelevant genes.
    loadings: Vec<(usize, f64)>,
}

/// A fixed expression "study": gene/module structure is frozen at
/// construction; sampling draws subjects from it.
#[derive(Debug, Clone)]
pub struct ExpressionGenerator {
    config: ExpressionConfig,
    genes: Vec<Gene>,
    /// Per-gene offset applied in anomalous samples (0 for unaffected
    /// genes). Nonzero only for dysregulated members of affected modules,
    /// whose module-mates do *not* move — the conditional violation FRaC
    /// detects.
    anomaly_offsets: Vec<f64>,
    /// Per-gene modules this gene is *decoupled* from in anomalies (used by
    /// [`AnomalyMode::Decouple`]; same gene selection as the offsets).
    decoupled: Vec<Vec<usize>>,
}

impl ExpressionGenerator {
    /// Build the study structure from the configuration.
    ///
    /// # Panics
    /// Panics on degenerate configurations (no features / no modules /
    /// more anomaly modules than modules).
    pub fn new(config: ExpressionConfig) -> Self {
        assert!(config.n_features > 0, "need at least one feature");
        assert!(config.n_modules > 0, "need at least one module");
        assert!(
            config.anomaly_modules <= config.n_modules,
            "cannot dysregulate more modules than exist"
        );
        let mut s = Sampler::seed_from_u64(config.structure_seed);
        let genes = (0..config.n_features)
            .map(|_| {
                let baseline = s.normal_with(0.0, 1.0);
                let loadings = if s.bernoulli(config.relevant_fraction) {
                    // Most relevant genes load on one module; some on two,
                    // creating the masked-weaker-predictor structure the
                    // paper's introduction discusses (gene promoted strongly
                    // by B, weakly by C).
                    let k = if s.bernoulli(0.3) { 2 } else { 1 };
                    s.subset(config.n_modules, k)
                        .into_iter()
                        .map(|m| {
                            let sign = if s.bernoulli(0.5) { 1.0 } else { -1.0 };
                            let w = sign
                                * config.loading_scale
                                * s.uniform_range(0.5, 1.5);
                            (m, w)
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                Gene { baseline, loadings }
            })
            .collect();
        let affected: Vec<(usize, f64)> = s
            .subset(config.n_modules, config.anomaly_modules)
            .into_iter()
            .map(|m| {
                let sign = if s.bernoulli(0.5) { 1.0 } else { -1.0 };
                (m, sign * config.anomaly_shift)
            })
            .collect();
        // Dysregulate about half of each affected module's member genes: the
        // offset (or decoupling) breaks their relationship with the mates
        // that stay put.
        let genes: Vec<Gene> = genes;
        let mut anomaly_offsets = vec![0.0f64; genes.len()];
        let mut decoupled = vec![Vec::new(); genes.len()];
        for (gi, g) in genes.iter().enumerate() {
            for &(m, delta) in &affected {
                if g.loadings.iter().any(|&(gm, _)| gm == m) && s.bernoulli(0.5) {
                    anomaly_offsets[gi] += delta;
                    decoupled[gi].push(m);
                }
            }
        }
        ExpressionGenerator { config, genes, anomaly_offsets, decoupled }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExpressionConfig {
        &self.config
    }

    /// Ground-truth gene sets, one per module: the genes loading on it.
    /// These play the role of GO terms / pathway annotations for CSAX-style
    /// enrichment experiments, with the advantage that the dysregulated
    /// modules are known.
    pub fn module_gene_sets(&self) -> Vec<Vec<usize>> {
        let mut sets = vec![Vec::new(); self.config.n_modules];
        for (g, gene) in self.genes.iter().enumerate() {
            for &(m, _) in &gene.loadings {
                sets[m].push(g);
            }
        }
        sets
    }

    /// Indices of the modules dysregulated in anomalies (those containing
    /// at least one gene with a nonzero anomaly offset).
    pub fn dysregulated_modules(&self) -> Vec<usize> {
        let sets = self.module_gene_sets();
        (0..sets.len())
            .filter(|&m| sets[m].iter().any(|&g| self.anomaly_offsets[g] != 0.0))
            .collect()
    }

    /// Indices of dysregulated genes (nonzero anomaly offset) — the
    /// ground-truth "relevant to the anomaly" set, useful for
    /// interpretability experiments.
    pub fn anomaly_relevant_genes(&self) -> Vec<usize> {
        self.anomaly_offsets
            .iter()
            .enumerate()
            .filter(|(_, &o)| o != 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    fn sample_row(&self, anomalous: bool, s: &mut Sampler) -> Vec<f64> {
        let z: Vec<f64> = (0..self.config.n_modules).map(|_| s.normal()).collect();
        (0..self.genes.len())
            .map(|gi| {
                let g = &self.genes[gi];
                let mut signal = 0.0f64;
                for &(m, w) in &g.loadings {
                    let factor = if anomalous
                        && self.config.anomaly_mode == AnomalyMode::Decouple
                        && self.decoupled[gi].contains(&m)
                    {
                        // Decoupled: this gene follows its own private copy
                        // of the factor — marginals unchanged, relationship
                        // to module-mates destroyed.
                        s.normal()
                    } else {
                        z[m]
                    };
                    signal += w * factor;
                }
                let dys = if anomalous && self.config.anomaly_mode == AnomalyMode::Offset {
                    self.anomaly_offsets[gi]
                } else {
                    0.0
                };
                g.baseline + signal + dys + s.normal_with(0.0, self.config.noise_sd)
            })
            .collect()
    }

    /// Generate a cohort: `n_normal` normal then `n_anomaly` anomalous
    /// samples (labels aligned by row: `true` = anomalous). Sampling is a
    /// pure function of `cohort_seed` given the frozen structure.
    pub fn generate(
        &self,
        n_normal: usize,
        n_anomaly: usize,
        cohort_seed: u64,
    ) -> (Dataset, Vec<bool>) {
        let mut s = Sampler::seed_from_u64(cohort_seed);
        let n = n_normal + n_anomaly;
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n); self.config.n_features];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let anomalous = i >= n_normal;
            let row = self.sample_row(anomalous, &mut s);
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v);
            }
            labels.push(anomalous);
        }
        let schema = Schema::new(
            (0..self.config.n_features)
                .map(|g| frac_dataset::Feature::real(format!("gene{g}")))
                .collect(),
        );
        let data = Dataset::new(schema, columns.into_iter().map(|v| Column::Real(v.into())).collect());
        (data, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::stats;

    fn small() -> ExpressionGenerator {
        ExpressionGenerator::new(ExpressionConfig {
            n_features: 60,
            n_modules: 6,
            relevant_fraction: 0.8,
            anomaly_modules: 2,
            anomaly_shift: 2.0,
            ..ExpressionConfig::default()
        })
    }

    #[test]
    fn shapes_and_labels() {
        let g = small();
        let (d, labels) = g.generate(20, 10, 1);
        assert_eq!(d.n_rows(), 30);
        assert_eq!(d.n_features(), 60);
        assert_eq!(labels.iter().filter(|&&a| a).count(), 10);
        assert!(labels[..20].iter().all(|&a| !a));
        assert!(labels[20..].iter().all(|&a| a));
    }

    #[test]
    fn deterministic_given_seeds() {
        let g1 = small();
        let g2 = small();
        let (a, _) = g1.generate(5, 5, 9);
        let (b, _) = g2.generate(5, 5, 9);
        assert_eq!(a, b);
        let (c, _) = g1.generate(5, 5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn module_mates_are_correlated() {
        // Two genes loading on the same module must correlate far more than
        // two irrelevant genes.
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 200,
            n_modules: 4,
            relevant_fraction: 1.0,
            noise_sd: 0.3,
            anomaly_modules: 1,
            structure_seed: 3,
            ..ExpressionConfig::default()
        });
        let (d, _) = g.generate(400, 0, 7);
        // Find two genes sharing a module.
        let mut pair = None;
        'outer: for i in 0..g.genes.len() {
            if g.genes[i].loadings.len() != 1 {
                continue;
            }
            for j in (i + 1)..g.genes.len() {
                if g.genes[j].loadings.len() == 1
                    && g.genes[i].loadings[0].0 == g.genes[j].loadings[0].0
                {
                    pair = Some((i, j));
                    break 'outer;
                }
            }
        }
        let (i, j) = pair.expect("some pair must share a module");
        let xi = d.column(i).as_real().unwrap();
        let xj = d.column(j).as_real().unwrap();
        let corr = correlation(xi, xj).abs();
        assert!(corr > 0.5, "module mates correlate |r| = {corr}");
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let ma = stats::mean(a).unwrap();
        let mb = stats::mean(b).unwrap();
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn irrelevant_genes_uncorrelated_with_modules() {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 100,
            relevant_fraction: 0.0,
            structure_seed: 4,
            ..ExpressionConfig::default()
        });
        let (d, _) = g.generate(300, 0, 2);
        let a = d.column(0).as_real().unwrap();
        let b = d.column(1).as_real().unwrap();
        assert!(correlation(a, b).abs() < 0.15);
    }

    #[test]
    fn anomalies_shift_relevant_genes() {
        let g = small();
        let relevant = g.anomaly_relevant_genes();
        assert!(!relevant.is_empty());
        let (d, _) = g.generate(300, 300, 5);
        // Mean |shift| over anomaly-relevant genes must exceed that over
        // non-relevant genes.
        let mean_shift = |idx: &[usize]| -> f64 {
            idx.iter()
                .map(|&j| {
                    let col = d.column(j).as_real().unwrap();
                    let normal_mean = stats::mean(&col[..300]).unwrap();
                    let anom_mean = stats::mean(&col[300..]).unwrap();
                    (anom_mean - normal_mean).abs()
                })
                .sum::<f64>()
                / idx.len() as f64
        };
        let non_relevant: Vec<usize> =
            (0..60).filter(|i| !relevant.contains(i)).collect();
        let rel = mean_shift(&relevant);
        let non = mean_shift(&non_relevant);
        assert!(rel > 2.0 * non, "relevant shift {rel} vs irrelevant {non}");
    }

    #[test]
    fn zero_shift_means_no_signal() {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 50,
            anomaly_shift: 0.0,
            structure_seed: 8,
            ..ExpressionConfig::default()
        });
        let (d, _) = g.generate(200, 200, 3);
        // Column means should match between groups within noise.
        for j in 0..10 {
            let col = d.column(j).as_real().unwrap();
            let diff = (stats::mean(&col[..200]).unwrap()
                - stats::mean(&col[200..]).unwrap())
            .abs();
            assert!(diff < 0.5, "gene {j} drifted by {diff}");
        }
    }

    #[test]
    fn decouple_mode_preserves_marginals() {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 60,
            n_modules: 6,
            relevant_fraction: 0.9,
            anomaly_modules: 3,
            anomaly_shift: 5.0, // irrelevant under Decouple
            anomaly_mode: AnomalyMode::Decouple,
            noise_sd: 0.5,
            structure_seed: 17,
            ..ExpressionConfig::default()
        });
        let relevant = g.anomaly_relevant_genes();
        assert!(!relevant.is_empty());
        let (d, _) = g.generate(600, 600, 4);
        for &j in relevant.iter().take(10) {
            let col = d.column(j).as_real().unwrap();
            let m_normal = stats::mean(&col[..600]).unwrap();
            let m_anom = stats::mean(&col[600..]).unwrap();
            let v_normal = stats::variance(&col[..600]).unwrap();
            let v_anom = stats::variance(&col[600..]).unwrap();
            assert!(
                (m_normal - m_anom).abs() < 0.25,
                "gene {j}: mean shifted {m_normal} vs {m_anom}"
            );
            assert!(
                (v_normal / v_anom).ln().abs() < 0.4,
                "gene {j}: variance changed {v_normal} vs {v_anom}"
            );
        }
    }

    #[test]
    fn decouple_mode_breaks_module_correlation() {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 120,
            n_modules: 4,
            relevant_fraction: 1.0,
            anomaly_modules: 4,
            anomaly_mode: AnomalyMode::Decouple,
            noise_sd: 0.2,
            structure_seed: 18,
            ..ExpressionConfig::default()
        });
        // Find a decoupled gene and an intact mate of the same module.
        let relevant = g.anomaly_relevant_genes();
        let sets = g.module_gene_sets();
        let mut pair = None;
        'outer: for &dys in &relevant {
            for set in &sets {
                if set.contains(&dys) {
                    for &mate in set {
                        if mate != dys && !relevant.contains(&mate) {
                            pair = Some((dys, mate));
                            break 'outer;
                        }
                    }
                }
            }
        }
        let (dys, mate) = pair.expect("some decoupled/intact pair exists");
        let (d, _) = g.generate(500, 500, 6);
        let xd = d.column(dys).as_real().unwrap();
        let xm = d.column(mate).as_real().unwrap();
        let r_normal = correlation(&xd[..500], &xm[..500]).abs();
        let r_anom = correlation(&xd[500..], &xm[500..]).abs();
        assert!(r_normal > 0.5, "normal correlation {r_normal}");
        assert!(
            r_anom < r_normal - 0.3,
            "anomalies must decouple: {r_anom} vs {r_normal}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot dysregulate")]
    fn rejects_too_many_anomaly_modules() {
        ExpressionGenerator::new(ExpressionConfig {
            n_modules: 3,
            anomaly_modules: 5,
            ..ExpressionConfig::default()
        });
    }
}
