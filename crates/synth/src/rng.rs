//! Seeded samplers for the generators.
//!
//! Built on `rand`'s `StdRng` only; normal, gamma and beta variates are
//! implemented here (Box–Muller and Marsaglia–Tsang) to avoid an extra
//! distribution dependency.

use rand::prelude::*;
use rand::rngs::StdRng;

/// A seeded sampler bundling the base RNG with variate transforms.
#[derive(Debug)]
pub struct Sampler {
    rng: StdRng,
    spare_normal: Option<f64>,
}

impl Sampler {
    /// Create from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Sampler { rng: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.random_range(0..n)
    }

    /// Bernoulli with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (pairs cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1: f64 = self.uniform().max(1e-300);
        let u2: f64 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal()
    }

    /// Gamma(shape, 1) via Marsaglia–Tsang (with the shape<1 boost).
    ///
    /// # Panics
    /// Panics unless `shape > 0`.
    pub fn gamma(&mut self, shape: f64) -> f64 {
        assert!(shape > 0.0, "gamma shape must be positive");
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
            let g = self.gamma(shape + 1.0);
            let u = self.uniform().max(1e-300);
            return g * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = self.uniform().max(1e-300);
            if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
                return d * v3;
            }
        }
    }

    /// Beta(a, b) via two gammas.
    ///
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn beta(&mut self, a: f64, b: f64) -> f64 {
        let x = self.gamma(a);
        let y = self.gamma(b);
        x / (x + y)
    }

    /// Binomial(n, p) by direct simulation (n is small here: 2 for
    /// genotypes).
    pub fn binomial(&mut self, n: u32, p: f64) -> u32 {
        (0..n).filter(|_| self.bernoulli(p)).count() as u32
    }

    /// Draw an index from a discrete distribution given by weights.
    ///
    /// # Panics
    /// Panics if weights are empty or sum to a non-positive value.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(!weights.is_empty() && total > 0.0, "bad categorical weights");
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// A random subset of `0..n` of exactly `k` elements (partial
    /// Fisher–Yates), in random order.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn subset(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "subset larger than ground set");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Sampler::seed_from_u64(5);
        let mut b = Sampler::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
            assert_eq!(a.gamma(2.5), b.gamma(2.5));
        }
    }

    #[test]
    fn normal_moments() {
        let mut s = Sampler::seed_from_u64(1);
        let xs: Vec<f64> = (0..20000).map(|_| s.normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut s = Sampler::seed_from_u64(2);
        for &shape in &[0.5, 1.0, 3.0, 10.0] {
            let n = 20000;
            let mean: f64 = (0..n).map(|_| s.gamma(shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn beta_mean_matches_parameters() {
        let mut s = Sampler::seed_from_u64(3);
        let (a, b) = (2.0, 5.0);
        let n = 20000;
        let mean: f64 = (0..n).map(|_| s.beta(a, b)).sum::<f64>() / n as f64;
        assert!((mean - a / (a + b)).abs() < 0.01, "mean {mean}");
        // Support check.
        for _ in 0..100 {
            let x = s.beta(0.5, 0.5);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn binomial_two_trials_hardy_weinberg() {
        let mut s = Sampler::seed_from_u64(4);
        let p = 0.3;
        let n = 30000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[s.binomial(2, p) as usize] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freq[0] - 0.49).abs() < 0.02);
        assert!((freq[1] - 0.42).abs() < 0.02);
        assert!((freq[2] - 0.09).abs() < 0.02);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut s = Sampler::seed_from_u64(6);
        let mut counts = [0usize; 3];
        for _ in 0..30000 {
            counts[s.categorical(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!((counts[2] as f64 / 30000.0 - 0.7).abs() < 0.02);
        assert!((counts[0] as f64 / 30000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn subset_is_exact_and_distinct() {
        let mut s = Sampler::seed_from_u64(7);
        let sub = s.subset(100, 17);
        assert_eq!(sub.len(), 17);
        let set: std::collections::HashSet<_> = sub.iter().collect();
        assert_eq!(set.len(), 17);
        assert!(sub.iter().all(|&i| i < 100));
        // Full subset is a permutation.
        let full = s.subset(10, 10);
        let mut sorted = full.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut s = Sampler::seed_from_u64(8);
        for _ in 0..1000 {
            let x = s.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
