//! Property-based equivalence of the Gram-matrix and primal fast paths.
//!
//! The Gram strategy sweeps coordinates in exactly the same order as the
//! primal fast loop (same derived RNG, same shuffle, same shrink/unshrink
//! thresholds) but reads gradients from the maintained dual image
//! `qb[i] = Σ_j Q_ij β_j` instead of a primal `w·xᵢ` dot. Floating-point
//! association differs, so iterates are not bitwise-equal, but both paths
//! minimize the same dual objective: with a tight stopping tolerance the
//! **objective values** must agree to ~1e-8 on random small problems — for
//! SVR and SVC, with and without warm starts, and both with shrinking
//! engaged (tight tolerance, many epochs) and effectively disabled (loose
//! tolerance, convergence before the shrink threshold tightens).

use frac_dataset::DesignMatrix;
use frac_learn::svc::{SvcConfig, SvcTrainer};
use frac_learn::svr::{SvrConfig, SvrTrainer};
use frac_learn::traits::{ClassifierTrainer, RegressorTrainer};
use frac_learn::{SolverMode, SolverStrategy};
use proptest::prelude::*;

const MAX_N: usize = 12;
const MAX_D: usize = 5;

/// Tight tolerance: the solver runs long enough for active-set shrinking
/// to engage and (on some draws) trigger unshrink-and-recheck passes.
const TIGHT: f64 = 1e-10;
/// Loose tolerance: convergence typically lands within the first epochs,
/// before shrinking removes any coordinate — the "shrinking off" regime.
const LOOSE: f64 = 1e-3;

fn svr_cfg(strategy: SolverStrategy, tolerance: f64) -> SvrConfig {
    SvrConfig {
        tolerance,
        max_epochs: 50_000,
        mode: SolverMode::Fast,
        strategy,
        ..SvrConfig::default()
    }
}

fn svc_cfg(strategy: SolverStrategy, tolerance: f64) -> SvcConfig {
    SvcConfig {
        tolerance,
        max_epochs: 50_000,
        mode: SolverMode::Fast,
        strategy,
        ..SvcConfig::default()
    }
}

fn matrix(n: usize, d: usize, values: &[f64]) -> DesignMatrix {
    DesignMatrix::from_raw(n, d, values[..n * d].to_vec())
}

/// The SVR dual objective at `beta`:
/// `½(‖w‖² + w_bias²) + ε·Σ|βᵢ| − Σ yᵢβᵢ` with `w = Σ βᵢxᵢ`.
fn svr_objective(x: &DesignMatrix, y: &[f64], beta: &[f64], epsilon: f64) -> f64 {
    let mut w = vec![0.0f64; x.n_cols()];
    let mut w_bias = 0.0f64;
    for (i, &b) in beta.iter().enumerate() {
        for (wj, &xj) in w.iter_mut().zip(x.row(i)) {
            *wj += b * xj;
        }
        w_bias += b;
    }
    0.5 * (w.iter().map(|v| v * v).sum::<f64>() + w_bias * w_bias)
        + epsilon * beta.iter().map(|b| b.abs()).sum::<f64>()
        - y.iter().zip(beta).map(|(yi, b)| yi * b).sum::<f64>()
}

/// The binary C-SVC dual objective at `alpha` for ±1 labels:
/// `½(‖w‖² + w_bias²) − Σ αᵢ` with `w = Σ αᵢyᵢxᵢ`.
fn svc_objective(x: &DesignMatrix, labels: &[f64], alpha: &[f64]) -> f64 {
    let mut w = vec![0.0f64; x.n_cols()];
    let mut w_bias = 0.0f64;
    for (i, &a) in alpha.iter().enumerate() {
        let scaled = a * labels[i];
        for (wj, &xj) in w.iter_mut().zip(x.row(i)) {
            *wj += scaled * xj;
        }
        w_bias += scaled;
    }
    0.5 * (w.iter().map(|v| v * v).sum::<f64>() + w_bias * w_bias)
        - alpha.iter().sum::<f64>()
}

fn svr_objective_for(
    x: &DesignMatrix,
    y: &[f64],
    strategy: SolverStrategy,
    tolerance: f64,
    warm: Option<&[f64]>,
) -> f64 {
    let cfg = svr_cfg(strategy, tolerance);
    let (_, duals) = SvrTrainer::new(cfg).train_view_warm(x, y, warm);
    svr_objective(x, y, &duals.expect("SVR always returns duals"), cfg.epsilon)
}

fn svc_objectives_for(
    x: &DesignMatrix,
    y: &[u32],
    arity: u32,
    strategy: SolverStrategy,
    tolerance: f64,
    warm: Option<&[Vec<f64>]>,
) -> Vec<f64> {
    let (_, duals) =
        SvcTrainer::new(svc_cfg(strategy, tolerance)).train_view_warm(x, y, arity, warm);
    let duals = duals.expect("SVC always returns duals");
    (0..arity as usize)
        .map(|class| {
            let labels: Vec<f64> =
                y.iter().map(|&c| if c as usize == class { 1.0 } else { -1.0 }).collect();
            svc_objective(x, &labels, &duals[class])
        })
        .collect()
}

/// The equivalence gate: 1e-8 relative agreement between the two
/// strategies' objectives, per the solver's documented contract.
fn assert_close(a: f64, b: f64, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= 1e-8 * (1.0 + a.abs()),
        "{what}: objectives diverged ({a} vs {b})"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn svr_gram_matches_primal_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(-2.0f64..2.0, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        for tol in [TIGHT, LOOSE] {
            let primal = svr_objective_for(&x, &y[..n], SolverStrategy::Primal, tol, None);
            let gram = svr_objective_for(&x, &y[..n], SolverStrategy::Gram, tol, None);
            assert_close(primal, gram, &format!("svr cold tol={tol:e}"))?;
        }
    }

    #[test]
    fn svr_gram_matches_primal_with_warm_start(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(-2.0f64..2.0, MAX_N),
        warm in prop::collection::vec(-3.0f64..3.0, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        for tol in [TIGHT, LOOSE] {
            let primal =
                svr_objective_for(&x, &y[..n], SolverStrategy::Primal, tol, Some(&warm[..n]));
            let gram =
                svr_objective_for(&x, &y[..n], SolverStrategy::Gram, tol, Some(&warm[..n]));
            assert_close(primal, gram, &format!("svr warm tol={tol:e}"))?;
        }
    }

    #[test]
    fn svc_gram_matches_primal_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(0u32..3, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        for tol in [TIGHT, LOOSE] {
            let primal = svc_objectives_for(&x, &y[..n], 3, SolverStrategy::Primal, tol, None);
            let gram = svc_objectives_for(&x, &y[..n], 3, SolverStrategy::Gram, tol, None);
            for (class, (p, g)) in primal.iter().zip(&gram).enumerate() {
                assert_close(*p, *g, &format!("svc cold class {class} tol={tol:e}"))?;
            }
        }
    }

    #[test]
    fn svc_gram_matches_primal_with_warm_start(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(0u32..3, MAX_N),
        warm_flat in prop::collection::vec(-2.0f64..2.0, 3 * MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let warm: Vec<Vec<f64>> =
            warm_flat.chunks(MAX_N).map(|c| c[..n].to_vec()).collect();
        for tol in [TIGHT, LOOSE] {
            let primal =
                svc_objectives_for(&x, &y[..n], 3, SolverStrategy::Primal, tol, Some(&warm));
            let gram =
                svc_objectives_for(&x, &y[..n], 3, SolverStrategy::Gram, tol, Some(&warm));
            for (class, (p, g)) in primal.iter().zip(&gram).enumerate() {
                assert_close(*p, *g, &format!("svc warm class {class} tol={tol:e}"))?;
            }
        }
    }

    #[test]
    fn gram_also_matches_strict_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(-2.0f64..2.0, MAX_N),
    ) {
        // Anchor the Gram path to the bitwise-reference strict solver too,
        // so a shared bug in both fast paths cannot hide.
        let x = matrix(n, d, &values);
        let strict_cfg = SvrConfig {
            tolerance: TIGHT,
            max_epochs: 50_000,
            mode: SolverMode::Strict,
            ..SvrConfig::default()
        };
        let (_, duals) = SvrTrainer::new(strict_cfg).train_view_warm(&x, &y[..n], None);
        let strict =
            svr_objective(&x, &y[..n], &duals.expect("duals"), strict_cfg.epsilon);
        let gram = svr_objective_for(&x, &y[..n], SolverStrategy::Gram, TIGHT, None);
        assert_close(strict, gram, "svr gram vs strict")?;
    }
}

/// The auto policy must be deterministic per shape: on a tiny problem the
/// cost model picks some strategy, and two identical solves agree exactly
/// on the objective (same path, same arithmetic).
#[test]
fn auto_strategy_is_deterministic() {
    let values: Vec<f64> = (0..8 * 4).map(|i| ((i * 37 % 17) as f64 - 8.0) / 4.0).collect();
    let x = matrix(8, 4, &values);
    let y: Vec<f64> = (0..8).map(|i| ((i * 53 % 11) as f64 - 5.0) / 3.0).collect();
    let a = svr_objective_for(&x, &y, SolverStrategy::Auto, TIGHT, None);
    let b = svr_objective_for(&x, &y, SolverStrategy::Auto, TIGHT, None);
    assert_eq!(a.to_bits(), b.to_bits());
}
