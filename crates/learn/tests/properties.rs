//! Property-based tests of the learning substrate's mathematical
//! guarantees: primal-objective descent for the SVMs, output bounds for the
//! trees, probability axioms for the error models.

use frac_dataset::DesignMatrix;
use frac_learn::error::{ConfusionErrorModel, GaussianErrorModel};
use frac_learn::svc::SvcTrainer;
use frac_learn::svr::{SvrConfig, SvrTrainer};
use frac_learn::traits::{Classifier, ClassifierTrainer, Regressor, RegressorTrainer};
use frac_learn::tree::{ClassificationTreeTrainer, RegressionTreeTrainer};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = (DesignMatrix, Vec<f64>)> {
    (2usize..20, 1usize..8).prop_flat_map(|(n, d)| {
        (
            prop::collection::vec(-5.0f64..5.0, n * d),
            prop::collection::vec(-5.0f64..5.0, n),
        )
            .prop_map(move |(x, y)| (DesignMatrix::from_raw(n, d, x), y))
    })
}

/// L1-loss ε-SVR primal objective.
fn svr_objective(w: &[f64], b: f64, x: &DesignMatrix, y: &[f64], c: f64, eps: f64) -> f64 {
    let reg: f64 = 0.5 * (w.iter().map(|v| v * v).sum::<f64>() + b * b);
    let loss: f64 = (0..x.n_rows())
        .map(|i| (x.row_dot(i, w) + b - y[i]).abs() - eps)
        .map(|l| l.max(0.0))
        .sum();
    reg + c * loss
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svr_never_worse_than_zero_model((x, y) in arb_problem()) {
        // The dual solver starts at β = 0 (the zero model) and monotonically
        // improves the dual; the primal of its solution must not exceed the
        // zero model's objective by more than the duality gap — and for a
        // converged solver, must be at most the zero objective (+ slack for
        // loose stopping).
        let cfg = SvrConfig::default();
        let t = SvrTrainer::new(cfg).train(&x, &y);
        let fitted = svr_objective(t.model.weights(), t.model.bias(), &x, &y, cfg.c, cfg.epsilon);
        let zero = svr_objective(&vec![0.0; x.n_cols()], 0.0, &x, &y, cfg.c, cfg.epsilon);
        prop_assert!(fitted <= zero + 1e-6, "fitted {} vs zero {}", fitted, zero);
    }

    #[test]
    fn svr_predictions_finite((x, y) in arb_problem()) {
        let t = SvrTrainer::default().train(&x, &y);
        for r in 0..x.n_rows() {
            prop_assert!(t.model.predict(x.row(r)).is_finite());
        }
        prop_assert!(t.model.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn svc_predicts_valid_codes((x, y) in arb_problem(), arity in 2u32..5) {
        let codes: Vec<u32> = y.iter().map(|v| (v.abs() as u32) % arity).collect();
        let t = SvcTrainer::default().train(&x, &codes, arity);
        for r in 0..x.n_rows() {
            prop_assert!(t.model.predict(x.row(r)) < arity);
        }
    }

    #[test]
    fn regression_tree_bounded_by_targets((x, y) in arb_problem()) {
        let t = RegressionTreeTrainer::default().train(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Leaf means are convex combinations of targets.
        for r in 0..x.n_rows() {
            let p = t.model.predict(x.row(r));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
        // Arbitrary query points also land in leaf means.
        let probe: Vec<f64> = (0..x.n_cols()).map(|c| c as f64 * 100.0).collect();
        let p = t.model.predict(&probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn classification_tree_predicts_seen_codes((x, y) in arb_problem(), arity in 2u32..5) {
        let codes: Vec<u32> = y.iter().map(|v| (v.abs() as u32) % arity).collect();
        let t = ClassificationTreeTrainer::default().train(&x, &codes, arity);
        for r in 0..x.n_rows() {
            let p = t.model.predict(x.row(r));
            prop_assert!(codes.contains(&p), "predicted unseen class {p}");
        }
    }

    #[test]
    fn tree_training_accuracy_dominates_majority((x, y) in arb_problem()) {
        // A tree can always fall back to the majority leaf, so training
        // accuracy is at least the majority-class frequency.
        let codes: Vec<u32> = y.iter().map(|v| u32::from(*v > 0.0)).collect();
        let t = ClassificationTreeTrainer::default().train(&x, &codes, 2);
        let correct = (0..x.n_rows())
            .filter(|&r| t.model.predict(x.row(r)) == codes[r])
            .count();
        let majority = codes.iter().filter(|&&c| c == 1).count().max(
            codes.iter().filter(|&&c| c == 0).count(),
        );
        prop_assert!(correct >= majority, "{correct} < majority {majority}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gaussian_surprisal_minimized_at_the_mean_residual(
        pairs in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..40),
        probe in -20.0f64..20.0,
    ) {
        let m = GaussianErrorModel::fit(&pairs);
        // Observation exactly at prediction + μ has the minimum surprisal.
        let at_mode = m.surprisal(m.mu(), 0.0);
        prop_assert!(m.surprisal(probe, 0.0) >= at_mode - 1e-9);
    }

    #[test]
    fn confusion_rows_are_distributions(
        pairs in prop::collection::vec((0u32..4, 0u32..4), 1..60),
    ) {
        let m = ConfusionErrorModel::fit(&pairs, 4);
        for pred in 0..4 {
            let total: f64 = (0..4).map(|t| m.probability(t, pred)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for t in 0..4 {
                let p = m.probability(t, pred);
                prop_assert!(p > 0.0 && p < 1.0, "smoothed p must be interior");
                prop_assert!(m.surprisal(t, pred).is_finite());
            }
        }
    }

    #[test]
    fn confusion_surprisal_decreases_with_evidence(
        n in 1usize..50,
    ) {
        // The more often (pred=0, true=0) is observed, the less surprising
        // true=0 given pred=0 becomes.
        let few = ConfusionErrorModel::fit(&vec![(0, 0); n], 3);
        let many = ConfusionErrorModel::fit(&vec![(0, 0); n * 2], 3);
        prop_assert!(many.surprisal(0, 0) <= few.surprisal(0, 0) + 1e-12);
    }
}
