//! Round-trip tests of every model type's text serialization: a fitted and
//! a reloaded model must agree *exactly* on all predictions.

use frac_dataset::textio::{TextError, TextReader, TextWriter};
use frac_dataset::DesignMatrix;
use frac_learn::baseline::{
    ConstantRegressor, ConstantRegressorTrainer, MajorityClassifier, MajorityClassifierTrainer,
};
use frac_learn::error::{ConfusionErrorModel, GaussianErrorModel};
use frac_learn::svc::SvcTrainer;
use frac_learn::svr::{LinearSvr, SvrTrainer};
use frac_learn::traits::{Classifier, ClassifierTrainer, Regressor, RegressorTrainer};
use frac_learn::tree::{
    ClassificationTree, ClassificationTreeTrainer, RegressionTree, RegressionTreeTrainer,
};
use frac_learn::LinearSvc;

fn matrix(n: usize, d: usize, seed: u64) -> DesignMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    DesignMatrix::from_raw(n, d, (0..n * d).map(|_| next()).collect())
}

fn roundtrip<T>(model: &T, write: impl Fn(&T, &mut TextWriter), parse: impl Fn(&mut TextReader) -> Result<T, TextError>) -> T {
    let mut w = TextWriter::new();
    write(model, &mut w);
    let text = w.finish();
    let mut r = TextReader::new(&text);
    parse(&mut r).expect("roundtrip parse")
}

#[test]
fn svr_roundtrip_is_prediction_exact() {
    let x = matrix(30, 7, 1);
    let y: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
    let t = SvrTrainer::default().train(&x, &y);
    let back = roundtrip(&t.model, LinearSvr::write_text, LinearSvr::parse_text);
    for r in 0..30 {
        assert_eq!(
            t.model.predict(x.row(r)).to_bits(),
            back.predict(x.row(r)).to_bits(),
            "row {r}"
        );
    }
}

#[test]
fn svc_roundtrip_is_prediction_exact() {
    let x = matrix(40, 5, 2);
    let y: Vec<u32> = (0..40).map(|i| (i % 3) as u32).collect();
    let t = SvcTrainer::default().train(&x, &y, 3);
    let back = roundtrip(&t.model, LinearSvc::write_text, LinearSvc::parse_text);
    assert_eq!(back.n_classes(), 3);
    for r in 0..40 {
        assert_eq!(t.model.predict(x.row(r)), back.predict(x.row(r)));
        for k in 0..3 {
            assert_eq!(
                t.model.decision_value(k, x.row(r)).to_bits(),
                back.decision_value(k, x.row(r)).to_bits()
            );
        }
    }
}

#[test]
fn tree_roundtrips_preserve_structure() {
    let x = matrix(60, 4, 3);
    let yc: Vec<u32> = (0..60).map(|i| u32::from(x.get(i, 0) > 0.0)).collect();
    let yr: Vec<f64> = (0..60).map(|i| x.get(i, 1) * 2.0).collect();

    let ct = ClassificationTreeTrainer::default().train(&x, &yc, 2);
    let ct_back = roundtrip(&ct.model, ClassificationTree::write_text, |r| {
        ClassificationTree::parse_text(r)
    });
    assert_eq!(ct.model.n_nodes(), ct_back.n_nodes());
    assert_eq!(ct.model.n_leaves(), ct_back.n_leaves());

    let rt = RegressionTreeTrainer::default().train(&x, &yr);
    let rt_back =
        roundtrip(&rt.model, RegressionTree::write_text, RegressionTree::parse_text);
    for r in 0..60 {
        assert_eq!(ct.model.predict(x.row(r)), ct_back.predict(x.row(r)));
        assert_eq!(
            rt.model.predict(x.row(r)).to_bits(),
            rt_back.predict(x.row(r)).to_bits()
        );
    }
}

#[test]
fn error_model_roundtrips() {
    let pairs: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 0.1, i as f64 * 0.09)).collect();
    let g = GaussianErrorModel::fit(&pairs);
    let g_back = roundtrip(&g, GaussianErrorModel::write_text, |r| {
        GaussianErrorModel::parse_text(r)
    });
    assert_eq!(g.surprisal(1.0, 0.5).to_bits(), g_back.surprisal(1.0, 0.5).to_bits());

    let cpairs: Vec<(u32, u32)> = (0..60).map(|i| ((i % 3) as u32, ((i / 2) % 3) as u32)).collect();
    let c = ConfusionErrorModel::fit(&cpairs, 3);
    let c_back = roundtrip(&c, ConfusionErrorModel::write_text, |r| {
        ConfusionErrorModel::parse_text(r)
    });
    for t in 0..3 {
        for p in 0..3 {
            assert_eq!(c.surprisal(t, p).to_bits(), c_back.surprisal(t, p).to_bits());
        }
    }
}

#[test]
fn baseline_roundtrips() {
    let x = matrix(10, 1, 5);
    let cr = ConstantRegressorTrainer.train(&x, &[1.0; 10]).model;
    let cr_back =
        roundtrip(&cr, ConstantRegressor::write_text, ConstantRegressor::parse_text);
    assert_eq!(cr.mean(), cr_back.mean());

    let mc = MajorityClassifierTrainer.train(&x, &[2; 10], 3).model;
    let mc_back =
        roundtrip(&mc, MajorityClassifier::write_text, MajorityClassifier::parse_text);
    assert_eq!(mc.class(), mc_back.class());
}

#[test]
fn corrupted_model_text_is_rejected() {
    // Out-of-range leaf class.
    let text = "ctree_arity 2\ntree_nodes 1\nleaf 7\n";
    let mut r = TextReader::new(text);
    assert!(ClassificationTree::parse_text(&mut r).is_err());
    // Split child out of range.
    let text = "rtree\ntree_nodes 1\nsplit 0 0.5 3 4\n";
    let mut r = TextReader::new(text);
    assert!(RegressionTree::parse_text(&mut r).is_err());
    // Wrong counts length.
    let text = "conf_err 3 1.0\nconf_counts 1 2 3\n";
    let mut r = TextReader::new(text);
    assert!(ConfusionErrorModel::parse_text(&mut r).is_err());
}
