//! Property-based equivalence of the fast and strict solver paths.
//!
//! Both paths minimize the same dual objective; shrinking, warm starts, and
//! blocked kernels may change the iterate sequence but never the fixed
//! point. With a tight stopping tolerance, the **objective values** of the
//! two solutions must therefore agree to ~1e-8 on random small problems —
//! for SVR and SVC, with and without warm starts (including infeasible warm
//! vectors, which the solver clamps into its box).

use frac_dataset::DesignMatrix;
use frac_learn::svc::{SvcConfig, SvcTrainer};
use frac_learn::svr::{SvrConfig, SvrTrainer};
use frac_learn::traits::{ClassifierTrainer, RegressorTrainer};
use frac_learn::SolverMode;
use proptest::prelude::*;

const MAX_N: usize = 12;
const MAX_D: usize = 5;

fn svr_cfg(mode: SolverMode) -> SvrConfig {
    SvrConfig { tolerance: 1e-10, max_epochs: 50_000, mode, ..SvrConfig::default() }
}

fn svc_cfg(mode: SolverMode) -> SvcConfig {
    SvcConfig { tolerance: 1e-10, max_epochs: 50_000, mode, ..SvcConfig::default() }
}

fn matrix(n: usize, d: usize, values: &[f64]) -> DesignMatrix {
    DesignMatrix::from_raw(n, d, values[..n * d].to_vec())
}

/// The SVR dual objective at `beta`:
/// `½(‖w‖² + w_bias²) + ε·Σ|βᵢ| − Σ yᵢβᵢ` with `w = Σ βᵢxᵢ`.
fn svr_objective(x: &DesignMatrix, y: &[f64], beta: &[f64], epsilon: f64) -> f64 {
    let mut w = vec![0.0f64; x.n_cols()];
    let mut w_bias = 0.0f64;
    for (i, &b) in beta.iter().enumerate() {
        for (wj, &xj) in w.iter_mut().zip(x.row(i)) {
            *wj += b * xj;
        }
        w_bias += b;
    }
    0.5 * (w.iter().map(|v| v * v).sum::<f64>() + w_bias * w_bias)
        + epsilon * beta.iter().map(|b| b.abs()).sum::<f64>()
        - y.iter().zip(beta).map(|(yi, b)| yi * b).sum::<f64>()
}

/// The binary C-SVC dual objective at `alpha` for ±1 labels:
/// `½(‖w‖² + w_bias²) − Σ αᵢ` with `w = Σ αᵢyᵢxᵢ`.
fn svc_objective(x: &DesignMatrix, labels: &[f64], alpha: &[f64]) -> f64 {
    let mut w = vec![0.0f64; x.n_cols()];
    let mut w_bias = 0.0f64;
    for (i, &a) in alpha.iter().enumerate() {
        let scaled = a * labels[i];
        for (wj, &xj) in w.iter_mut().zip(x.row(i)) {
            *wj += scaled * xj;
        }
        w_bias += scaled;
    }
    0.5 * (w.iter().map(|v| v * v).sum::<f64>() + w_bias * w_bias)
        - alpha.iter().sum::<f64>()
}

fn svr_objective_for(
    x: &DesignMatrix,
    y: &[f64],
    mode: SolverMode,
    warm: Option<&[f64]>,
) -> f64 {
    let cfg = svr_cfg(mode);
    let (_, duals) = SvrTrainer::new(cfg).train_view_warm(x, y, warm);
    svr_objective(x, y, &duals.expect("SVR always returns duals"), cfg.epsilon)
}

fn svc_objectives_for(
    x: &DesignMatrix,
    y: &[u32],
    arity: u32,
    mode: SolverMode,
    warm: Option<&[Vec<f64>]>,
) -> Vec<f64> {
    let (_, duals) = SvcTrainer::new(svc_cfg(mode)).train_view_warm(x, y, arity, warm);
    let duals = duals.expect("SVC always returns duals");
    (0..arity as usize)
        .map(|class| {
            let labels: Vec<f64> =
                y.iter().map(|&c| if c as usize == class { 1.0 } else { -1.0 }).collect();
            svc_objective(x, &labels, &duals[class])
        })
        .collect()
}

fn assert_close(a: f64, b: f64, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= 1e-8 * (1.0 + a.abs()),
        "{what}: objectives diverged ({a} vs {b})"
    );
    Ok(())
}

/// Looser agreement for the f32-compute gradient mode: each gradient dot
/// carries ~1.2e-7 relative rounding, so the iterate sequence diverges and
/// the solver stalls at an f32-scale violation floor instead of 1e-10. The
/// dual objective is flat near the optimum, so 1e-4 relative agreement is a
/// comfortable bound for these problem scales.
fn assert_close_f32(a: f64, b: f64, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= 1e-4 * (1.0 + a.abs()),
        "{what}: objectives diverged ({a} vs {b})"
    );
    Ok(())
}

/// Fast-path config with f32-compute gradients and a tolerance above the
/// f32 violation noise floor (a 1e-10 target would never converge).
fn svr_cfg_f32() -> SvrConfig {
    SvrConfig {
        tolerance: 1e-6,
        max_epochs: 50_000,
        mode: SolverMode::Fast,
        f32_compute: true,
        ..SvrConfig::default()
    }
}

fn svc_cfg_f32() -> SvcConfig {
    SvcConfig {
        tolerance: 1e-6,
        max_epochs: 50_000,
        mode: SolverMode::Fast,
        f32_compute: true,
        ..SvcConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn svr_fast_matches_strict_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(-2.0f64..2.0, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let strict = svr_objective_for(&x, &y[..n], SolverMode::Strict, None);
        let fast = svr_objective_for(&x, &y[..n], SolverMode::Fast, None);
        assert_close(strict, fast, "svr cold")?;
    }

    #[test]
    fn svr_warm_start_reaches_strict_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(-2.0f64..2.0, MAX_N),
        warm in prop::collection::vec(-3.0f64..3.0, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let strict = svr_objective_for(&x, &y[..n], SolverMode::Strict, None);
        let fast_warm = svr_objective_for(&x, &y[..n], SolverMode::Fast, Some(&warm[..n]));
        assert_close(strict, fast_warm, "svr warm")?;
    }

    #[test]
    fn svc_fast_matches_strict_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(0u32..3, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let strict = svc_objectives_for(&x, &y[..n], 3, SolverMode::Strict, None);
        let fast = svc_objectives_for(&x, &y[..n], 3, SolverMode::Fast, None);
        for (class, (s, f)) in strict.iter().zip(&fast).enumerate() {
            assert_close(*s, *f, &format!("svc cold class {class}"))?;
        }
    }

    #[test]
    fn svc_warm_start_reaches_strict_objective(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(0u32..3, MAX_N),
        warm_flat in prop::collection::vec(-2.0f64..2.0, 3 * MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let warm: Vec<Vec<f64>> =
            warm_flat.chunks(MAX_N).map(|c| c[..n].to_vec()).collect();
        let strict = svc_objectives_for(&x, &y[..n], 3, SolverMode::Strict, None);
        let fast_warm = svc_objectives_for(&x, &y[..n], 3, SolverMode::Fast, Some(&warm));
        for (class, (s, f)) in strict.iter().zip(&fast_warm).enumerate() {
            assert_close(*s, *f, &format!("svc warm class {class}"))?;
        }
    }

    #[test]
    fn svr_f32_mode_stays_within_documented_tolerance(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(-2.0f64..2.0, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let strict = svr_objective_for(&x, &y[..n], SolverMode::Strict, None);
        let cfg = svr_cfg_f32();
        let (_, duals) = SvrTrainer::new(cfg).train_view_warm(&x, &y[..n], None);
        let f32_obj =
            svr_objective(&x, &y[..n], &duals.expect("SVR always returns duals"), cfg.epsilon);
        assert_close_f32(strict, f32_obj, "svr f32 mode")?;
    }

    #[test]
    fn svc_f32_mode_stays_within_documented_tolerance(
        n in 2usize..MAX_N,
        d in 1usize..MAX_D,
        values in prop::collection::vec(-2.0f64..2.0, MAX_N * MAX_D),
        y in prop::collection::vec(0u32..3, MAX_N),
    ) {
        let x = matrix(n, d, &values);
        let strict = svc_objectives_for(&x, &y[..n], 3, SolverMode::Strict, None);
        let (_, duals) = SvcTrainer::new(svc_cfg_f32()).train_view_warm(&x, &y[..n], 3, None);
        let duals = duals.expect("SVC always returns duals");
        for class in 0..3usize {
            let labels: Vec<f64> = y[..n]
                .iter()
                .map(|&c| if c as usize == class { 1.0 } else { -1.0 })
                .collect();
            let f32_obj = svc_objective(&x, &labels, &duals[class]);
            assert_close_f32(strict[class], f32_obj, &format!("svc f32 class {class}"))?;
        }
    }
}
