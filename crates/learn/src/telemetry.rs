//! Run telemetry: hierarchical spans, counters, and per-run reports.
//!
//! A FRaC run is a fleet of hundreds of independent per-target fits, so
//! aggregate wall clock hides per-target pathologies (one SNP burning its
//! whole epoch budget, one CV fold dominating a member). This module
//! records *where time goes* as a tree of **spans** — run → target →
//! stage (encode / CV fold / solve / tree-grow / error-model / score) —
//! plus monotonic **counters**, drained into a [`TelemetryReport`] at the
//! end of the run.
//!
//! ## Recorder architecture
//!
//! Probes are free when no session is active: [`span`] and [`counter_add`]
//! check one relaxed atomic load and return inert guards. When a
//! [`TelemetrySession`] is active, each thread records into a
//! **thread-local** buffer (no locks, no atomics on the hot path); the
//! buffer is flushed — only when the thread's span stack returns to depth
//! zero, far off the solver inner loops — into a *per-thread* sink behind
//! an uncontended mutex, registered once per session in a global registry
//! that [`TelemetrySession::finish`] drains. Span identity is
//! `(thread id << 40) | sequence`, so ids are unique without coordination,
//! and every span records its parent (the enclosing span on the same
//! thread), which makes the tree reconstructible and its well-nestedness
//! testable.
//!
//! Spans never touch the model arithmetic — no seeds, no floats — so a
//! telemetry-enabled fit is bit-identical to a disabled one (property
//! tested in `frac-core`).
//!
//! ## Sessions
//!
//! At most one session is active per process at a time (the same
//! convention as [`crate::solver::stats`], which the report folds in as a
//! delta): [`TelemetrySession::start`] returns `None` while another
//! session is live. Concurrent *untraced* runs are unaffected — they see
//! the disabled fast path... unless they overlap a traced run, in which
//! case their spans are attributed to the traced session; trace one run
//! at a time.
//!
//! ## Compile-time escape hatch
//!
//! Building with the `telemetry-off` cargo feature collapses every probe
//! to a true no-op (no atomic load, nothing linked); sessions still
//! resolve but their reports carry only the wall clock and solver-stats
//! delta. `tier1.sh` builds the CLI both ways.

use crate::solver::stats::{self, SolverStats};
use std::fmt;

#[cfg(not(feature = "telemetry-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The stage a span measures. One taxonomy for the whole workspace: core's
/// fit loop opens `Encode`/`Quarantine`/`Entropy`/`ErrorModel`/
/// `FinalTrain`/`JournalAppend`/`Score`, this crate's solvers and tree
/// growers open `Solve`/`TreeGrow`, and the CV driver opens `CvFold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Building the shared encoded-feature pool from the training set.
    Encode,
    /// Screening + sanitizing the dataset before anything hits a solver.
    Quarantine,
    /// Per-target baseline entropy `H(f_i)` estimation.
    Entropy,
    /// One cross-validation fold: train on k−1 folds, predict the holdout.
    CvFold,
    /// The final full-data predictor training after CV.
    FinalTrain,
    /// Fitting the Gaussian / confusion error model from OOF pairs.
    ErrorModel,
    /// One dual coordinate-descent solve (SVR fit, or one SVC class).
    Solve,
    /// One decision-tree growth (classification or regression).
    TreeGrow,
    /// Serializing a finished target's write-ahead journal record.
    JournalAppend,
    /// Scoring one feature's NS contributions over a test set.
    Score,
    /// One admitted batch scored by the serving daemon (decode → encode
    /// pool → NS accumulation → replies).
    ServeBatch,
}

impl Stage {
    /// Every stage, in taxonomy order (report rendering).
    pub const ALL: [Stage; 11] = [
        Stage::Encode,
        Stage::Quarantine,
        Stage::Entropy,
        Stage::CvFold,
        Stage::FinalTrain,
        Stage::ErrorModel,
        Stage::Solve,
        Stage::TreeGrow,
        Stage::JournalAppend,
        Stage::Score,
        Stage::ServeBatch,
    ];

    /// Stable serialization name (TSV / JSON field).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::Quarantine => "quarantine",
            Stage::Entropy => "entropy",
            Stage::CvFold => "cv_fold",
            Stage::FinalTrain => "final_train",
            Stage::ErrorModel => "error_model",
            Stage::Solve => "solve",
            Stage::TreeGrow => "tree_grow",
            Stage::JournalAppend => "journal_append",
            Stage::Score => "score",
            Stage::ServeBatch => "serve_batch",
        }
    }

    /// Inverse of [`Stage::as_str`].
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|st| st.as_str() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A monotonic counter. Counters are batched thread-locally and flushed
/// with the span buffer, so bumping one costs an array add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Coordinate-descent epochs completed (SVR + SVC, all solves).
    SolverEpochs,
    /// Dual coordinates visited (gradient evaluated).
    SolverVisits,
    /// Decision-tree nodes grown (splits + leaves).
    TreeNodes,
    /// Bytes of journal record bodies serialized.
    JournalBytes,
    /// Cells encoded into the shared design pool.
    EncodedCells,
    /// Bitmask of kernel tiers the session's fits used
    /// ([`frac_dataset::kernels::describe_mask`] names the bits). Unlike
    /// the other counters this is a label, not a volume: it merges by
    /// bitwise OR (see [`Counter::merge`]), so repeated fits on one tier
    /// leave a single bit set and mixed strict/fast configs set one bit
    /// per tier actually used.
    KernelTier,
    /// Bitmask of fast-solver execution strategies the session's solves
    /// used ([`crate::solver::describe_strategy_mask`] names the bits:
    /// primal, gram, and the f32 packed/fallback flags). A label counter
    /// like [`Counter::KernelTier`]: merges by bitwise OR.
    SolverStrategy,
    /// Records admitted by the scoring daemon (parsed and queued; the
    /// denominator for the shed/quarantine/timeout rates below).
    ServeRequests,
    /// Requests refused with a `busy` reply because the admission queue
    /// was full (explicit load shedding instead of unbounded buffering).
    ServeShed,
    /// Malformed records refused with a per-line error reply (the
    /// connection and the rest of the batch survive).
    ServeQuarantined,
    /// Admitted requests whose deadline expired before scoring (answered
    /// with a timeout error, never scored).
    ServeTimeouts,
}

/// Number of [`Counter`] variants (report array size).
pub const N_COUNTERS: usize = 11;

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::SolverEpochs,
        Counter::SolverVisits,
        Counter::TreeNodes,
        Counter::JournalBytes,
        Counter::EncodedCells,
        Counter::KernelTier,
        Counter::SolverStrategy,
        Counter::ServeRequests,
        Counter::ServeShed,
        Counter::ServeQuarantined,
        Counter::ServeTimeouts,
    ];

    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::SolverEpochs => "solver_epochs",
            Counter::SolverVisits => "solver_visits",
            Counter::TreeNodes => "tree_nodes",
            Counter::JournalBytes => "journal_bytes",
            Counter::EncodedCells => "encoded_cells",
            Counter::KernelTier => "kernel_tier",
            Counter::SolverStrategy => "solver_strategy",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeShed => "serve_shed",
            Counter::ServeQuarantined => "serve_quarantined",
            Counter::ServeTimeouts => "serve_timeouts",
        }
    }

    /// Inverse of [`Counter::as_str`].
    pub fn parse(s: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    fn index(self) -> usize {
        match self {
            Counter::SolverEpochs => 0,
            Counter::SolverVisits => 1,
            Counter::TreeNodes => 2,
            Counter::JournalBytes => 3,
            Counter::EncodedCells => 4,
            Counter::KernelTier => 5,
            Counter::SolverStrategy => 6,
            Counter::ServeRequests => 7,
            Counter::ServeShed => 8,
            Counter::ServeQuarantined => 9,
            Counter::ServeTimeouts => 10,
        }
    }

    /// Combine an accumulated value with a new contribution: addition for
    /// volume counters, bitwise OR for the [`Counter::KernelTier`] and
    /// [`Counter::SolverStrategy`] label masks. Used on every accumulation
    /// boundary (thread-local add, sink flush, final drain) so the
    /// semantics hold end to end.
    pub fn merge(self, acc: u64, v: u64) -> u64 {
        match self {
            Counter::KernelTier | Counter::SolverStrategy => acc | v,
            _ => acc + v,
        }
    }
}

/// One closed span: a stage interval on one thread, with its parent link.
///
/// `parent == 0` marks a root span (no enclosing span on its thread).
/// `target` is the feature index the span's thread was fitting or scoring
/// (−1 outside any target). Times are nanoseconds relative to session
/// start, from one monotonic clock — so for spans of the same thread,
/// `start_ns + dur_ns` of a child never exceeds its parent's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id: `(thread + 1) << 40 | per-thread sequence`.
    pub id: u64,
    /// Id of the enclosing span on the same thread; 0 for roots.
    pub parent: u64,
    /// Recorder-assigned thread index (not an OS tid).
    pub thread: u32,
    /// Target feature being fitted/scored, −1 when none.
    pub target: i64,
    /// What the span measures.
    pub stage: Stage,
    /// Nanoseconds from session start to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregate over all spans of one stage (see
/// [`TelemetryReport::stage_totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTotal {
    /// The stage aggregated.
    pub stage: Stage,
    /// Number of spans.
    pub count: u64,
    /// Summed duration (ns). Nested spans of the *same* stage both count.
    pub total_ns: u64,
    /// Longest single span (ns).
    pub max_ns: u64,
}

/// Number of log₂-nanosecond buckets in a duration histogram.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The drained output of one telemetry session: every span, the counter
/// totals, the [`SolverStats`] delta over the session, the session wall
/// clock, and free-form annotations (the CLI folds the run's
/// `RunHealth` summary in here, completing the unification of the three
/// pre-existing instrumentation channels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Every closed span, grouped by recording thread (drain order).
    pub spans: Vec<SpanRecord>,
    /// Counter totals, indexed as [`Counter::ALL`].
    pub counters: [u64; N_COUNTERS],
    /// Solver-stats delta (snapshot at finish minus snapshot at start).
    pub solver: SolverStats,
    /// Session wall clock, nanoseconds.
    pub wall_ns: u64,
    /// Free-form `(key, value)` annotations, e.g. `("health", …)`.
    pub notes: Vec<(String, String)>,
}

impl TelemetryReport {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Per-stage aggregates, taxonomy order, stages with spans only.
    pub fn stage_totals(&self) -> Vec<StageTotal> {
        let mut out = Vec::new();
        for stage in Stage::ALL {
            let mut t = StageTotal { stage, count: 0, total_ns: 0, max_ns: 0 };
            for s in self.spans.iter().filter(|s| s.stage == stage) {
                t.count += 1;
                t.total_ns += s.dur_ns;
                t.max_ns = t.max_ns.max(s.dur_ns);
            }
            if t.count > 0 {
                out.push(t);
            }
        }
        out
    }

    /// Total nanoseconds attributed to each target: the sum of its *root*
    /// spans (nested spans are already inside their parents), ascending by
    /// target.
    pub fn target_totals(&self) -> Vec<(usize, u64)> {
        let mut totals = std::collections::BTreeMap::new();
        for s in &self.spans {
            if s.parent == 0 && s.target >= 0 {
                *totals.entry(s.target as usize).or_insert(0u64) += s.dur_ns;
            }
        }
        totals.into_iter().collect()
    }

    /// The `k` slowest targets, descending by total time (ties by lower
    /// target index first — deterministic output).
    pub fn slowest_targets(&self, k: usize) -> Vec<(usize, u64)> {
        let mut totals = self.target_totals();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        totals.truncate(k);
        totals
    }

    /// Log₂-nanosecond duration histogram for one stage: bucket `b` counts
    /// spans with `dur_ns` in `[2^b, 2^(b+1))` (bucket 0 also takes 0 ns).
    /// Computed at report time — the hot path never touches histograms.
    pub fn histogram(&self, stage: Stage) -> [u64; HISTOGRAM_BUCKETS] {
        let mut h = [0u64; HISTOGRAM_BUCKETS];
        for s in self.spans.iter().filter(|s| s.stage == stage) {
            let b = (64 - s.dur_ns.leading_zeros() as usize)
                .saturating_sub(1)
                .min(HISTOGRAM_BUCKETS - 1);
            h[b] += 1;
        }
        h
    }

    /// Serialize as self-describing TSV (`# frac telemetry v1`): one
    /// record per line, led by a record-type tag. The exact inverse of
    /// [`TelemetryReport::parse_tsv`].
    pub fn write_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("# frac telemetry v1\n");
        out.push_str("# span\tid\tparent\tthread\ttarget\tstage\tstart_ns\tdur_ns\n");
        out.push_str(&format!("wall\t{}\n", self.wall_ns));
        out.push_str(&format!(
            "solver\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            self.solver.solves,
            self.solver.epochs,
            self.solver.visits,
            self.solver.dense_slots,
            self.solver.gram_solves,
            self.solver.gram_builds,
            self.solver.pack_reuses
        ));
        for c in Counter::ALL {
            out.push_str(&format!("counter\t{}\t{}\n", c.as_str(), self.counter(c)));
        }
        for (k, v) in &self.notes {
            out.push_str(&format!("note\t{}\t{}\n", sanitize_field(k), sanitize_field(v)));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "span\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.id, s.parent, s.thread, s.target, s.stage, s.start_ns, s.dur_ns
            ));
        }
        out
    }

    /// Parse a report previously produced by [`TelemetryReport::write_tsv`].
    pub fn parse_tsv(text: &str) -> Result<TelemetryReport, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.starts_with("# frac telemetry v1") => {}
            other => {
                return Err(format!(
                    "not a frac telemetry file (first line {:?}, expected `# frac telemetry v1`)",
                    other.unwrap_or("")
                ))
            }
        }
        let mut report = TelemetryReport::default();
        for (lineno, line) in lines.enumerate() {
            let lineno = lineno + 2;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let parse_u64 = |s: &str, what: &str| {
                s.parse::<u64>().map_err(|_| format!("line {lineno}: bad {what} `{s}`"))
            };
            match fields[0] {
                "wall" => {
                    let v = fields.get(1).ok_or(format!("line {lineno}: truncated wall"))?;
                    report.wall_ns = parse_u64(v, "wall_ns")?;
                }
                "solver" => {
                    // 5 fields is the pre-gram layout; absent fields stay 0.
                    if fields.len() != 5 && fields.len() != 8 {
                        return Err(format!("line {lineno}: solver wants 4 or 7 fields"));
                    }
                    report.solver = SolverStats {
                        solves: parse_u64(fields[1], "solves")?,
                        epochs: parse_u64(fields[2], "epochs")?,
                        visits: parse_u64(fields[3], "visits")?,
                        dense_slots: parse_u64(fields[4], "dense_slots")?,
                        ..SolverStats::default()
                    };
                    if fields.len() == 8 {
                        report.solver.gram_solves = parse_u64(fields[5], "gram_solves")?;
                        report.solver.gram_builds = parse_u64(fields[6], "gram_builds")?;
                        report.solver.pack_reuses = parse_u64(fields[7], "pack_reuses")?;
                    }
                }
                "counter" => {
                    if fields.len() != 3 {
                        return Err(format!("line {lineno}: counter wants 2 fields"));
                    }
                    let c = Counter::parse(fields[1])
                        .ok_or(format!("line {lineno}: unknown counter `{}`", fields[1]))?;
                    report.counters[c.index()] = parse_u64(fields[2], "counter value")?;
                }
                "note" => {
                    if fields.len() != 3 {
                        return Err(format!("line {lineno}: note wants 2 fields"));
                    }
                    report.notes.push((fields[1].to_string(), fields[2].to_string()));
                }
                "span" => {
                    if fields.len() != 8 {
                        return Err(format!("line {lineno}: span wants 7 fields"));
                    }
                    report.spans.push(SpanRecord {
                        id: parse_u64(fields[1], "id")?,
                        parent: parse_u64(fields[2], "parent")?,
                        thread: parse_u64(fields[3], "thread")? as u32,
                        target: fields[4]
                            .parse::<i64>()
                            .map_err(|_| format!("line {lineno}: bad target `{}`", fields[4]))?,
                        stage: Stage::parse(fields[5])
                            .ok_or(format!("line {lineno}: unknown stage `{}`", fields[5]))?,
                        start_ns: parse_u64(fields[6], "start_ns")?,
                        dur_ns: parse_u64(fields[7], "dur_ns")?,
                    });
                }
                other => return Err(format!("line {lineno}: unknown record type `{other}`")),
            }
        }
        Ok(report)
    }

    /// Serialize as JSON (write-only; `inspect-telemetry` reads the TSV
    /// form). Spans are included in full, so the file round-trips through
    /// generic JSON tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!(
            "  \"solver\": {{\"solves\": {}, \"epochs\": {}, \"visits\": {}, \"dense_slots\": {}, \
             \"gram_solves\": {}, \"gram_builds\": {}, \"pack_reuses\": {}}},\n",
            self.solver.solves,
            self.solver.epochs,
            self.solver.visits,
            self.solver.dense_slots,
            self.solver.gram_solves,
            self.solver.gram_builds,
            self.solver.pack_reuses
        ));
        out.push_str("  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", c.as_str(), self.counter(*c)));
        }
        out.push_str("},\n  \"notes\": {");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str("},\n  \"stage_totals\": {");
        for (i, t) in self.stage_totals().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                t.stage, t.count, t.total_ns, t.max_ns
            ));
        }
        out.push_str("},\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"parent\": {}, \"thread\": {}, \"target\": {}, \
                 \"stage\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}}}{}\n",
                s.id,
                s.parent,
                s.thread,
                s.target,
                s.stage,
                s.start_ns,
                s.dur_ns,
                if i + 1 < self.spans.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// TSV fields are tab/newline-delimited; squash those characters in
/// free-form note text so the record framing survives.
fn sanitize_field(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------------
// Recorder (compiled out under `telemetry-off`)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry-off"))]
mod recorder {
    use super::*;

    /// Is a session live? One relaxed load — the entire disabled-path cost
    /// of every probe.
    pub static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Session generation; stale thread-local state is detected by stamp.
    pub static SESSION: AtomicU64 = AtomicU64::new(0);
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

    /// One thread's drained records. Each recording thread registers its
    /// own sink in [`Global::sinks`] and flushes into it through an
    /// (uncontended) per-thread mutex — worker threads never share a hot
    /// lock; only the final drain in `finish()` ever takes a sink's mutex
    /// from another thread.
    pub struct Sink {
        pub spans: Vec<SpanRecord>,
        pub counters: [u64; N_COUNTERS],
    }

    /// Process-global session state: the time base plus the registry of
    /// per-thread sinks to drain at `finish()`.
    pub struct Global {
        pub session: u64,
        pub base: Instant,
        pub sinks: Vec<Arc<Mutex<Sink>>>,
    }

    pub static GLOBAL: Mutex<Option<Global>> = Mutex::new(None);

    /// Lock the global sink, absorbing poisoning (a panicking fit thread
    /// must not take telemetry down with it).
    pub fn lock_global() -> std::sync::MutexGuard<'static, Option<Global>> {
        GLOBAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Per-thread recorder state. `session` stamps validity; everything
    /// resets lazily when a new session starts.
    pub struct ThreadRec {
        pub session: u64,
        pub thread: u32,
        pub seq: u64,
        pub base: Option<Instant>,
        pub sink: Option<Arc<Mutex<Sink>>>,
        pub stack: Vec<u64>,
        pub buf: Vec<SpanRecord>,
        pub counters: [u64; N_COUNTERS],
        pub target: i64,
    }

    thread_local! {
        pub static REC: RefCell<ThreadRec> = const {
            RefCell::new(ThreadRec {
                session: 0,
                thread: 0,
                seq: 0,
                base: None,
                sink: None,
                stack: Vec::new(),
                buf: Vec::new(),
                counters: [0; N_COUNTERS],
                target: -1,
            })
        };
    }

    /// Refresh `rec` for the current session: on a stale stamp, drop
    /// leftovers and re-read the session base; assign a thread id on first
    /// use per session. Returns `false` when no session is live (or the
    /// sink is gone), in which case the probe must go inert.
    pub fn refresh(rec: &mut ThreadRec) -> bool {
        let session = SESSION.load(Ordering::Acquire);
        if rec.session != session {
            // One global-lock touch per thread per session: read the time
            // base and register this thread's sink for the final drain.
            let (base, sink) = {
                let mut global = lock_global();
                match global.as_mut() {
                    Some(g) if g.session == session => {
                        let sink = Arc::new(Mutex::new(Sink {
                            spans: Vec::new(),
                            counters: [0; N_COUNTERS],
                        }));
                        g.sinks.push(Arc::clone(&sink));
                        (g.base, sink)
                    }
                    _ => return false,
                }
            };
            *rec = ThreadRec {
                session,
                thread: (NEXT_THREAD.fetch_add(1, Ordering::Relaxed) + 1) as u32,
                seq: 0,
                base: Some(base),
                sink: Some(sink),
                stack: Vec::new(),
                buf: Vec::new(),
                counters: [0; N_COUNTERS],
                target: -1,
            };
        }
        rec.base.is_some()
    }

    /// Drain this thread's buffer and counters into its registered sink.
    /// The sink was created for `rec.session` (the two are set together in
    /// [`refresh`]); if the session ended meanwhile the sink is already
    /// orphaned and the records die with it, which is the intent.
    pub fn flush(rec: &mut ThreadRec) {
        if rec.buf.is_empty() && rec.counters.iter().all(|&c| c == 0) {
            return;
        }
        if let Some(sink) = &rec.sink {
            let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
            sink.spans.append(&mut rec.buf);
            for (c, (sc, rc)) in Counter::ALL.iter().zip(sink.counters.iter_mut().zip(&rec.counters))
            {
                *sc = c.merge(*sc, *rc);
            }
        }
        rec.buf.clear();
        rec.counters = [0; N_COUNTERS];
    }
}

/// Whether a telemetry session is currently active.
pub fn enabled() -> bool {
    #[cfg(not(feature = "telemetry-off"))]
    {
        recorder::ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(feature = "telemetry-off")]
    {
        false
    }
}

/// An open span; closing (dropping) it records the [`SpanRecord`]. Inert
/// when no session is active. Must be dropped on the thread that opened
/// it (automatic for lexically scoped guards).
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    #[cfg(not(feature = "telemetry-off"))]
    open: Option<OpenSpan>,
}

#[cfg(not(feature = "telemetry-off"))]
struct OpenSpan {
    session: u64,
    id: u64,
    parent: u64,
    stage: Stage,
    target: i64,
    start: Instant,
    start_ns: u64,
}

/// Open a span for `stage` on the current thread. The span nests under
/// the thread's innermost open span and inherits the current
/// [`target_guard`] target.
pub fn span(stage: Stage) -> SpanGuard {
    #[cfg(feature = "telemetry-off")]
    {
        let _ = stage;
        SpanGuard {}
    }
    #[cfg(not(feature = "telemetry-off"))]
    {
        if !enabled() {
            return SpanGuard { open: None };
        }
        recorder::REC.with(|rec| {
            let mut rec = rec.borrow_mut();
            if !recorder::refresh(&mut rec) {
                return SpanGuard { open: None };
            }
            rec.seq += 1;
            let id = ((rec.thread as u64) << 40) | rec.seq;
            let parent = rec.stack.last().copied().unwrap_or(0);
            rec.stack.push(id);
            let start = Instant::now();
            let base = rec.base.unwrap_or(start);
            SpanGuard {
                open: Some(OpenSpan {
                    session: rec.session,
                    id,
                    parent,
                    stage,
                    target: rec.target,
                    start,
                    start_ns: start.duration_since(base).as_nanos() as u64,
                }),
            }
        })
    }
}

#[cfg(not(feature = "telemetry-off"))]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let dur_ns = open.start.elapsed().as_nanos() as u64;
        recorder::REC.with(|rec| {
            let mut rec = rec.borrow_mut();
            if rec.session != open.session {
                return; // session ended while the span was open
            }
            // Pop through to our id — tolerate a child leaked by a panic.
            while let Some(top) = rec.stack.pop() {
                if top == open.id {
                    break;
                }
            }
            let thread = rec.thread;
            rec.buf.push(SpanRecord {
                id: open.id,
                parent: open.parent,
                thread,
                target: open.target,
                stage: open.stage,
                start_ns: open.start_ns,
                dur_ns,
            });
            if rec.stack.is_empty() {
                recorder::flush(&mut rec);
            }
        });
    }
}

/// Marks the current thread as fitting/scoring `target` until dropped;
/// spans opened meanwhile are attributed to it. Nestable (restores the
/// previous target on drop).
#[must_use = "target attribution lasts while the guard lives"]
pub struct TargetGuard {
    #[cfg(not(feature = "telemetry-off"))]
    prev: Option<(u64, i64)>,
}

/// Attribute subsequent spans on this thread to `target`.
pub fn target_guard(target: usize) -> TargetGuard {
    #[cfg(feature = "telemetry-off")]
    {
        let _ = target;
        TargetGuard {}
    }
    #[cfg(not(feature = "telemetry-off"))]
    {
        if !enabled() {
            return TargetGuard { prev: None };
        }
        recorder::REC.with(|rec| {
            let mut rec = rec.borrow_mut();
            if !recorder::refresh(&mut rec) {
                return TargetGuard { prev: None };
            }
            let prev = rec.target;
            rec.target = target as i64;
            TargetGuard { prev: Some((rec.session, prev)) }
        })
    }
}

#[cfg(not(feature = "telemetry-off"))]
impl Drop for TargetGuard {
    fn drop(&mut self) {
        let Some((session, prev)) = self.prev.take() else { return };
        recorder::REC.with(|rec| {
            let mut rec = rec.borrow_mut();
            if rec.session == session {
                rec.target = prev;
            }
        });
    }
}

/// Add `n` to a counter. A thread-local array add when a session is
/// active; one relaxed load otherwise.
pub fn counter_add(counter: Counter, n: u64) {
    #[cfg(feature = "telemetry-off")]
    {
        let _ = (counter, n);
    }
    #[cfg(not(feature = "telemetry-off"))]
    {
        if !enabled() || n == 0 {
            return;
        }
        recorder::REC.with(|rec| {
            let mut rec = rec.borrow_mut();
            if recorder::refresh(&mut rec) {
                let i = counter.index();
                rec.counters[i] = counter.merge(rec.counters[i], n);
                // A counter bumped outside any span (e.g. encode cells on
                // the pool thread) must not strand in the thread-local
                // array if no span ever flushes it.
                if rec.stack.is_empty() {
                    recorder::flush(&mut rec);
                }
            }
        });
    }
}

/// An active telemetry session. Obtain with [`TelemetrySession::start`],
/// drain with [`TelemetrySession::finish`]; dropping without finishing
/// just disables recording and discards the data.
pub struct TelemetrySession {
    start_instant: Instant,
    solver_start: SolverStats,
    finished: bool,
}

impl TelemetrySession {
    /// Start recording. Returns `None` if another session is already
    /// active in this process.
    pub fn start() -> Option<TelemetrySession> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            if recorder::ENABLED.swap(true, std::sync::atomic::Ordering::SeqCst) {
                return None;
            }
            let base = Instant::now();
            let session =
                recorder::SESSION.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
            *recorder::lock_global() =
                Some(recorder::Global { session, base, sinks: Vec::new() });
            Some(TelemetrySession {
                start_instant: base,
                solver_start: stats::snapshot(),
                finished: false,
            })
        }
        #[cfg(feature = "telemetry-off")]
        {
            Some(TelemetrySession {
                start_instant: Instant::now(),
                solver_start: stats::snapshot(),
                finished: false,
            })
        }
    }

    /// Stop recording and drain everything into a [`TelemetryReport`].
    pub fn finish(mut self) -> TelemetryReport {
        self.finished = true;
        let wall_ns = self.start_instant.elapsed().as_nanos() as u64;
        let after = stats::snapshot();
        let solver = SolverStats {
            solves: after.solves.wrapping_sub(self.solver_start.solves),
            epochs: after.epochs.wrapping_sub(self.solver_start.epochs),
            visits: after.visits.wrapping_sub(self.solver_start.visits),
            dense_slots: after.dense_slots.wrapping_sub(self.solver_start.dense_slots),
            gram_solves: after.gram_solves.wrapping_sub(self.solver_start.gram_solves),
            gram_builds: after.gram_builds.wrapping_sub(self.solver_start.gram_builds),
            pack_reuses: after.pack_reuses.wrapping_sub(self.solver_start.pack_reuses),
        };
        #[cfg(not(feature = "telemetry-off"))]
        {
            recorder::ENABLED.store(false, std::sync::atomic::Ordering::SeqCst);
            let drained = recorder::lock_global().take();
            let mut spans = Vec::new();
            let mut counters = [0u64; N_COUNTERS];
            if let Some(g) = drained {
                for sink in g.sinks {
                    let mut s = sink.lock().unwrap_or_else(|p| p.into_inner());
                    spans.append(&mut s.spans);
                    for (c, (acc, sc)) in
                        Counter::ALL.iter().zip(counters.iter_mut().zip(&s.counters))
                    {
                        *acc = c.merge(*acc, *sc);
                    }
                }
            }
            TelemetryReport { spans, counters, solver, wall_ns, notes: Vec::new() }
        }
        #[cfg(feature = "telemetry-off")]
        {
            TelemetryReport { solver, wall_ns, ..TelemetryReport::default() }
        }
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        #[cfg(not(feature = "telemetry-off"))]
        {
            recorder::ENABLED.store(false, std::sync::atomic::Ordering::SeqCst);
            recorder::lock_global().take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// One session per process: serialize the session-using tests.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn probes_are_inert_without_a_session() {
        let _l = locked();
        assert!(!enabled());
        let g = span(Stage::Solve);
        counter_add(Counter::SolverVisits, 10);
        drop(g);
        // Nothing to observe — the assertion is that nothing leaks into a
        // later session (checked by the next tests' exact counts).
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn session_records_nested_spans_and_counters() {
        let _l = locked();
        let session = TelemetrySession::start().unwrap();
        {
            let _outer = span(Stage::CvFold);
            let _inner = span(Stage::Solve);
            counter_add(Counter::SolverEpochs, 3);
        }
        counter_add(Counter::TreeNodes, 7);
        let report = session.finish();
        assert_eq!(report.spans.len(), 2);
        let outer = report.spans.iter().find(|s| s.stage == Stage::CvFold).unwrap();
        let inner = report.spans.iter().find(|s| s.stage == Stage::Solve).unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(report.counter(Counter::SolverEpochs), 3);
        assert_eq!(report.counter(Counter::TreeNodes), 7);
        assert!(report.wall_ns > 0);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn kernel_tier_counter_or_merges_across_fits_and_threads() {
        let _l = locked();
        let session = TelemetrySession::start().unwrap();
        // Two fits on the same tier must not sum into a different tier's
        // bit; a strict fit on another thread adds its own bit.
        counter_add(Counter::KernelTier, 2);
        counter_add(Counter::KernelTier, 2);
        std::thread::spawn(|| counter_add(Counter::KernelTier, 4)).join().unwrap();
        let report = session.finish();
        assert_eq!(report.counter(Counter::KernelTier), 2 | 4);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn target_attribution_nests_and_restores() {
        let _l = locked();
        let session = TelemetrySession::start().unwrap();
        {
            let _t = target_guard(5);
            let _s = span(Stage::Entropy);
            {
                let _t2 = target_guard(9);
                let _s2 = span(Stage::Solve);
            }
            let _s3 = span(Stage::ErrorModel);
        }
        {
            let _untargeted = span(Stage::Encode);
        }
        let report = session.finish();
        let by_stage = |st: Stage| report.spans.iter().find(|s| s.stage == st).unwrap();
        assert_eq!(by_stage(Stage::Entropy).target, 5);
        assert_eq!(by_stage(Stage::Solve).target, 9);
        assert_eq!(by_stage(Stage::ErrorModel).target, 5);
        assert_eq!(by_stage(Stage::Encode).target, -1);
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn second_concurrent_session_is_refused() {
        let _l = locked();
        let a = TelemetrySession::start().unwrap();
        assert!(TelemetrySession::start().is_none());
        drop(a); // unfinished drop re-enables
        let b = TelemetrySession::start().unwrap();
        let report = b.finish();
        assert!(report.spans.is_empty());
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn cross_thread_spans_get_distinct_ids() {
        let _l = locked();
        let session = TelemetrySession::start().unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span(Stage::Solve);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = session.finish();
        assert_eq!(report.spans.len(), 4);
        let mut ids: Vec<u64> = report.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids must be unique across threads");
    }

    #[test]
    fn tsv_round_trips() {
        let report = TelemetryReport {
            spans: vec![
                SpanRecord {
                    id: (1 << 40) | 1,
                    parent: 0,
                    thread: 1,
                    target: -1,
                    stage: Stage::Encode,
                    start_ns: 10,
                    dur_ns: 500,
                },
                SpanRecord {
                    id: (1 << 40) | 2,
                    parent: (1 << 40) | 1,
                    thread: 1,
                    target: 3,
                    stage: Stage::Solve,
                    start_ns: 20,
                    dur_ns: 100,
                },
            ],
            counters: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
            solver: SolverStats {
                solves: 9,
                epochs: 8,
                visits: 7,
                dense_slots: 6,
                gram_solves: 5,
                gram_builds: 4,
                pack_reuses: 3,
            },
            wall_ns: 12345,
            notes: vec![("health".into(), "all 4 targets fitted cleanly".into())],
        };
        let tsv = report.write_tsv();
        let parsed = TelemetryReport::parse_tsv(&tsv).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TelemetryReport::parse_tsv("hello\n").is_err());
        assert!(TelemetryReport::parse_tsv("# frac telemetry v1\nbogus\tx\n").is_err());
        assert!(TelemetryReport::parse_tsv("# frac telemetry v1\nspan\t1\t2\n").is_err());
        assert!(TelemetryReport::parse_tsv(
            "# frac telemetry v1\ncounter\tnot_a_counter\t4\n"
        )
        .is_err());
    }

    #[test]
    fn parse_accepts_legacy_solver_line() {
        let parsed =
            TelemetryReport::parse_tsv("# frac telemetry v1\nsolver\t1\t2\t3\t4\n").unwrap();
        assert_eq!(
            (parsed.solver.solves, parsed.solver.epochs, parsed.solver.visits),
            (1, 2, 3)
        );
        assert_eq!(
            (parsed.solver.gram_solves, parsed.solver.gram_builds, parsed.solver.pack_reuses),
            (0, 0, 0)
        );
    }

    #[test]
    fn notes_with_tabs_survive_framing() {
        let report = TelemetryReport {
            notes: vec![("k".into(), "a\tb\nc".into())],
            ..TelemetryReport::default()
        };
        let parsed = TelemetryReport::parse_tsv(&report.write_tsv()).unwrap();
        assert_eq!(parsed.notes, vec![("k".to_string(), "a b c".to_string())]);
    }

    #[test]
    fn aggregates_and_histogram() {
        let mk = |id: u64, parent: u64, target: i64, stage: Stage, dur: u64| SpanRecord {
            id,
            parent,
            thread: 1,
            target,
            stage,
            start_ns: 0,
            dur_ns: dur,
        };
        let report = TelemetryReport {
            spans: vec![
                mk(1, 0, 0, Stage::CvFold, 100),
                mk(2, 1, 0, Stage::Solve, 60),
                mk(3, 0, 1, Stage::CvFold, 300),
                mk(4, 0, 1, Stage::FinalTrain, 50),
            ],
            ..TelemetryReport::default()
        };
        let totals = report.stage_totals();
        let cv = totals.iter().find(|t| t.stage == Stage::CvFold).unwrap();
        assert_eq!((cv.count, cv.total_ns, cv.max_ns), (2, 400, 300));
        // Root spans only: target 0 = 100 (the nested solve is inside),
        // target 1 = 350.
        assert_eq!(report.target_totals(), vec![(0, 100), (1, 350)]);
        assert_eq!(report.slowest_targets(1), vec![(1, 350)]);
        let h = report.histogram(Stage::CvFold);
        assert_eq!(h[6], 1); // 100 ns → bucket 6 (64..128)
        assert_eq!(h[8], 1); // 300 ns → bucket 8 (256..512)
        assert_eq!(h.iter().sum::<u64>(), 2);
    }

    #[test]
    fn json_renders_without_panicking() {
        let report = TelemetryReport {
            notes: vec![("quote".into(), "a \"b\"".into())],
            ..TelemetryReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"wall_ns\""));
        assert!(json.contains("\\\"b\\\""));
    }

    #[test]
    fn stage_and_counter_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.as_str()), Some(s));
        }
        for c in Counter::ALL {
            assert_eq!(Counter::parse(c.as_str()), Some(c));
        }
        assert_eq!(Stage::parse("nope"), None);
    }
}
