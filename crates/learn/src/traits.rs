//! Model and trainer abstractions.
//!
//! FRaC is model-agnostic ("predictors can be any supervised learning
//! algorithm"); the core crate drives everything through these traits so any
//! regressor/classifier pair can be plugged in. Trainers also report a
//! [`TrainingCost`], the raw material for reproducing the paper's CPU-time
//! and memory columns.

use crate::budget::TargetBudget;
use crate::fault::{self, TrainError};
use frac_dataset::{DesignMatrix, DesignView};

/// Analytic cost of one model-training call.
///
/// `flops` approximates the floating-point work performed; `peak_bytes`
/// approximates the solver's peak transient working set **excluding** the
/// design matrix itself (the caller owns and accounts for that). Both are
/// deterministic functions of the training run, so resource tables built
/// from them are reproducible, unlike wall-clock/RSS sampling at small
/// scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainingCost {
    /// Approximate floating-point operations performed.
    pub flops: u64,
    /// Approximate peak working-set bytes allocated by the trainer.
    pub peak_bytes: u64,
}

impl TrainingCost {
    /// Element-wise sum of two costs (flops add; peaks add, modelling
    /// concurrently live solver state within one FRaC model build).
    pub fn plus(self, other: TrainingCost) -> TrainingCost {
        TrainingCost {
            flops: self.flops + other.flops,
            peak_bytes: self.peak_bytes + other.peak_bytes,
        }
    }
}

/// A fitted model plus the cost of fitting it.
#[derive(Debug, Clone)]
pub struct Trained<M> {
    /// The fitted model.
    pub model: M,
    /// What it cost to fit.
    pub cost: TrainingCost,
}

/// A fitted real-valued predictor.
pub trait Regressor: Send + Sync {
    /// Predict the target for one encoded input row.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict every row of a design matrix.
    fn predict_batch(&self, m: &DesignMatrix) -> Vec<f64> {
        (0..m.n_rows()).map(|r| self.predict(m.row(r))).collect()
    }

    /// Approximate resident bytes of the fitted model.
    fn approx_bytes(&self) -> usize;
}

/// A fitted categorical predictor (outputs a class code).
pub trait Classifier: Send + Sync {
    /// Predict the class code for one encoded input row.
    fn predict(&self, x: &[f64]) -> u32;

    /// Predict every row of a design matrix.
    fn predict_batch(&self, m: &DesignMatrix) -> Vec<u32> {
        (0..m.n_rows()).map(|r| self.predict(m.row(r))).collect()
    }

    /// Approximate resident bytes of the fitted model.
    fn approx_bytes(&self) -> usize;
}

/// Trains regressors from `(design view, real targets)` pairs.
///
/// `train_view` is the primary entry point: it accepts any [`DesignView`],
/// so the caller can hand over a zero-copy slice of a shared
/// [`frac_dataset::EncodedPool`] (or a [`frac_dataset::RowSubset`] of one)
/// instead of materializing an owned matrix per target/fold.
pub trait RegressorTrainer: Send + Sync {
    /// The model type produced.
    type Model: Regressor;

    /// Fit a model from any design view. `y.len()` must equal `x.n_rows()`;
    /// `y` contains no NaNs (the caller drops rows with missing targets).
    fn train_view(&self, x: &dyn DesignView, y: &[f64]) -> Trained<Self::Model>;

    /// Fit with an optional warm-start dual vector, returning the final
    /// duals alongside the model.
    ///
    /// Contract: `warm`, when given, has `x.n_rows()` entries — one dual per
    /// **row of this view, in view order** — and may come from *any* prior
    /// solve (other fold, other replicate, other hyperparameters); the
    /// trainer clamps it into its own feasible box, so any real vector is a
    /// legal start and can only change where the solver starts, never what
    /// fixed point it converges to. The returned duals follow the same
    /// row-order convention. Trainers without a dual formulation keep this
    /// default: ignore the warm start, return `None`, and callers degrade
    /// gracefully to cold starts.
    fn train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
    ) -> (Trained<Self::Model>, Option<Vec<f64>>) {
        let _ = warm;
        (self.train_view(x, y), None)
    }

    /// Fallible variant of [`Self::train_view_warm`]: validates the problem
    /// (shape, allocation size, finite targets) and the fitted model instead
    /// of panicking or returning a poisoned fit.
    ///
    /// The default performs the shared input validation and then delegates
    /// to the infallible path — exactly the same arithmetic, so a clean
    /// problem produces a bit-identical model. Trainers with a failure mode
    /// of their own (the SVM solvers can diverge) override this to also
    /// inspect their output.
    #[allow(clippy::type_complexity)]
    fn try_train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
    ) -> Result<(Trained<Self::Model>, Option<Vec<f64>>), TrainError> {
        fault::check_regression_problem(x, y)?;
        Ok(self.train_view_warm(x, y, warm))
    }

    /// Budget-aware variant of [`Self::try_train_view_warm`]: the trainer
    /// checks `budget` cooperatively inside its inner loop and returns
    /// [`TrainError::DeadlineExceeded`] once it trips. The default checks
    /// the budget once up front and delegates — correct for trainers whose
    /// fits are short; long-running solvers override to poll every few
    /// epochs. With an unlimited budget the result is bit-identical to
    /// [`Self::try_train_view_warm`].
    #[allow(clippy::type_complexity)]
    fn try_train_view_budgeted(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<Self::Model>, Option<Vec<f64>>), TrainError> {
        budget.check()?;
        self.try_train_view_warm(x, y, warm)
    }

    /// Fit from an owned matrix (convenience wrapper over [`Self::train_view`]).
    fn train(&self, x: &DesignMatrix, y: &[f64]) -> Trained<Self::Model> {
        self.train_view(x, y)
    }
}

/// Trains classifiers from `(design view, class codes, arity)` triples.
pub trait ClassifierTrainer: Send + Sync {
    /// The model type produced.
    type Model: Classifier;

    /// Fit a model from any design view. `y.len()` must equal `x.n_rows()`;
    /// all codes are `< arity` (the caller drops rows with missing targets).
    fn train_view(&self, x: &dyn DesignView, y: &[u32], arity: u32) -> Trained<Self::Model>;

    /// Fit with optional warm-start duals, returning the final duals.
    ///
    /// Same contract as [`RegressorTrainer::train_view_warm`], except the
    /// duals are **per one-vs-rest class**: `warm[k][i]` seeds class `k`'s
    /// dual for row `i` (in view order). A `warm` slice shorter than the
    /// number of classes cold-starts the missing classes. The default
    /// ignores warm starts and returns `None`.
    fn train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
    ) -> (Trained<Self::Model>, Option<Vec<Vec<f64>>>) {
        let _ = warm;
        (self.train_view(x, y, arity), None)
    }

    /// Fallible variant of [`Self::train_view_warm`]; see
    /// [`RegressorTrainer::try_train_view_warm`] for the contract. The
    /// default validates shape/allocation and delegates to the infallible
    /// path bit-for-bit.
    #[allow(clippy::type_complexity)]
    fn try_train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
    ) -> Result<(Trained<Self::Model>, Option<Vec<Vec<f64>>>), TrainError> {
        fault::check_classification_problem(x, y)?;
        Ok(self.train_view_warm(x, y, arity, warm))
    }

    /// Budget-aware variant of [`Self::try_train_view_warm`]; see
    /// [`RegressorTrainer::try_train_view_budgeted`] for the contract.
    #[allow(clippy::type_complexity)]
    fn try_train_view_budgeted(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<Self::Model>, Option<Vec<Vec<f64>>>), TrainError> {
        budget.check()?;
        self.try_train_view_warm(x, y, arity, warm)
    }

    /// Fit from an owned matrix (convenience wrapper over [`Self::train_view`]).
    fn train(&self, x: &DesignMatrix, y: &[u32], arity: u32) -> Trained<Self::Model> {
        self.train_view(x, y, arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_plus_adds_componentwise() {
        let a = TrainingCost { flops: 10, peak_bytes: 100 };
        let b = TrainingCost { flops: 5, peak_bytes: 50 };
        let c = a.plus(b);
        assert_eq!(c.flops, 15);
        assert_eq!(c.peak_bytes, 150);
    }

    struct Zero;
    impl Regressor for Zero {
        fn predict(&self, _x: &[f64]) -> f64 {
            0.0
        }
        fn approx_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_batch_prediction_maps_rows() {
        let m = DesignMatrix::from_raw(3, 2, vec![1.0; 6]);
        assert_eq!(Zero.predict_batch(&m), vec![0.0; 3]);
    }
}
