//! Cooperative cancellation and wall-clock budgets for training runs.
//!
//! A FRaC run fits hundreds of per-target models; a single pathological
//! solve must not hold the whole fleet past its wall-clock budget, and an
//! operator must be able to cancel a run without killing the process. Both
//! needs are served by one cooperative mechanism: a [`RunBudget`] is created
//! at the run's entry point, a per-target [`TargetBudget`] is derived as each
//! target starts, and the solver inner loops call [`TargetBudget::check`]
//! every few passes. A tripped budget surfaces as
//! [`TrainError::DeadlineExceeded`] — non-retryable, so the per-target
//! fallback ladder skips the strict retry and substitutes the baseline
//! predictor, keeping partial runs scoreable.
//!
//! The unlimited budget is the common case and is free: every field is
//! `None`, so [`TargetBudget::check`] performs no clock read and no atomic
//! load, and the clean fast path stays bit-identical to a build without
//! budgets at all.

use crate::fault::TrainError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock and cancellation budget for one whole run.
///
/// Combines an absolute run deadline, an optional per-target timeout, and an
/// optional external cancel flag. Cloning is cheap; the cancel flag is
/// shared.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    per_target: Option<Duration>,
    cancel: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// A budget that never trips. [`TargetBudget::check`] on a target derived
    /// from it is a no-op (no clock read, no atomic load).
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Budget bounded by a run deadline `dur` from now.
    pub fn with_deadline(dur: Duration) -> Self {
        RunBudget {
            deadline: Some(Instant::now() + dur),
            ..RunBudget::default()
        }
    }

    /// Add a per-target timeout: each target's budget trips `dur` after that
    /// target starts, even if the run deadline is further out.
    pub fn per_target(mut self, dur: Duration) -> Self {
        self.per_target = Some(dur);
        self
    }

    /// Attach a cancel flag, returning the handle that trips it. Any number
    /// of targets derived from this budget observe the same flag.
    pub fn cancellable(mut self) -> (Self, CancelHandle) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel = Some(Arc::clone(&flag));
        (self, CancelHandle { flag })
    }

    /// Whether this budget can ever trip (false for [`Self::unlimited`]).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.per_target.is_some() || self.cancel.is_some()
    }

    /// Wall-clock time left until the run deadline; `None` when the budget
    /// has no deadline. Saturates at zero once the deadline has passed.
    ///
    /// A multi-process supervisor uses this to hand each spawned worker the
    /// *remaining* run budget: `Instant` deadlines don't cross process
    /// boundaries, but a duration re-anchored at the worker's startup does.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the run as a whole can make no further progress: the deadline
    /// has already passed or the run was cancelled. Per-target timeouts do
    /// not count — they bound individual fits, not the run.
    pub fn is_expired(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Derive the budget for one target starting now: the tighter of the run
    /// deadline and `now + per_target`, plus the shared cancel flag.
    pub fn start_target(&self) -> TargetBudget {
        let local = self.per_target.map(|d| Instant::now() + d);
        let deadline = match (self.deadline, local) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        TargetBudget { deadline, cancel: self.cancel.clone() }
    }
}

/// Budget for one target's fit, derived by [`RunBudget::start_target`].
///
/// Solver loops hold one of these and call [`Self::check`] every few epochs;
/// the CV driver and tree growers do the same.
#[derive(Debug, Clone, Default)]
pub struct TargetBudget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl TargetBudget {
    /// A target budget that never trips; `check` is a no-op.
    pub fn unlimited() -> Self {
        TargetBudget::default()
    }

    /// Return `Err(TrainError::DeadlineExceeded)` if the run was cancelled
    /// or the deadline has passed; `Ok(())` otherwise. On an unlimited
    /// budget this reads no clock and no atomic.
    #[inline]
    pub fn check(&self) -> Result<(), TrainError> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(TrainError::DeadlineExceeded);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(TrainError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Whether this budget can ever trip.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }
}

/// Handle that cancels a run from another thread (or a signal handler).
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Trip the cancel flag; every in-flight [`TargetBudget::check`] on the
    /// associated run starts failing with [`TrainError::DeadlineExceeded`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = RunBudget::unlimited();
        assert!(!b.is_limited());
        let t = b.start_target();
        assert!(!t.is_limited());
        assert!(t.check().is_ok());
    }

    #[test]
    fn expired_deadline_trips() {
        let b = RunBudget::with_deadline(Duration::from_secs(0));
        let t = b.start_target();
        assert_eq!(t.check(), Err(TrainError::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_passes() {
        let b = RunBudget::with_deadline(Duration::from_secs(3600));
        assert!(b.start_target().check().is_ok());
    }

    #[test]
    fn per_target_tightens_run_deadline() {
        let b = RunBudget::with_deadline(Duration::from_secs(3600))
            .per_target(Duration::from_secs(0));
        let t = b.start_target();
        assert_eq!(t.check(), Err(TrainError::DeadlineExceeded));
    }

    #[test]
    fn cancel_handle_trips_all_targets() {
        let (b, handle) = RunBudget::unlimited().cancellable();
        let t1 = b.start_target();
        let t2 = b.start_target();
        assert!(t1.check().is_ok());
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert_eq!(t1.check(), Err(TrainError::DeadlineExceeded));
        assert_eq!(t2.check(), Err(TrainError::DeadlineExceeded));
    }

    #[test]
    fn deadline_error_is_not_retryable() {
        assert!(!TrainError::DeadlineExceeded.is_retryable());
    }

    #[test]
    fn remaining_tracks_the_deadline() {
        assert_eq!(RunBudget::unlimited().remaining(), None);
        let b = RunBudget::with_deadline(Duration::from_secs(3600));
        let left = b.remaining().unwrap();
        assert!(left > Duration::from_secs(3500) && left <= Duration::from_secs(3600));
        let expired = RunBudget::with_deadline(Duration::ZERO);
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn is_expired_covers_deadline_and_cancel_but_not_per_target() {
        assert!(!RunBudget::unlimited().is_expired());
        assert!(RunBudget::with_deadline(Duration::ZERO).is_expired());
        assert!(!RunBudget::with_deadline(Duration::from_secs(3600)).is_expired());
        // A per-target timeout bounds single fits, not the whole run.
        assert!(!RunBudget::unlimited().per_target(Duration::ZERO).is_expired());
        let (b, handle) = RunBudget::unlimited().cancellable();
        assert!(!b.is_expired());
        handle.cancel();
        assert!(b.is_expired());
    }
}
