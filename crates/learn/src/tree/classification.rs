//! Entropy-minimizing classification trees (the paper's SNP model).

use super::splitter::{best_classification_split, SplitScratch};
use super::{descend, Node, TreeConfig, BUDGET_CHECK_NODES};
use crate::budget::TargetBudget;
use crate::fault::{self, TrainError};
use crate::telemetry;
use crate::traits::{Classifier, ClassifierTrainer, Trained, TrainingCost};
use frac_dataset::DesignView;

/// A fitted classification tree predicting class codes.
#[derive(Debug, Clone)]
pub struct ClassificationTree {
    nodes: Vec<Node<u32>>,
    arity: u32,
}

impl ClassificationTree {
    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        super::arena_len(&self.nodes)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf(_))).count()
    }

    /// Class arity this tree was trained for.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.line("ctree_arity", [self.arity]);
        super::write_nodes(w, &self.nodes, u32::to_string);
    }

    /// Parse a model previously produced by
    /// [`ClassificationTree::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        let arity: u32 = r.parse_one("ctree_arity")?;
        let nodes = super::parse_nodes(r, |s| {
            let c: u32 = s.parse().map_err(|_| format!("bad class `{s}`"))?;
            if c >= arity {
                return Err(format!("leaf class {c} out of range for arity {arity}").into());
            }
            Ok(c)
        })?;
        Ok(ClassificationTree { nodes, arity })
    }
}

impl Classifier for ClassificationTree {
    fn predict(&self, x: &[f64]) -> u32 {
        *descend(&self.nodes, x)
    }

    fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node<u32>>()
    }
}

/// Greedy top-down trainer for [`ClassificationTree`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassificationTreeTrainer {
    /// Hyperparameters.
    pub config: TreeConfig,
}

impl ClassificationTreeTrainer {
    /// Trainer with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        ClassificationTreeTrainer { config }
    }

    /// Greedy top-down growth with cooperative budget polling every
    /// `BUDGET_CHECK_NODES` node expansions; see
    /// [`super::regression::RegressionTreeTrainer`] for the contract.
    fn grow(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        budget: &TargetBudget,
    ) -> Result<Trained<ClassificationTree>, TrainError> {
        assert_eq!(x.n_rows(), y.len(), "target length must match rows");
        let _span = telemetry::span(telemetry::Stage::TreeGrow);
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();

        let mut nodes: Vec<Node<u32>> = Vec::new();
        let mut flops = 0u64;

        if n == 0 {
            nodes.push(Node::Leaf(0));
            return Ok(Trained {
                model: ClassificationTree { nodes, arity },
                cost: TrainingCost::default(),
            });
        }

        let mut scratch = SplitScratch::new(arity as usize);
        // Work stack of (node index, sample indices, depth).
        let root_samples: Vec<usize> = (0..n).collect();
        nodes.push(Node::Leaf(0)); // placeholder, patched below
        let mut stack = vec![(0usize, root_samples, 0usize)];
        let mut expansions = 0usize;

        while let Some((node_idx, samples, depth)) = stack.pop() {
            if expansions.is_multiple_of(BUDGET_CHECK_NODES) {
                budget.check()?;
            }
            expansions += 1;
            let m = samples.len();
            // Split search cost: d features × (sort m log m + sweep m).
            flops += (d as u64)
                * (m as u64)
                * ((m.max(2) as f64).log2().ceil() as u64 + 2);

            let choice = if depth >= cfg.max_depth || m < cfg.min_samples_split {
                None
            } else {
                best_classification_split(
                    &samples,
                    x,
                    &|s| y[s],
                    arity as usize,
                    cfg.min_samples_leaf,
                    cfg.min_gain,
                    &mut scratch,
                    budget,
                )?
            };

            match choice {
                None => {
                    nodes[node_idx] = Node::Leaf(majority(samples.iter().map(|&s| y[s]), arity));
                }
                Some(c) => {
                    let split_col = x.col(c.feature);
                    let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
                        .iter()
                        .partition(|&&s| split_col.get(s) <= c.threshold);
                    let left_idx = nodes.len();
                    nodes.push(Node::Leaf(0));
                    let right_idx = nodes.len();
                    nodes.push(Node::Leaf(0));
                    nodes[node_idx] = Node::Split {
                        feature: c.feature,
                        threshold: c.threshold,
                        left: left_idx,
                        right: right_idx,
                    };
                    stack.push((left_idx, left_samples, depth + 1));
                    stack.push((right_idx, right_samples, depth + 1));
                }
            }
        }

        let peak_bytes = (n * (std::mem::size_of::<usize>() + 16)
            + nodes.len() * std::mem::size_of::<Node<u32>>()) as u64;
        telemetry::counter_add(telemetry::Counter::TreeNodes, nodes.len() as u64);
        Ok(Trained {
            model: ClassificationTree { nodes, arity },
            cost: TrainingCost { flops, peak_bytes },
        })
    }
}

fn majority(labels: impl Iterator<Item = u32>, arity: u32) -> u32 {
    let mut counts = vec![0usize; arity as usize];
    for l in labels {
        counts[l as usize] += 1;
    }
    // Lowest code wins ties, deterministically.
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c as u32)
        .unwrap_or(0)
}

impl ClassifierTrainer for ClassificationTreeTrainer {
    type Model = ClassificationTree;

    fn train_view(&self, x: &dyn DesignView, y: &[u32], arity: u32) -> Trained<ClassificationTree> {
        match self.grow(x, y, arity, &TargetBudget::unlimited()) {
            Ok(trained) => trained,
            Err(_) => unreachable!("unlimited budget cannot trip"),
        }
    }

    /// Budget-polling growth: same arithmetic as the infallible path, with
    /// the budget checked every `BUDGET_CHECK_NODES` node expansions.
    fn try_train_view_budgeted(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        _warm: Option<&[Vec<f64>]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<ClassificationTree>, Option<Vec<Vec<f64>>>), TrainError> {
        fault::check_classification_problem(x, y)?;
        Ok((self.grow(x, y, arity, budget)?, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    fn matrix(rows: &[&[f64]]) -> DesignMatrix {
        let n_cols = rows[0].len();
        let values: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DesignMatrix::from_raw(rows.len(), n_cols, values)
    }

    #[test]
    fn learns_axis_aligned_boundary() {
        let x = matrix(&[&[0.0], &[0.1], &[0.2], &[0.8], &[0.9], &[1.0]]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let cfg = TreeConfig { min_samples_split: 2, min_samples_leaf: 1, ..TreeConfig::default() };
        let t = ClassificationTreeTrainer::new(cfg).train(&x, &y, 2);
        assert_eq!(t.model.predict(&[0.05]), 0);
        assert_eq!(t.model.predict(&[0.95]), 1);
        assert_eq!(t.model.n_leaves(), 2);
    }

    #[test]
    fn learns_interval_rule_with_depth_two() {
        // y = 1 iff x ∈ (0.3, 0.7): needs two stacked splits on one feature.
        let x = matrix(&[
            &[0.0],
            &[0.1],
            &[0.2],
            &[0.4],
            &[0.5],
            &[0.6],
            &[0.8],
            &[0.9],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1, 0, 0];
        let cfg = TreeConfig { min_samples_split: 2, min_samples_leaf: 1, ..TreeConfig::default() };
        let t = ClassificationTreeTrainer::new(cfg).train(&x, &y, 2);
        for (i, &label) in y.iter().enumerate() {
            assert_eq!(t.model.predict(x.row(i)), label, "sample {i}");
        }
        assert!(t.model.n_leaves() >= 3);
    }

    #[test]
    fn learns_xor_when_zero_gain_splits_allowed() {
        // Balanced XOR has zero information gain at the root, so a greedy
        // tree with min_gain ≥ 0 yields a majority stump; allowing zero-gain
        // splits (negative min_gain) lets depth-2 recursion solve it.
        let x = matrix(&[
            &[0.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[0.1, 0.1],
            &[0.1, 0.9],
            &[0.9, 0.1],
            &[0.9, 0.9],
        ]);
        let y = vec![0, 1, 1, 0, 0, 1, 1, 0];
        let cfg = TreeConfig {
            min_samples_split: 2,
            min_samples_leaf: 1,
            min_gain: -1.0,
            ..TreeConfig::default()
        };
        let t = ClassificationTreeTrainer::new(cfg).train(&x, &y, 2);
        for (i, &label) in y.iter().enumerate() {
            assert_eq!(t.model.predict(x.row(i)), label, "sample {i}");
        }
    }

    #[test]
    fn max_depth_zero_gives_majority_stump() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = vec![1, 1, 1, 0];
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let t = ClassificationTreeTrainer::new(cfg).train(&x, &y, 2);
        assert_eq!(t.model.n_nodes(), 1);
        for v in 0..4 {
            assert_eq!(t.model.predict(&[v as f64]), 1);
        }
    }

    #[test]
    fn one_hot_snp_inputs_are_splittable() {
        // Genotype of SNP B (one-hot, 3 cols) determines the label; SNP A is
        // noise. This is exactly the encoded shape FRaC feeds trees.
        let x = matrix(&[
            // A0 A1 A2 | B0 B1 B2
            &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 1.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0, 0.0, 1.0],
        ]);
        let y = vec![0, 0, 1, 1, 2, 2];
        let cfg = TreeConfig { min_samples_split: 2, min_samples_leaf: 1, ..TreeConfig::default() };
        let t = ClassificationTreeTrainer::new(cfg).train(&x, &y, 3);
        for (i, &label) in y.iter().enumerate() {
            assert_eq!(t.model.predict(x.row(i)), label, "sample {i}");
        }
    }

    #[test]
    fn deterministic_training() {
        let x = matrix(&[&[0.3, 0.7], &[0.6, 0.1], &[0.9, 0.4], &[0.2, 0.8]]);
        let y = vec![0, 1, 1, 0];
        let a = ClassificationTreeTrainer::default().train(&x, &y, 2);
        let b = ClassificationTreeTrainer::default().train(&x, &y, 2);
        assert_eq!(a.model.nodes, b.model.nodes);
    }

    #[test]
    fn empty_training_set_predicts_class_zero() {
        let x = DesignMatrix::from_raw(0, 2, vec![]);
        let t = ClassificationTreeTrainer::default().train(&x, &[], 3);
        assert_eq!(t.model.predict(&[0.0, 0.0]), 0);
    }

    #[test]
    fn majority_tie_breaks_to_lowest_code() {
        assert_eq!(majority([0u32, 1, 1, 0].into_iter(), 2), 0);
        assert_eq!(majority([2u32, 2, 1].into_iter(), 3), 2);
    }

    #[test]
    fn cost_grows_with_samples() {
        let small = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let big = matrix(&refs);
        let ys: Vec<u32> = (0..64).map(|i| (i / 32) as u32).collect();
        let a = ClassificationTreeTrainer::default().train(&small, &[0, 0, 1, 1], 2);
        let b = ClassificationTreeTrainer::default().train(&big, &ys, 2);
        assert!(b.cost.flops > a.cost.flops);
    }
}
