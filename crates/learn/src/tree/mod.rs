//! CART-style decision trees.
//!
//! The paper models discrete (SNP) features with decision trees — originally
//! the Waffles toolkit's entropy-minimizing trees — because "many modeling
//! techniques, such as SVMs, assume continuous data". We implement both
//! flavours over the all-real encoded design matrix:
//!
//! * [`ClassificationTree`] — greedy top-down induction minimizing the
//!   weighted Shannon entropy of children (information gain), axis-aligned
//!   threshold splits.
//! * [`RegressionTree`] — the same induction minimizing within-node variance
//!   (sum of squared errors).
//!
//! Both are deterministic: ties between equal-gain splits resolve to the
//! lowest feature index and smallest threshold.

mod classification;
mod regression;
mod splitter;

pub use classification::{ClassificationTree, ClassificationTreeTrainer};
pub use regression::{RegressionTree, RegressionTreeTrainer};
pub use splitter::force_legacy_splitter;

/// How many node expansions a tree grower performs between cooperative
/// budget checks. Each expansion is a full split search (O(d·m·log m)), so
/// 32 expansions keep the cancellation latency small relative to one solver
/// epoch while making the clock read negligible.
pub(crate) const BUDGET_CHECK_NODES: usize = 32;

/// Hyperparameters shared by both tree flavours.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Depth `d` allows at most `2^d`
    /// leaves.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Minimum impurity decrease for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        // Depth 10 with ≥2-sample leaves matches the capacity regime of the
        // Waffles trees at FRaC's sample sizes (tens to low hundreds of
        // training rows).
        TreeConfig {
            max_depth: 10,
            min_samples_split: 4,
            min_samples_leaf: 2,
            min_gain: 1e-9,
        }
    }
}

/// A node of a fitted tree, indices into the flat node arena.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node<L> {
    /// Terminal node carrying a prediction payload.
    Leaf(L),
    /// Internal axis-aligned split: `x[feature] <= threshold` goes left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Walk a node arena from the root to the leaf payload for input `x`.
pub(crate) fn descend<'a, L>(nodes: &'a [Node<L>], x: &[f64]) -> &'a L {
    let mut idx = 0usize;
    loop {
        match &nodes[idx] {
            Node::Leaf(payload) => return payload,
            Node::Split { feature, threshold, left, right } => {
                idx = if x[*feature] <= *threshold { *left } else { *right };
            }
        }
    }
}

/// Count tree nodes reachable from the root (all of them, by construction).
pub(crate) fn arena_len<L>(nodes: &[Node<L>]) -> usize {
    nodes.len()
}

/// Serialize a node arena (model persistence). Leaf payloads are written by
/// `leaf` as a single whitespace-free token.
pub(crate) fn write_nodes<L>(
    w: &mut frac_dataset::textio::TextWriter,
    nodes: &[Node<L>],
    leaf: impl Fn(&L) -> String,
) {
    w.line("tree_nodes", [nodes.len()]);
    for node in nodes {
        match node {
            Node::Leaf(payload) => w.line("leaf", [leaf(payload)]),
            Node::Split { feature, threshold, left, right } => w.line(
                "split",
                [
                    feature.to_string(),
                    format!("{threshold:?}"),
                    left.to_string(),
                    right.to_string(),
                ],
            ),
        }
    }
}

/// Parse a node arena previously produced by [`write_nodes`].
pub(crate) fn parse_nodes<L>(
    r: &mut frac_dataset::textio::TextReader<'_>,
    leaf: impl Fn(&str) -> Result<L, frac_dataset::textio::TextError>,
) -> Result<Vec<Node<L>>, frac_dataset::textio::TextError> {
    let n: usize = r.parse_one("tree_nodes")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        if r.peek_is("leaf") {
            let fields = r.expect("leaf")?;
            if fields.len() != 1 {
                return Err("leaf expects one payload token".into());
            }
            nodes.push(Node::Leaf(leaf(fields[0])?));
        } else {
            let fields = r.expect("split")?;
            if fields.len() != 4 {
                return Err("split expects feature threshold left right".into());
            }
            let parse_usize = |s: &str| {
                s.parse::<usize>().map_err(|_| format!("bad split field `{s}`"))
            };
            nodes.push(Node::Split {
                feature: parse_usize(fields[0])?,
                threshold: fields[1]
                    .parse::<f64>()
                    .map_err(|_| format!("bad threshold `{}`", fields[1]))?,
                left: parse_usize(fields[2])?,
                right: parse_usize(fields[3])?,
            });
        }
    }
    // Structural sanity: child indices in range.
    for node in &nodes {
        if let Node::Split { left, right, .. } = node {
            if *left >= nodes.len() || *right >= nodes.len() {
                return Err("split child index out of range".into());
            }
        }
    }
    Ok(nodes)
}
