//! Variance-minimizing regression trees.
//!
//! Used in the JL-pre-projection pipeline on SNP data: after projection every
//! feature is real-valued, and the paper notes it kept decision trees as the
//! model there ("using entropy-minimizing decision trees in the transformed
//! space") — for real targets that means regression trees.

use super::splitter::{best_regression_split, SplitScratch};
use super::{descend, Node, TreeConfig, BUDGET_CHECK_NODES};
use crate::budget::TargetBudget;
use crate::fault::{self, TrainError};
use crate::telemetry;
use crate::traits::{Regressor, RegressorTrainer, Trained, TrainingCost};
use frac_dataset::DesignView;

/// A fitted regression tree predicting leaf means.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node<f64>>,
}

impl RegressionTree {
    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        super::arena_len(&self.nodes)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf(_))).count()
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.tag("rtree");
        super::write_nodes(w, &self.nodes, |v| format!("{v:?}"));
    }

    /// Parse a model previously produced by [`RegressionTree::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        r.expect("rtree")?;
        let nodes = super::parse_nodes(r, |s| {
            s.parse::<f64>().map_err(|_| format!("bad leaf value `{s}`").into())
        })?;
        Ok(RegressionTree { nodes })
    }
}

impl Regressor for RegressionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        *descend(&self.nodes, x)
    }

    fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node<f64>>()
    }
}

/// Greedy top-down trainer for [`RegressionTree`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RegressionTreeTrainer {
    /// Hyperparameters.
    pub config: TreeConfig,
}

impl RegressionTreeTrainer {
    /// Trainer with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        RegressionTreeTrainer { config }
    }

    /// Greedy top-down growth with cooperative budget polling every
    /// `BUDGET_CHECK_NODES` node expansions. With an unlimited budget the
    /// result is the arithmetic of [`RegressorTrainer::train_view`], bit for
    /// bit.
    fn grow(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        budget: &TargetBudget,
    ) -> Result<Trained<RegressionTree>, TrainError> {
        assert_eq!(x.n_rows(), y.len(), "target length must match rows");
        let _span = telemetry::span(telemetry::Stage::TreeGrow);
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();

        let mut nodes: Vec<Node<f64>> = Vec::new();
        let mut flops = 0u64;

        if n == 0 {
            nodes.push(Node::Leaf(0.0));
            return Ok(Trained {
                model: RegressionTree { nodes },
                cost: TrainingCost::default(),
            });
        }

        let mut scratch = SplitScratch::new(0);
        let root_samples: Vec<usize> = (0..n).collect();
        nodes.push(Node::Leaf(0.0));
        let mut stack = vec![(0usize, root_samples, 0usize)];
        let mut expansions = 0usize;

        while let Some((node_idx, samples, depth)) = stack.pop() {
            if expansions.is_multiple_of(BUDGET_CHECK_NODES) {
                budget.check()?;
            }
            expansions += 1;
            let m = samples.len();
            flops += (d as u64)
                * (m as u64)
                * ((m.max(2) as f64).log2().ceil() as u64 + 2);

            let choice = if depth >= cfg.max_depth || m < cfg.min_samples_split {
                None
            } else {
                best_regression_split(
                    &samples,
                    x,
                    &|s| y[s],
                    cfg.min_samples_leaf,
                    cfg.min_gain,
                    &mut scratch,
                    budget,
                )?
            };

            match choice {
                None => {
                    let mean = samples.iter().map(|&s| y[s]).sum::<f64>() / m as f64;
                    nodes[node_idx] = Node::Leaf(mean);
                }
                Some(c) => {
                    let split_col = x.col(c.feature);
                    let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
                        .iter()
                        .partition(|&&s| split_col.get(s) <= c.threshold);
                    let left_idx = nodes.len();
                    nodes.push(Node::Leaf(0.0));
                    let right_idx = nodes.len();
                    nodes.push(Node::Leaf(0.0));
                    nodes[node_idx] = Node::Split {
                        feature: c.feature,
                        threshold: c.threshold,
                        left: left_idx,
                        right: right_idx,
                    };
                    stack.push((left_idx, left_samples, depth + 1));
                    stack.push((right_idx, right_samples, depth + 1));
                }
            }
        }

        let peak_bytes = (n * (std::mem::size_of::<usize>() + 16)
            + nodes.len() * std::mem::size_of::<Node<f64>>()) as u64;
        telemetry::counter_add(telemetry::Counter::TreeNodes, nodes.len() as u64);
        Ok(Trained {
            model: RegressionTree { nodes },
            cost: TrainingCost { flops, peak_bytes },
        })
    }
}

impl RegressorTrainer for RegressionTreeTrainer {
    type Model = RegressionTree;

    fn train_view(&self, x: &dyn DesignView, y: &[f64]) -> Trained<RegressionTree> {
        match self.grow(x, y, &TargetBudget::unlimited()) {
            Ok(trained) => trained,
            Err(_) => unreachable!("unlimited budget cannot trip"),
        }
    }

    /// Budget-polling growth: same arithmetic as the infallible path, with
    /// the budget checked every `BUDGET_CHECK_NODES` node expansions.
    fn try_train_view_budgeted(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        _warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<RegressionTree>, Option<Vec<f64>>), TrainError> {
        fault::check_regression_problem(x, y)?;
        Ok((self.grow(x, y, budget)?, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    fn matrix(rows: &[&[f64]]) -> DesignMatrix {
        let n_cols = rows[0].len();
        let values: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DesignMatrix::from_raw(rows.len(), n_cols, values)
    }

    #[test]
    fn fits_step_function() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]]);
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let cfg = TreeConfig { min_samples_split: 2, min_samples_leaf: 1, ..TreeConfig::default() };
        let t = RegressionTreeTrainer::new(cfg).train(&x, &y);
        assert!((t.model.predict(&[0.5]) - 1.0).abs() < 1e-12);
        assert!((t.model.predict(&[11.5]) - 5.0).abs() < 1e-12);
        assert_eq!(t.model.n_leaves(), 2);
    }

    #[test]
    fn approximates_piecewise_trend() {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 8.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = matrix(&refs);
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 2.0).floor()).collect();
        let cfg = TreeConfig { min_samples_split: 2, min_samples_leaf: 1, ..TreeConfig::default() };
        let t = RegressionTreeTrainer::new(cfg).train(&x, &y);
        let max_err = rows
            .iter()
            .zip(&y)
            .map(|(r, &target)| (t.model.predict(r) - target).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.5, "max_err = {max_err}");
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let t = RegressionTreeTrainer::default().train(&x, &[7.0; 4]);
        assert_eq!(t.model.n_nodes(), 1);
        assert_eq!(t.model.predict(&[9.0]), 7.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = matrix(&refs);
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let t = RegressionTreeTrainer::new(cfg).train(&x, &y);
        assert!(t.model.n_leaves() <= 4);
    }

    #[test]
    fn empty_training_set_predicts_zero() {
        let x = DesignMatrix::from_raw(0, 1, vec![]);
        let t = RegressionTreeTrainer::default().train(&x, &[]);
        assert_eq!(t.model.predict(&[1.0]), 0.0);
    }

    #[test]
    fn deterministic_training() {
        let x = matrix(&[&[0.3, 0.7], &[0.6, 0.1], &[0.9, 0.4], &[0.2, 0.8]]);
        let y = vec![0.1, 0.9, 0.8, 0.2];
        let a = RegressionTreeTrainer::default().train(&x, &y);
        let b = RegressionTreeTrainer::default().train(&x, &y);
        assert_eq!(a.model.nodes, b.model.nodes);
    }
}
