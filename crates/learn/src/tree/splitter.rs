//! Best-split search shared by both tree flavours.
//!
//! For every candidate feature the node's samples are gathered into a
//! contiguous structure-of-arrays scratch buffer — `(value, label)` pairs
//! for classification, `(value, target)` for regression — sorted by value
//! with an unstable total-order sort, and swept left-to-right evaluating
//! every distinct threshold with O(1) incremental statistics: class counts
//! for classification, first/second moments for regression. The gather
//! reads feature values through the borrowed [`frac_dataset::ColRef`]
//! column path, so the search runs allocation-free over owned matrices and
//! pool views alike; the sweep itself never touches the view again. Labels
//! and targets are cached once per node, so the per-sample closures are
//! called `n` times per node instead of `n` times per column.
//!
//! Two-valued columns — every one-hot indicator block, i.e. the entire
//! design of a categorical-only fit — skip the sort: a single counting
//! pass over the gathered values evaluates the column's only candidate
//! threshold directly. The shortcut is exact, not approximate: the split
//! statistics at the lone distinct-value boundary are integer class counts
//! (classification) or a two-group partition (regression), so the computed
//! gain matches the sorted sweep bit for bit in the classification case
//! and up to tie-group summation order in the regression case. Constant
//! columns are likewise rejected without sorting.
//!
//! For **classification** the unstable sort is result-identical to the
//! previous stable sort: the statistics inspected at distinct-value
//! boundaries are integer class counts, invariant to the ordering inside
//! a tie group (`-0.0`/`0.0` groups included — `v_next <= v` merges them
//! and the midpoint threshold is numerically unchanged). **Regression**
//! is equivalent only up to floating-point rounding: the boundary
//! statistics are float prefix sums (`left_sum`/`left_sq`) whose rounding
//! depends on the intra-tie accumulation order, so gains need not be
//! bit-identical to a stable-sort sweep, and when two candidates' gains
//! sit within that rounding of each other the argmax could tip either
//! way. Within one process the result is still deterministic (one sort
//! implementation, one gather order); the legacy-oracle test compares
//! regression gains with a tolerance rather than bit-for-bit.
//!
//! Budget cooperation: both searches poll the [`TargetBudget`] every
//! [`SCAN_CHECK_ELEMS`] gathered elements, so a single pathological column
//! (or a very wide node) cannot blow past a deadline between the growers'
//! per-expansion checks.
//!
//! The previous per-row probing implementation is retained behind
//! [`force_legacy_splitter`] as a measurement baseline for
//! `BENCH_simd.json` and as an oracle for equivalence tests.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::budget::TargetBudget;
use crate::fault::TrainError;
use frac_dataset::DesignView;

/// Elements gathered between cooperative budget polls inside the split
/// scan. Small enough that one interval is microseconds of work, large
/// enough that the `Instant::now()` in a limited budget stays invisible.
const SCAN_CHECK_ELEMS: usize = 4096;

static FORCE_LEGACY: AtomicBool = AtomicBool::new(false);

/// Force the pre-SIMD-tier split search (per-row probing, stable sort,
/// per-threshold allocation). A process-global measurement knob for the
/// `perfsnapshot` A/B harness and the legacy-vs-new equivalence tests —
/// not a tuning parameter; the legacy path skips in-scan budget polling.
pub fn force_legacy_splitter(on: bool) {
    FORCE_LEGACY.store(on, Ordering::Release);
}

fn legacy_forced() -> bool {
    FORCE_LEGACY.load(Ordering::Acquire)
}

/// A chosen split: feature, threshold, and the impurity decrease it buys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SplitChoice {
    pub feature: usize,
    pub threshold: f64,
    pub gain: f64,
    /// Samples going left (`value <= threshold`).
    pub n_left: usize,
}

/// Shannon entropy (nats) of a count vector.
#[inline]
pub(crate) fn counts_entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Shannon entropy (nats) of the complement counts `node - left`, computed
/// in class order without materializing the complement vector. Term order
/// matches [`counts_entropy`] exactly, so the f64 sum is bit-identical to
/// the old collect-then-fold path.
#[inline]
fn residual_entropy(left: &[usize], node: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let mut h = 0.0;
    for (&l, &t) in left.iter().zip(node) {
        let c = t - l;
        if c > 0 {
            let p = c as f64 / n;
            h += -p * p.ln();
        }
    }
    h
}

/// Sum of squared deviations from the mean, from raw moments.
#[inline]
fn sse(sum: f64, sum_sq: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    (sum_sq - sum * sum / nf).max(0.0)
}

/// Scratch buffers reused across nodes to avoid per-node allocation.
pub(crate) struct SplitScratch {
    /// (feature value, class label) pairs for the classification scan.
    pub cpairs: Vec<(f64, u32)>,
    /// (feature value, regression target) pairs for the regression scan.
    pub rpairs: Vec<(f64, f64)>,
    /// (feature value, sample slot) pairs for the legacy search.
    pub pairs: Vec<(f64, usize)>,
    /// Per-class left-side counts (classification only).
    pub left_counts: Vec<usize>,
    /// Per-class node counts (classification only).
    pub node_counts: Vec<usize>,
    /// Class label of each node sample, cached once per node.
    pub labels: Vec<u32>,
    /// Regression target of each node sample, cached once per node.
    pub targets: Vec<f64>,
}

impl SplitScratch {
    pub fn new(arity: usize) -> Self {
        SplitScratch {
            cpairs: Vec::new(),
            rpairs: Vec::new(),
            pairs: Vec::new(),
            left_counts: vec![0; arity],
            node_counts: vec![0; arity],
            labels: Vec::new(),
            targets: Vec::new(),
        }
    }
}

/// Does `gain` at `(feature, threshold)` beat the incumbent? Gains within
/// 1e-15 are ties, broken toward the lowest (feature, threshold) pair for
/// determinism across scan orders.
#[inline]
fn beats(best: &Option<SplitChoice>, gain: f64, feature: usize, threshold: f64) -> bool {
    best.is_none_or(|b| {
        gain > b.gain + 1e-15
            || ((gain - b.gain).abs() <= 1e-15 && (feature, threshold) < (b.feature, b.threshold))
    })
}

/// Best entropy-gain split for a classification node.
///
/// `samples` are row indices into `get(row) -> value`; `labels(row)` gives
/// the class. Returns `Ok(None)` when no split satisfies `min_leaf` or
/// improves entropy by more than `min_gain`; `Err` only when `budget`
/// trips mid-scan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_classification_split(
    samples: &[usize],
    x: &dyn DesignView,
    label: &dyn Fn(usize) -> u32,
    arity: usize,
    min_leaf: usize,
    min_gain: f64,
    scratch: &mut SplitScratch,
    budget: &TargetBudget,
) -> Result<Option<SplitChoice>, TrainError> {
    if legacy_forced() {
        return Ok(legacy_classification_split(
            samples, x, label, arity, min_leaf, min_gain, scratch,
        ));
    }
    let n = samples.len();
    if n < 2 * min_leaf {
        return Ok(None);
    }
    let SplitScratch { cpairs, left_counts, node_counts, labels, .. } = scratch;
    labels.clear();
    labels.extend(samples.iter().map(|&s| label(s)));
    node_counts.iter_mut().for_each(|c| *c = 0);
    for &l in labels.iter() {
        node_counts[l as usize] += 1;
    }
    let parent_entropy = counts_entropy(node_counts, n);
    if parent_entropy <= 0.0 {
        return Ok(None); // pure node
    }

    let mut best: Option<SplitChoice> = None;
    let mut since_check = 0usize;
    for f in 0..x.n_cols() {
        since_check += n;
        if since_check >= SCAN_CHECK_ELEMS {
            budget.check()?;
            since_check = 0;
        }
        let col = x.col(f);
        cpairs.clear();
        let (mut vmin, mut vmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, &s) in samples.iter().enumerate() {
            let v = col.get(s);
            if v < vmin {
                vmin = v;
            }
            if v > vmax {
                vmax = v;
            }
            cpairs.push((v, labels[i]));
        }
        if vmax <= vmin {
            continue; // constant column (±0.0 mixes included) — no threshold
        }

        // Two-valued column (every one-hot indicator): the only candidate
        // threshold sits between `vmin` and `vmax`, and its left side is
        // exactly the `vmin` group — integer counts, so the gain below is
        // bit-identical to the sorted sweep's.
        left_counts.iter_mut().for_each(|c| *c = 0);
        let (mut n_min, mut n_max) = (0usize, 0usize);
        for &(v, l) in cpairs.iter() {
            if v == vmin {
                left_counts[l as usize] += 1;
                n_min += 1;
            } else if v == vmax {
                n_max += 1;
            }
        }
        if n_min + n_max == n {
            if n_min >= min_leaf && n - n_min >= min_leaf {
                let h_left = counts_entropy(left_counts, n_min);
                let h_right = residual_entropy(left_counts, node_counts, n - n_min);
                let weighted =
                    (n_min as f64 * h_left + (n - n_min) as f64 * h_right) / n as f64;
                let gain = parent_entropy - weighted;
                let threshold = 0.5 * (vmin + vmax);
                if gain > min_gain && beats(&best, gain, f, threshold) {
                    best = Some(SplitChoice { feature: f, threshold, gain, n_left: n_min });
                }
            }
            continue;
        }

        cpairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        left_counts.iter_mut().for_each(|c| *c = 0);
        let mut n_left = 0usize;
        for i in 0..n - 1 {
            let (v, l) = cpairs[i];
            left_counts[l as usize] += 1;
            n_left += 1;
            let v_next = cpairs[i + 1].0;
            if v_next <= v {
                continue; // not a distinct threshold
            }
            if n_left < min_leaf || n - n_left < min_leaf {
                continue;
            }
            let h_left = counts_entropy(left_counts, n_left);
            let h_right = residual_entropy(left_counts, node_counts, n - n_left);
            let weighted =
                (n_left as f64 * h_left + (n - n_left) as f64 * h_right) / n as f64;
            let gain = parent_entropy - weighted;
            let threshold = 0.5 * (v + v_next);
            if gain > min_gain && beats(&best, gain, f, threshold) {
                best = Some(SplitChoice { feature: f, threshold, gain, n_left });
            }
        }
        let _ = arity;
    }
    Ok(best)
}

/// Best variance-reduction split for a regression node. Gain is measured as
/// SSE decrease. `Err` only when `budget` trips mid-scan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_regression_split(
    samples: &[usize],
    x: &dyn DesignView,
    target: &dyn Fn(usize) -> f64,
    min_leaf: usize,
    min_gain: f64,
    scratch: &mut SplitScratch,
    budget: &TargetBudget,
) -> Result<Option<SplitChoice>, TrainError> {
    if legacy_forced() {
        return Ok(legacy_regression_split(
            samples, x, target, min_leaf, min_gain, scratch,
        ));
    }
    let n = samples.len();
    if n < 2 * min_leaf {
        return Ok(None);
    }
    let SplitScratch { rpairs, targets, .. } = scratch;
    targets.clear();
    targets.extend(samples.iter().map(|&s| target(s)));
    let (mut total_sum, mut total_sq) = (0.0f64, 0.0f64);
    for &y in targets.iter() {
        total_sum += y;
        total_sq += y * y;
    }
    let parent_sse = sse(total_sum, total_sq, n);
    if parent_sse <= 0.0 {
        return Ok(None); // constant target
    }

    let mut best: Option<SplitChoice> = None;
    let mut since_check = 0usize;
    for f in 0..x.n_cols() {
        since_check += n;
        if since_check >= SCAN_CHECK_ELEMS {
            budget.check()?;
            since_check = 0;
        }
        let col = x.col(f);
        rpairs.clear();
        let (mut vmin, mut vmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, &s) in samples.iter().enumerate() {
            let v = col.get(s);
            if v < vmin {
                vmin = v;
            }
            if v > vmax {
                vmax = v;
            }
            rpairs.push((v, targets[i]));
        }
        if vmax <= vmin {
            continue; // constant column — no threshold
        }

        // Two-valued column: evaluate the lone threshold in one counting
        // pass (left moments accumulate in gather order, which is the
        // node's sample order on every view kind).
        let (mut n_min, mut n_max) = (0usize, 0usize);
        let (mut min_sum, mut min_sq) = (0.0f64, 0.0f64);
        for &(v, y) in rpairs.iter() {
            if v == vmin {
                min_sum += y;
                min_sq += y * y;
                n_min += 1;
            } else if v == vmax {
                n_max += 1;
            }
        }
        if n_min + n_max == n {
            if n_min >= min_leaf && n - n_min >= min_leaf {
                let child_sse = sse(min_sum, min_sq, n_min)
                    + sse(total_sum - min_sum, total_sq - min_sq, n - n_min);
                let gain = parent_sse - child_sse;
                let threshold = 0.5 * (vmin + vmax);
                if gain > min_gain && beats(&best, gain, f, threshold) {
                    best = Some(SplitChoice { feature: f, threshold, gain, n_left: n_min });
                }
            }
            continue;
        }

        rpairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let (mut left_sum, mut left_sq) = (0.0f64, 0.0f64);
        let mut n_left = 0usize;
        for i in 0..n - 1 {
            let (v, y) = rpairs[i];
            left_sum += y;
            left_sq += y * y;
            n_left += 1;
            let v_next = rpairs[i + 1].0;
            if v_next <= v {
                continue;
            }
            if n_left < min_leaf || n - n_left < min_leaf {
                continue;
            }
            let child_sse = sse(left_sum, left_sq, n_left)
                + sse(total_sum - left_sum, total_sq - left_sq, n - n_left);
            let gain = parent_sse - child_sse;
            let threshold = 0.5 * (v + v_next);
            if gain > min_gain && beats(&best, gain, f, threshold) {
                best = Some(SplitChoice { feature: f, threshold, gain, n_left });
            }
        }
    }
    Ok(best)
}

/// Pre-SIMD-tier classification search: per-row probing with a stable sort
/// and a per-threshold complement-count allocation. Kept verbatim as the
/// `BENCH_simd.json` baseline and the equivalence oracle.
fn legacy_classification_split(
    samples: &[usize],
    x: &dyn DesignView,
    label: &dyn Fn(usize) -> u32,
    arity: usize,
    min_leaf: usize,
    min_gain: f64,
    scratch: &mut SplitScratch,
) -> Option<SplitChoice> {
    let n = samples.len();
    if n < 2 * min_leaf {
        return None;
    }
    scratch.node_counts.iter_mut().for_each(|c| *c = 0);
    for &s in samples {
        scratch.node_counts[label(s) as usize] += 1;
    }
    let parent_entropy = counts_entropy(&scratch.node_counts, n);
    if parent_entropy <= 0.0 {
        return None; // pure node
    }

    let mut best: Option<SplitChoice> = None;
    for f in 0..x.n_cols() {
        let col = x.col(f);
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(samples.iter().map(|&s| (col.get(s), s)));
        scratch
            .pairs
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        scratch.left_counts.iter_mut().for_each(|c| *c = 0);
        let mut n_left = 0usize;
        for i in 0..n - 1 {
            let (v, s) = scratch.pairs[i];
            scratch.left_counts[label(s) as usize] += 1;
            n_left += 1;
            let v_next = scratch.pairs[i + 1].0;
            if v_next <= v {
                continue; // not a distinct threshold
            }
            if n_left < min_leaf || n - n_left < min_leaf {
                continue;
            }
            let h_left = counts_entropy(&scratch.left_counts, n_left);
            let right_counts: Vec<usize> = scratch
                .left_counts
                .iter()
                .zip(&scratch.node_counts)
                .map(|(&l, &t)| t - l)
                .collect();
            let h_right = counts_entropy(&right_counts, n - n_left);
            let weighted =
                (n_left as f64 * h_left + (n - n_left) as f64 * h_right) / n as f64;
            let gain = parent_entropy - weighted;
            let threshold = 0.5 * (v + v_next);
            if gain > min_gain && beats(&best, gain, f, threshold) {
                best = Some(SplitChoice { feature: f, threshold, gain, n_left });
            }
        }
        let _ = arity;
    }
    best
}

/// Pre-SIMD-tier regression search; see [`legacy_classification_split`].
fn legacy_regression_split(
    samples: &[usize],
    x: &dyn DesignView,
    target: &dyn Fn(usize) -> f64,
    min_leaf: usize,
    min_gain: f64,
    scratch: &mut SplitScratch,
) -> Option<SplitChoice> {
    let n = samples.len();
    if n < 2 * min_leaf {
        return None;
    }
    let (mut total_sum, mut total_sq) = (0.0f64, 0.0f64);
    for &s in samples {
        let y = target(s);
        total_sum += y;
        total_sq += y * y;
    }
    let parent_sse = sse(total_sum, total_sq, n);
    if parent_sse <= 0.0 {
        return None; // constant target
    }

    let mut best: Option<SplitChoice> = None;
    for f in 0..x.n_cols() {
        let col = x.col(f);
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(samples.iter().map(|&s| (col.get(s), s)));
        scratch
            .pairs
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let (mut left_sum, mut left_sq) = (0.0f64, 0.0f64);
        let mut n_left = 0usize;
        for i in 0..n - 1 {
            let (v, s) = scratch.pairs[i];
            let y = target(s);
            left_sum += y;
            left_sq += y * y;
            n_left += 1;
            let v_next = scratch.pairs[i + 1].0;
            if v_next <= v {
                continue;
            }
            if n_left < min_leaf || n - n_left < min_leaf {
                continue;
            }
            let child_sse = sse(left_sum, left_sq, n_left)
                + sse(total_sum - left_sum, total_sq - left_sq, n - n_left);
            let gain = parent_sse - child_sse;
            let threshold = 0.5 * (v + v_next);
            if gain > min_gain && beats(&best, gain, f, threshold) {
                best = Some(SplitChoice { feature: f, threshold, gain, n_left });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    fn matrix(rows: &[&[f64]]) -> DesignMatrix {
        let n_cols = rows[0].len();
        let values: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DesignMatrix::from_raw(rows.len(), n_cols, values)
    }

    fn class_split(
        samples: &[usize],
        x: &dyn DesignView,
        ys: &[u32],
        arity: usize,
        min_leaf: usize,
    ) -> Option<SplitChoice> {
        let mut scratch = SplitScratch::new(arity);
        best_classification_split(
            samples,
            x,
            &|s| ys[s],
            arity,
            min_leaf,
            1e-12,
            &mut scratch,
            &TargetBudget::unlimited(),
        )
        .unwrap()
    }

    fn reg_split(
        samples: &[usize],
        x: &dyn DesignView,
        ys: &dyn Fn(usize) -> f64,
        min_leaf: usize,
    ) -> Option<SplitChoice> {
        let mut scratch = SplitScratch::new(0);
        best_regression_split(
            samples,
            x,
            ys,
            min_leaf,
            1e-12,
            &mut scratch,
            &TargetBudget::unlimited(),
        )
        .unwrap()
    }

    #[test]
    fn entropy_of_counts() {
        assert_eq!(counts_entropy(&[4, 0], 4), 0.0);
        assert!((counts_entropy(&[2, 2], 4) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn residual_entropy_matches_materialized_complement() {
        let node = [7usize, 3, 5, 0];
        let left = [2usize, 3, 1, 0];
        let right: Vec<usize> = node.iter().zip(&left).map(|(&t, &l)| t - l).collect();
        let total: usize = right.iter().sum();
        assert_eq!(
            residual_entropy(&left, &node, total).to_bits(),
            counts_entropy(&right, total).to_bits()
        );
    }

    #[test]
    fn classification_split_finds_obvious_boundary() {
        // Feature 0 separates perfectly at 0.5; feature 1 is noise.
        let x = matrix(&[&[0.0, 7.0], &[0.2, 3.0], &[0.9, 5.0], &[1.0, 4.0]]);
        let ys = [0u32, 0, 1, 1];
        let samples: Vec<usize> = (0..4).collect();
        let choice = class_split(&samples, &x, &ys, 2, 1).unwrap();
        assert_eq!(choice.feature, 0);
        assert!((choice.threshold - 0.55).abs() < 1e-12);
        assert!((choice.gain - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(choice.n_left, 2);
    }

    #[test]
    fn pure_node_returns_none() {
        let x = matrix(&[&[0.0], &[1.0]]);
        let ys = [1u32, 1];
        assert!(class_split(&[0, 1], &x, &ys, 2, 1).is_none());
    }

    #[test]
    fn min_leaf_blocks_tiny_children() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let ys = [0u32, 1, 1, 1];
        // min_leaf = 2 forbids the perfect 1|3 split; the 2|2 split has less
        // gain but is the only legal one.
        let choice = class_split(&[0, 1, 2, 3], &x, &ys, 2, 2).unwrap();
        assert_eq!(choice.n_left, 2);
    }

    #[test]
    fn regression_split_reduces_variance() {
        let x = matrix(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let ys = [1.0, 1.1, 5.0, 5.2];
        let choice = reg_split(&[0, 1, 2, 3], &x, &|s| ys[s], 1).unwrap();
        assert_eq!(choice.feature, 0);
        assert!((choice.threshold - 5.5).abs() < 1e-12);
        assert_eq!(choice.n_left, 2);
    }

    #[test]
    fn constant_target_returns_none() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0]]);
        assert!(reg_split(&[0, 1, 2], &x, &|_| 3.0, 1).is_none());
    }

    #[test]
    fn tied_feature_values_are_never_thresholds() {
        // All values equal: no distinct threshold exists.
        let x = matrix(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let ys = [0u32, 1, 0, 1];
        assert!(class_split(&[0, 1, 2, 3], &x, &ys, 2, 1).is_none());
    }

    #[test]
    fn split_search_agrees_across_view_kinds() {
        // The same samples served through a RowSubset view must choose the
        // identical split as the owned matrix restricted to those rows.
        let full = matrix(&[
            &[9.0, 9.0], // excluded
            &[0.0, 7.0],
            &[0.2, 3.0],
            &[9.0, 9.0], // excluded
            &[0.9, 5.0],
            &[1.0, 4.0],
        ]);
        let keep = [1usize, 2, 4, 5];
        let owned = full.select_rows(&keep);
        let view = frac_dataset::RowSubset::new(&full, &keep);
        let ys = [0u32, 0, 1, 1];
        let samples: Vec<usize> = (0..4).collect();
        let a = class_split(&samples, &owned, &ys, 2, 1);
        let b = class_split(&samples, &view, &ys, 2, 1);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn gathered_scan_matches_legacy_oracle() {
        // Dense tie groups, signed zeros, and multiple competitive features:
        // the gathered unstable-sort scan must reproduce the legacy result
        // — bit-exactly for classification (integer counts are invariant
        // to intra-tie order), within rounding tolerance for regression
        // gains (float prefix sums are not; see the module docs).
        let rows: Vec<Vec<f64>> = (0..48)
            .map(|i| {
                let a = ((i * 7) % 12) as f64 * 0.25;
                let b = if i % 5 == 0 { -0.0 } else { ((i * 3) % 4) as f64 };
                let c = ((i * 13) % 48) as f64 / 7.0;
                vec![a, b, c]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = matrix(&refs);
        let ys: Vec<u32> = (0..48).map(|i| ((i * 11) % 3) as u32).collect();
        let ts: Vec<f64> = (0..48).map(|i| ((i * 17) % 9) as f64 * 0.5).collect();
        let samples: Vec<usize> = (0..48).collect();
        for min_leaf in [1usize, 2, 5] {
            let mut s = SplitScratch::new(3);
            let new_c = best_classification_split(
                &samples,
                &x,
                &|s| ys[s],
                3,
                min_leaf,
                1e-12,
                &mut s,
                &TargetBudget::unlimited(),
            )
            .unwrap();
            let old_c = legacy_classification_split(
                &samples,
                &x,
                &|s| ys[s],
                3,
                min_leaf,
                1e-12,
                &mut s,
            );
            assert_eq!(new_c, old_c, "classification, min_leaf={min_leaf}");
            let new_r = best_regression_split(
                &samples,
                &x,
                &|s| ts[s],
                min_leaf,
                1e-12,
                &mut s,
                &TargetBudget::unlimited(),
            )
            .unwrap();
            let old_r =
                legacy_regression_split(&samples, &x, &|s| ts[s], min_leaf, 1e-12, &mut s);
            if let (Some(a), Some(b)) = (new_c, old_c) {
                assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            }
            assert_eq!(new_r.is_some(), old_r.is_some(), "regression, min_leaf={min_leaf}");
            if let (Some(a), Some(b)) = (new_r, old_r) {
                assert_eq!(
                    (a.feature, a.threshold.to_bits(), a.n_left),
                    (b.feature, b.threshold.to_bits(), b.n_left),
                    "regression, min_leaf={min_leaf}"
                );
                assert!(
                    (a.gain - b.gain).abs() <= 1e-9 * (1.0 + b.gain.abs()),
                    "regression gain, min_leaf={min_leaf}: {} vs {}",
                    a.gain,
                    b.gain
                );
            }
        }
    }

    #[test]
    fn binary_fast_path_matches_legacy_oracle() {
        // Two-valued columns (one-hot indicators, raw or standardized) take
        // the counting fast path; it must reproduce the legacy stable-sort
        // result exactly, gain bits included — for classification (integer
        // counts are order-free) and regression (gather order equals the
        // stable sort's tie order).
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let hot = (i * 7) % 3; // one-hot block of a ternary feature
                vec![
                    if hot == 0 { 1.0 } else { 0.0 },
                    if hot == 1 { 1.0 } else { 0.0 },
                    if hot == 2 { 1.0 } else { 0.0 },
                    // A standardized-looking indicator and a constant column.
                    if i % 4 == 0 { 1.7320508 } else { -0.5773503 },
                    2.5,
                ]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = matrix(&refs);
        let ys: Vec<u32> = (0..40).map(|i| ((i * 5) % 3) as u32).collect();
        let ts: Vec<f64> = (0..40).map(|i| ((i * 13) % 7) as f64 * 0.3 - 1.0).collect();
        let samples: Vec<usize> = (0..40).collect();
        for min_leaf in [1usize, 3, 8] {
            let mut s = SplitScratch::new(3);
            let new_c = best_classification_split(
                &samples,
                &x,
                &|s| ys[s],
                3,
                min_leaf,
                1e-12,
                &mut s,
                &TargetBudget::unlimited(),
            )
            .unwrap();
            let old_c = legacy_classification_split(
                &samples,
                &x,
                &|s| ys[s],
                3,
                min_leaf,
                1e-12,
                &mut s,
            );
            assert_eq!(new_c, old_c, "classification, min_leaf={min_leaf}");
            let new_r = best_regression_split(
                &samples,
                &x,
                &|s| ts[s],
                min_leaf,
                1e-12,
                &mut s,
                &TargetBudget::unlimited(),
            )
            .unwrap();
            let old_r =
                legacy_regression_split(&samples, &x, &|s| ts[s], min_leaf, 1e-12, &mut s);
            assert_eq!(new_r, old_r, "regression, min_leaf={min_leaf}");
            if let (Some(a), Some(b)) = (new_c, old_c) {
                assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            }
            if let (Some(a), Some(b)) = (new_r, old_r) {
                assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            }
        }
    }

    #[test]
    fn wide_scan_trips_expired_budget() {
        // A budget that is already exhausted must be noticed inside the
        // column scan, not only between node expansions.
        let n_rows = 64usize;
        let n_cols = 80usize; // 64 * 80 > SCAN_CHECK_ELEMS
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|i| (0..n_cols).map(|j| ((i * 31 + j * 17) % 101) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = matrix(&refs);
        let ys: Vec<u32> = (0..n_rows).map(|i| (i % 2) as u32).collect();
        let samples: Vec<usize> = (0..n_rows).collect();
        let budget =
            crate::budget::RunBudget::with_deadline(std::time::Duration::ZERO).start_target();
        let mut s = SplitScratch::new(2);
        let r = best_classification_split(
            &samples,
            &x,
            &|s| ys[s],
            2,
            1,
            1e-12,
            &mut s,
            &budget,
        );
        assert!(r.is_err(), "expired budget must abort the scan");
    }
}
