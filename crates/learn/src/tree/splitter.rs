//! Best-split search shared by both tree flavours.
//!
//! For every candidate feature the node's samples are sorted by feature
//! value and a single left-to-right sweep evaluates every distinct threshold
//! with O(1) incremental statistics: class counts for classification,
//! first/second moments for regression. Feature values are read through the
//! borrowed [`frac_dataset::ColRef`] column path, so the search runs
//! allocation-free over owned matrices and pool views alike.

use frac_dataset::DesignView;

/// A chosen split: feature, threshold, and the impurity decrease it buys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SplitChoice {
    pub feature: usize,
    pub threshold: f64,
    pub gain: f64,
    /// Samples going left (`value <= threshold`).
    pub n_left: usize,
}

/// Shannon entropy (nats) of a count vector.
#[inline]
pub(crate) fn counts_entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Sum of squared deviations from the mean, from raw moments.
#[inline]
fn sse(sum: f64, sum_sq: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    (sum_sq - sum * sum / nf).max(0.0)
}

/// Scratch buffers reused across nodes to avoid per-node allocation.
pub(crate) struct SplitScratch {
    /// (feature value, sample slot) pairs for sorting.
    pub pairs: Vec<(f64, usize)>,
    /// Per-class left-side counts (classification only).
    pub left_counts: Vec<usize>,
    /// Per-class node counts (classification only).
    pub node_counts: Vec<usize>,
}

impl SplitScratch {
    pub fn new(arity: usize) -> Self {
        SplitScratch {
            pairs: Vec::new(),
            left_counts: vec![0; arity],
            node_counts: vec![0; arity],
        }
    }
}

/// Best entropy-gain split for a classification node.
///
/// `samples` are row indices into `get(row) -> value`; `labels(row)` gives
/// the class. Returns `None` when no split satisfies `min_leaf` or improves
/// entropy by more than `min_gain`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_classification_split(
    samples: &[usize],
    x: &dyn DesignView,
    label: &dyn Fn(usize) -> u32,
    arity: usize,
    min_leaf: usize,
    min_gain: f64,
    scratch: &mut SplitScratch,
) -> Option<SplitChoice> {
    let n = samples.len();
    if n < 2 * min_leaf {
        return None;
    }
    scratch.node_counts.iter_mut().for_each(|c| *c = 0);
    for &s in samples {
        scratch.node_counts[label(s) as usize] += 1;
    }
    let parent_entropy = counts_entropy(&scratch.node_counts, n);
    if parent_entropy <= 0.0 {
        return None; // pure node
    }

    let mut best: Option<SplitChoice> = None;
    for f in 0..x.n_cols() {
        let col = x.col(f);
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(samples.iter().map(|&s| (col.get(s), s)));
        scratch
            .pairs
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        scratch.left_counts.iter_mut().for_each(|c| *c = 0);
        let mut n_left = 0usize;
        for i in 0..n - 1 {
            let (v, s) = scratch.pairs[i];
            scratch.left_counts[label(s) as usize] += 1;
            n_left += 1;
            let v_next = scratch.pairs[i + 1].0;
            if v_next <= v {
                continue; // not a distinct threshold
            }
            if n_left < min_leaf || n - n_left < min_leaf {
                continue;
            }
            let h_left = counts_entropy(&scratch.left_counts, n_left);
            let right_counts: Vec<usize> = scratch
                .left_counts
                .iter()
                .zip(&scratch.node_counts)
                .map(|(&l, &t)| t - l)
                .collect();
            let h_right = counts_entropy(&right_counts, n - n_left);
            let weighted =
                (n_left as f64 * h_left + (n - n_left) as f64 * h_right) / n as f64;
            let gain = parent_entropy - weighted;
            let threshold = 0.5 * (v + v_next);
            if gain > min_gain
                && best.is_none_or(|b| {
                    gain > b.gain + 1e-15
                        || ((gain - b.gain).abs() <= 1e-15
                            && (f, threshold) < (b.feature, b.threshold))
                })
            {
                best = Some(SplitChoice { feature: f, threshold, gain, n_left });
            }
        }
        let _ = arity;
    }
    best
}

/// Best variance-reduction split for a regression node. Gain is measured as
/// SSE decrease.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_regression_split(
    samples: &[usize],
    x: &dyn DesignView,
    target: &dyn Fn(usize) -> f64,
    min_leaf: usize,
    min_gain: f64,
    scratch: &mut SplitScratch,
) -> Option<SplitChoice> {
    let n = samples.len();
    if n < 2 * min_leaf {
        return None;
    }
    let (mut total_sum, mut total_sq) = (0.0f64, 0.0f64);
    for &s in samples {
        let y = target(s);
        total_sum += y;
        total_sq += y * y;
    }
    let parent_sse = sse(total_sum, total_sq, n);
    if parent_sse <= 0.0 {
        return None; // constant target
    }

    let mut best: Option<SplitChoice> = None;
    for f in 0..x.n_cols() {
        let col = x.col(f);
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(samples.iter().map(|&s| (col.get(s), s)));
        scratch
            .pairs
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let (mut left_sum, mut left_sq) = (0.0f64, 0.0f64);
        let mut n_left = 0usize;
        for i in 0..n - 1 {
            let (v, s) = scratch.pairs[i];
            let y = target(s);
            left_sum += y;
            left_sq += y * y;
            n_left += 1;
            let v_next = scratch.pairs[i + 1].0;
            if v_next <= v {
                continue;
            }
            if n_left < min_leaf || n - n_left < min_leaf {
                continue;
            }
            let child_sse = sse(left_sum, left_sq, n_left)
                + sse(total_sum - left_sum, total_sq - left_sq, n - n_left);
            let gain = parent_sse - child_sse;
            let threshold = 0.5 * (v + v_next);
            if gain > min_gain
                && best.is_none_or(|b| {
                    gain > b.gain + 1e-15
                        || ((gain - b.gain).abs() <= 1e-15
                            && (f, threshold) < (b.feature, b.threshold))
                })
            {
                best = Some(SplitChoice { feature: f, threshold, gain, n_left });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    fn matrix(rows: &[&[f64]]) -> DesignMatrix {
        let n_cols = rows[0].len();
        let values: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DesignMatrix::from_raw(rows.len(), n_cols, values)
    }

    #[test]
    fn entropy_of_counts() {
        assert_eq!(counts_entropy(&[4, 0], 4), 0.0);
        assert!((counts_entropy(&[2, 2], 4) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn classification_split_finds_obvious_boundary() {
        // Feature 0 separates perfectly at 0.5; feature 1 is noise.
        let x = matrix(&[&[0.0, 7.0], &[0.2, 3.0], &[0.9, 5.0], &[1.0, 4.0]]);
        let ys = [0u32, 0, 1, 1];
        let samples: Vec<usize> = (0..4).collect();
        let mut scratch = SplitScratch::new(2);
        let choice = best_classification_split(
            &samples,
            &x,
            &|s| ys[s],
            2,
            1,
            1e-12,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(choice.feature, 0);
        assert!((choice.threshold - 0.55).abs() < 1e-12);
        assert!((choice.gain - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(choice.n_left, 2);
    }

    #[test]
    fn pure_node_returns_none() {
        let x = matrix(&[&[0.0], &[1.0]]);
        let ys = [1u32, 1];
        let mut scratch = SplitScratch::new(2);
        assert!(best_classification_split(
            &[0, 1],
            &x,
            &|s| ys[s],
            2,
            1,
            1e-12,
            &mut scratch,
        )
        .is_none());
    }

    #[test]
    fn min_leaf_blocks_tiny_children() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let ys = [0u32, 1, 1, 1];
        let mut scratch = SplitScratch::new(2);
        // min_leaf = 2 forbids the perfect 1|3 split; the 2|2 split has less
        // gain but is the only legal one.
        let choice = best_classification_split(
            &[0, 1, 2, 3],
            &x,
            &|s| ys[s],
            2,
            2,
            1e-12,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(choice.n_left, 2);
    }

    #[test]
    fn regression_split_reduces_variance() {
        let x = matrix(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let ys = [1.0, 1.1, 5.0, 5.2];
        let mut scratch = SplitScratch::new(0);
        let choice = best_regression_split(
            &[0, 1, 2, 3],
            &x,
            &|s| ys[s],
            1,
            1e-12,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(choice.feature, 0);
        assert!((choice.threshold - 5.5).abs() < 1e-12);
        assert_eq!(choice.n_left, 2);
    }

    #[test]
    fn constant_target_returns_none() {
        let x = matrix(&[&[0.0], &[1.0], &[2.0]]);
        let mut scratch = SplitScratch::new(0);
        assert!(best_regression_split(
            &[0, 1, 2],
            &x,
            &|_| 3.0,
            1,
            1e-12,
            &mut scratch,
        )
        .is_none());
    }

    #[test]
    fn tied_feature_values_are_never_thresholds() {
        // All values equal: no distinct threshold exists.
        let x = matrix(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let ys = [0u32, 1, 0, 1];
        let mut scratch = SplitScratch::new(2);
        assert!(best_classification_split(
            &[0, 1, 2, 3],
            &x,
            &|s| ys[s],
            2,
            1,
            1e-12,
            &mut scratch,
        )
        .is_none());
    }

    #[test]
    fn split_search_agrees_across_view_kinds() {
        // The same samples served through a RowSubset view must choose the
        // identical split as the owned matrix restricted to those rows.
        let full = matrix(&[
            &[9.0, 9.0], // excluded
            &[0.0, 7.0],
            &[0.2, 3.0],
            &[9.0, 9.0], // excluded
            &[0.9, 5.0],
            &[1.0, 4.0],
        ]);
        let keep = [1usize, 2, 4, 5];
        let owned = full.select_rows(&keep);
        let view = frac_dataset::RowSubset::new(&full, &keep);
        let ys = [0u32, 0, 1, 1];
        let mut s1 = SplitScratch::new(2);
        let mut s2 = SplitScratch::new(2);
        let samples: Vec<usize> = (0..4).collect();
        let a = best_classification_split(&samples, &owned, &|s| ys[s], 2, 1, 1e-12, &mut s1);
        let b = best_classification_split(&samples, &view, &|s| ys[s], 2, 1, 1e-12, &mut s2);
        assert_eq!(a, b);
        assert!(a.is_some());
    }
}
