//! Linear support vector classification.
//!
//! Dual coordinate descent for the L2-regularized L1-loss (hinge) linear SVM
//! (Hsieh et al., *A Dual Coordinate Descent Method for Large-scale Linear
//! SVM*, ICML 2008), with one-vs-rest reduction for multi-class targets.
//!
//! FRaC's SNP experiments found trees better suited to discrete data, but
//! the paper's methodology explicitly covers SVM classification of discrete
//! features, and the comparison (tree vs. SVM on SNP data, paper §III-B) is
//! one of the ablations our bench harness reproduces — so the classifier is
//! a first-class substrate here.
//!
//! Like [`crate::svr`], the trainer has two solver paths selected by
//! [`SolverMode`]: the strict reference sweep, and a fast path with
//! liblinear-style active-set shrinking, warm-started per-class duals, and
//! blocked view kernels (see [`crate::solver`] for the contract).

use crate::budget::TargetBudget;
use crate::fault::{self, TrainError};
use crate::solver::{stats, GramMatrix, SolverMode, SolverRows, SolverStrategy};
use crate::telemetry;
use crate::traits::{Classifier, ClassifierTrainer, Trained, TrainingCost};
use frac_dataset::split::derive_seed;
use frac_dataset::{DesignView, PackedDesign};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Hyperparameters for [`LinearSvc`] training.
#[derive(Debug, Clone, Copy)]
pub struct SvcConfig {
    /// Soft-margin cost C.
    pub c: f64,
    /// Maximum coordinate-descent epochs per binary problem.
    pub max_epochs: usize,
    /// Stop when the largest projected-gradient violation falls below this.
    pub tolerance: f64,
    /// Include a bias term (constant-feature augmentation).
    pub bias: bool,
    /// Seed for per-epoch coordinate permutations.
    pub seed: u64,
    /// Solver path: fast (shrinking + warm starts, default) or strict.
    pub mode: SolverMode,
    /// Compute gradient dot products in f32 with f64 accumulation
    /// ([`frac_dataset::DesignView::row_dot_f32`]). Honoured only on the
    /// fast path — strict always runs the exact sequential f64 kernels.
    pub f32_compute: bool,
    /// Fast-path execution strategy: Gram-matrix dual maintenance, primal
    /// maintenance, or cost-model auto-selection (default). Strict mode
    /// ignores this and always runs the primal reference sweep. Under the
    /// Gram strategy all one-vs-rest classes share one Q build (the Gram
    /// matrix is label-independent).
    pub strategy: SolverStrategy,
}

impl Default for SvcConfig {
    fn default() -> Self {
        // Loose stopping for the same reason as `SvrConfig`: inseparable
        // problems never reach tight tolerances, and FRaC's accuracy is
        // insensitive to the last digits of the dual.
        SvcConfig {
            c: 1.0,
            max_epochs: 60,
            tolerance: 0.01,
            bias: true,
            seed: 0x0c1a_55e5,
            mode: SolverMode::Fast,
            f32_compute: false,
            strategy: SolverStrategy::Auto,
        }
    }
}

/// One-vs-rest linear SVM classifier: `argmax_k (w_kᵀx + b_k)`.
#[derive(Debug, Clone)]
pub struct LinearSvc {
    /// One (weights, bias) pair per class.
    hyperplanes: Vec<(Vec<f64>, f64)>,
}

impl LinearSvc {
    /// Decision value for class `k` on input `x`.
    pub fn decision_value(&self, k: usize, x: &[f64]) -> f64 {
        let (w, b) = &self.hyperplanes[k];
        w.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() + b
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.hyperplanes.len()
    }

    /// Construct directly from fitted hyperplanes (persistence path).
    pub fn from_parts(hyperplanes: Vec<(Vec<f64>, f64)>) -> Self {
        LinearSvc { hyperplanes }
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.line("svc_classes", [self.hyperplanes.len()]);
        for (weights, bias) in &self.hyperplanes {
            w.floats("svc_bias", &[*bias]);
            w.floats("svc_weights", weights);
        }
    }

    /// Parse a model previously produced by [`LinearSvc::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        let k: usize = r.parse_one("svc_classes")?;
        let mut hyperplanes = Vec::with_capacity(k);
        for _ in 0..k {
            let bias: f64 = r.parse_one("svc_bias")?;
            let weights: Vec<f64> = r.parse_all("svc_weights")?;
            hyperplanes.push((weights, bias));
        }
        Ok(LinearSvc { hyperplanes })
    }
}

impl Classifier for LinearSvc {
    fn predict(&self, x: &[f64]) -> u32 {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for k in 0..self.hyperplanes.len() {
            let v = self.decision_value(k, x);
            if v > best_v {
                best_v = v;
                best = k;
            }
        }
        best as u32
    }

    fn approx_bytes(&self) -> usize {
        self.hyperplanes
            .iter()
            .map(|(w, _)| (w.len() + 1) * std::mem::size_of::<f64>())
            .sum()
    }
}

/// Trainer implementing one-vs-rest dual coordinate descent.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvcTrainer {
    /// Hyperparameters.
    pub config: SvcConfig,
}

impl SvcTrainer {
    /// Trainer with the given configuration.
    pub fn new(config: SvcConfig) -> Self {
        SvcTrainer { config }
    }

    /// Strict reference sweep for one binary (±1) problem: every coordinate
    /// every epoch, exact sequential kernels, warm start ignored.
    fn solve_binary_strict(
        &self,
        x: &dyn DesignView,
        labels: &[f64],
        class_seed: u64,
        budget: &TargetBudget,
    ) -> Result<SvcSolve, TrainError> {
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let bias_sq = if cfg.bias { 1.0 } else { 0.0 };
        let q_diag: Vec<f64> = (0..n).map(|i| x.row_sq_norm(i) + bias_sq).collect();

        let mut alpha = vec![0.0f64; n];
        let mut w = vec![0.0f64; d];
        let mut w_bias = 0.0f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut epochs_run = 0u64;

        for epoch in 0..cfg.max_epochs {
            budget.check()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(class_seed, epoch as u64));
            order.shuffle(&mut rng);
            let mut max_violation = 0.0f64;

            for &i in &order {
                let yi = labels[i];
                // G = y_i wᵀx_i − 1 (ascending-column fold, see svr.rs)
                let mut g = x.row_dot_acc(i, &w, w_bias * bias_sq);
                g = yi * g - 1.0;

                let a = alpha[i];
                let pg = if a == 0.0 {
                    g.min(0.0)
                } else if a >= cfg.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_violation = max_violation.max(pg.abs());

                if pg.abs() > 1e-14 && q_diag[i] > 0.0 {
                    let a_new = (a - g / q_diag[i]).clamp(0.0, cfg.c);
                    let delta = (a_new - a) * yi;
                    if delta != 0.0 {
                        alpha[i] = a_new;
                        x.axpy_row(i, delta, &mut w);
                        w_bias += delta * bias_sq;
                    }
                }
            }

            epochs_run = (epoch + 1) as u64;
            if max_violation < cfg.tolerance {
                break;
            }
        }
        let visits = epochs_run * n as u64;
        let flops = visits * ((d as u64) + 1) * 4;
        Ok(SvcSolve { w, w_bias, alpha, epochs: epochs_run, visits, path_bits: 0, flops })
    }

    /// The Gram-strategy fast loop for one binary problem: identical sweep
    /// order, shrinking, and stopping logic to
    /// [`SvcTrainer::solve_binary_fast_rows`], but the gradient comes from
    /// a maintained dual image `qs[i] = Σ_j Q_ij α_j y_j` (= w·x_i +
    /// w_bias·bias, since Q folds the bias in) instead of an O(d) primal
    /// dot. Q is label-independent, so every one-vs-rest class reuses the
    /// same matrix. Always full f64.
    fn solve_binary_fast_gram(
        &self,
        x: &PackedDesign,
        q: &GramMatrix,
        labels: &[f64],
        class_seed: u64,
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<SvcSolve, TrainError> {
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let bias_sq = if cfg.bias { 1.0 } else { 0.0 };

        let mut alpha = vec![0.0f64; n];
        let mut qs = vec![0.0f64; n];
        if let Some(warm) = warm {
            debug_assert_eq!(warm.len(), n, "warm-start dual length must match rows");
            for (i, &wv) in warm.iter().enumerate() {
                let a = wv.clamp(0.0, cfg.c);
                if a != 0.0 {
                    alpha[i] = a;
                    frac_dataset::kernels::axpy_blocked(a * labels[i], q.row(i), &mut qs);
                }
            }
        }

        let mut active: Vec<usize> = (0..n).collect();
        let mut shrink_thr = f64::INFINITY;
        let mut epochs = 0u64;
        let mut visits = 0u64;

        while epochs < cfg.max_epochs as u64 {
            budget.check()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(class_seed, epochs));
            crate::solver::shuffle_fast(&mut active, &mut rng);
            let mut max_violation = 0.0f64;

            let mut idx = 0usize;
            while idx < active.len() {
                let i = active[idx];
                let yi = labels[i];
                let g = yi * qs[i] - 1.0;
                visits += 1;

                let a = alpha[i];
                let shrink = if a == 0.0 {
                    g > shrink_thr
                } else if a >= cfg.c {
                    g < -shrink_thr
                } else {
                    false
                };
                if shrink {
                    active.swap_remove(idx);
                    continue;
                }

                let pg = if a == 0.0 {
                    g.min(0.0)
                } else if a >= cfg.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_violation = max_violation.max(pg.abs());

                let h = q.diag(i);
                if pg.abs() > 1e-14 && h > 0.0 {
                    let a_new = (a - g / h).clamp(0.0, cfg.c);
                    let delta = (a_new - a) * yi;
                    if delta != 0.0 {
                        alpha[i] = a_new;
                        frac_dataset::kernels::axpy_blocked(delta, q.row(i), &mut qs);
                    }
                }
                idx += 1;
            }

            epochs += 1;
            if max_violation < cfg.tolerance {
                if active.len() == n {
                    break;
                }
                active = (0..n).collect();
                shrink_thr = f64::INFINITY;
            } else {
                shrink_thr = max_violation;
            }
        }

        // Reconstruct the primal once: w = Σ α_i y_i x_i over the support.
        let mut w = vec![0.0f64; d];
        let mut w_bias = 0.0f64;
        let mut nnz = 0u64;
        for (i, &a) in alpha.iter().enumerate() {
            if a != 0.0 {
                let scaled = a * labels[i];
                x.axpy_row_blocked(i, scaled, &mut w);
                w_bias += scaled * bias_sq;
                nnz += 1;
            }
        }

        stats::record_gram_solve();
        let flops = visits * ((n as u64) + 1) * 4 + nnz * ((d as u64) + 1) * 2;
        Ok(SvcSolve {
            w,
            w_bias,
            alpha,
            epochs,
            visits,
            path_bits: crate::solver::STRATEGY_GRAM_CODE,
            flops,
        })
    }

    /// Fast primal-maintenance path for one binary problem: active-set
    /// shrinking, optional warm-started duals, blocked kernels. Mirrors the
    /// SVR fast path; the box here is `[0, C]` (hinge loss), so the shrink
    /// conditions are the one-sided liblinear ones.
    fn solve_binary_fast_rows<X: SolverRows + ?Sized>(
        &self,
        x: &X,
        labels: &[f64],
        class_seed: u64,
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<SvcSolve, TrainError> {
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let bias_sq = if cfg.bias { 1.0 } else { 0.0 };
        let q_diag: Vec<f64> = (0..n).map(|i| x.sq_norm(i) + bias_sq).collect();

        let mut alpha = vec![0.0f64; n];
        let mut w = vec![0.0f64; d];
        let mut w_bias = 0.0f64;
        if let Some(warm) = warm {
            debug_assert_eq!(warm.len(), n, "warm-start dual length must match rows");
            for (i, &wv) in warm.iter().enumerate() {
                let a = wv.clamp(0.0, cfg.c);
                if a != 0.0 {
                    alpha[i] = a;
                    let scaled = a * labels[i];
                    x.axpy(i, scaled, &mut w);
                    w_bias += scaled * bias_sq;
                }
            }
        }

        let mut active: Vec<usize> = (0..n).collect();
        let mut shrink_thr = f64::INFINITY;
        let mut epochs = 0u64;
        let mut visits = 0u64;
        // f32 mode needs the packed f32 mirror; without it the
        // demote-per-visit kernel is slower than f64, so fall back and
        // record which happened (see svr.rs).
        let f32_dot = cfg.f32_compute && x.has_f32();

        while epochs < cfg.max_epochs as u64 {
            budget.check()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(class_seed, epochs));
            crate::solver::shuffle_fast(&mut active, &mut rng);
            let mut max_violation = 0.0f64;

            let mut idx = 0usize;
            while idx < active.len() {
                let i = active[idx];
                let yi = labels[i];
                let mut g = if f32_dot {
                    x.dot_f32(i, &w, w_bias * bias_sq)
                } else {
                    x.dot(i, &w, w_bias * bias_sq)
                };
                g = yi * g - 1.0;
                visits += 1;

                let a = alpha[i];
                // Shrink: pinned at a box edge with the gradient pointing
                // firmly out of the feasible interval.
                let shrink = if a == 0.0 {
                    g > shrink_thr
                } else if a >= cfg.c {
                    g < -shrink_thr
                } else {
                    false
                };
                if shrink {
                    active.swap_remove(idx);
                    continue;
                }

                let pg = if a == 0.0 {
                    g.min(0.0)
                } else if a >= cfg.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_violation = max_violation.max(pg.abs());

                if pg.abs() > 1e-14 && q_diag[i] > 0.0 {
                    let a_new = (a - g / q_diag[i]).clamp(0.0, cfg.c);
                    let delta = (a_new - a) * yi;
                    if delta != 0.0 {
                        alpha[i] = a_new;
                        x.axpy(i, delta, &mut w);
                        w_bias += delta * bias_sq;
                    }
                }
                idx += 1;
            }

            epochs += 1;
            if max_violation < cfg.tolerance {
                if active.len() == n {
                    break;
                }
                // Unshrink and recheck before declaring convergence.
                active = (0..n).collect();
                shrink_thr = f64::INFINITY;
            } else {
                shrink_thr = max_violation;
            }
        }

        let path_bits = crate::solver::STRATEGY_PRIMAL_CODE
            | if f32_dot {
                crate::solver::STRATEGY_F32_PACKED_CODE
            } else if cfg.f32_compute {
                crate::solver::STRATEGY_F32_FALLBACK_CODE
            } else {
                0
            };
        let flops = visits * ((d as u64) + 1) * 4;
        Ok(SvcSolve { w, w_bias, alpha, epochs, visits, path_bits, flops })
    }

    /// Dispatch one binary problem on the configured [`SolverMode`] and
    /// record solver stats. `packed`/`gram` carry the per-train fast-path
    /// context hoisted by [`SvcTrainer::train_warm_impl`] (one gather and
    /// at most one Q build shared by all one-vs-rest classes). Fails only
    /// when `budget` trips (the budget is polled once per coordinate-descent
    /// epoch).
    #[allow(clippy::too_many_arguments)]
    fn solve_binary(
        &self,
        x: &dyn DesignView,
        packed: Option<&PackedDesign>,
        gram: Option<&GramMatrix>,
        labels: &[f64],
        class_seed: u64,
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<SvcSolve, TrainError> {
        let span = telemetry::span(telemetry::Stage::Solve);
        let out = match self.config.mode {
            SolverMode::Strict => self.solve_binary_strict(x, labels, class_seed, budget)?,
            SolverMode::Fast => match (packed, gram) {
                (Some(p), Some(q)) => {
                    self.solve_binary_fast_gram(p, q, labels, class_seed, warm, budget)?
                }
                (Some(p), None) => {
                    self.solve_binary_fast_rows(p, labels, class_seed, warm, budget)?
                }
                _ => self.solve_binary_fast_rows(x, labels, class_seed, warm, budget)?,
            },
        };
        drop(span);
        stats::record(out.epochs, out.visits, out.epochs * x.n_rows() as u64);
        telemetry::counter_add(telemetry::Counter::SolverEpochs, out.epochs);
        telemetry::counter_add(telemetry::Counter::SolverVisits, out.visits);
        if out.path_bits != 0 {
            telemetry::counter_add(telemetry::Counter::SolverStrategy, out.path_bits);
        }
        Ok(out)
    }

    /// One-vs-rest solve over all classes with cooperative budget polling.
    /// With an unlimited budget this is the arithmetic of
    /// [`ClassifierTrainer::train_view_warm`], bit for bit.
    #[allow(clippy::type_complexity)]
    fn train_warm_impl(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<LinearSvc>, Vec<Vec<f64>>), TrainError> {
        assert_eq!(x.n_rows(), y.len(), "target length must match rows");
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let k = arity as usize;

        // Hoist the fast-path gather — and, under the Gram strategy, the
        // O(n²d) Q build — out of the per-class loop: Q depends only on the
        // design (labels enter the maintained gradient, not the matrix), so
        // every one-vs-rest class shares one build.
        let packed = if cfg.mode == SolverMode::Fast && n > 0 {
            crate::solver::pack_for_solve(x, cfg.f32_compute)
        } else {
            None
        };
        let mut total_flops = 0u64;
        let gram = match &packed {
            Some(p) => {
                let use_gram = match cfg.strategy {
                    SolverStrategy::Primal => false,
                    SolverStrategy::Gram => true,
                    SolverStrategy::Auto => crate::solver::gram_policy().should_use_gram(n, d),
                };
                if use_gram {
                    let bias_sq = if cfg.bias { 1.0 } else { 0.0 };
                    let (q, built) = crate::solver::gram_for_solve(p, bias_sq, budget)?;
                    if built {
                        total_flops += GramMatrix::build_flops(n, d);
                    }
                    Some(q)
                } else {
                    None
                }
            }
            None => None,
        };

        let mut hyperplanes = Vec::with_capacity(k);
        let mut duals = Vec::with_capacity(k);
        let mut used_gram = false;
        for class in 0..k {
            let labels: Vec<f64> = y
                .iter()
                .map(|&c| if c as usize == class { 1.0 } else { -1.0 })
                .collect();
            if n == 0 {
                hyperplanes.push((vec![0.0; d], 0.0));
                duals.push(Vec::new());
                continue;
            }
            let class_warm = warm.and_then(|w| w.get(class)).map(|v| v.as_slice());
            let out = self.solve_binary(
                x,
                packed.as_deref(),
                gram.as_deref(),
                &labels,
                derive_seed(cfg.seed, class as u64),
                class_warm,
                budget,
            )?;
            total_flops += out.flops;
            used_gram |= out.path_bits & crate::solver::STRATEGY_GRAM_CODE != 0;
            hyperplanes.push((out.w, if cfg.bias { out.w_bias } else { 0.0 }));
            duals.push(out.alpha);
        }

        // Visit-based accounting (see svr.rs): flops are priced per path
        // inside each solve (plus the shared Q build above, charged once);
        // shrinking's skipped coordinates are not charged; warm-init
        // fold-in is priced by the CV driver once per dual vector, never
        // per solve.
        let active_set_bytes = match cfg.mode {
            SolverMode::Fast => n * std::mem::size_of::<usize>(),
            SolverMode::Strict => 0,
        };
        let gram_bytes = if used_gram {
            (n * n + n) * std::mem::size_of::<f64>()
        } else {
            0
        };
        let cost = TrainingCost {
            flops: total_flops,
            peak_bytes: ((2 * n + d) * std::mem::size_of::<f64>() + active_set_bytes + gram_bytes)
                as u64,
        };
        Ok((Trained { model: LinearSvc { hyperplanes }, cost }, duals))
    }
}

/// The raw output of one binary SVC solve.
struct SvcSolve {
    w: Vec<f64>,
    w_bias: f64,
    alpha: Vec<f64>,
    epochs: u64,
    visits: u64,
    /// `STRATEGY_*` mask bits for the path this solve took (0 on strict).
    path_bits: u64,
    /// Flops performed by this solve, priced per path (the shared Q build
    /// is charged once by [`SvcTrainer::train_warm_impl`], not here).
    flops: u64,
}

impl ClassifierTrainer for SvcTrainer {
    type Model = LinearSvc;

    fn train_view(&self, x: &dyn DesignView, y: &[u32], arity: u32) -> Trained<LinearSvc> {
        self.train_view_warm(x, y, arity, None).0
    }

    fn train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
    ) -> (Trained<LinearSvc>, Option<Vec<Vec<f64>>>) {
        match self.train_warm_impl(x, y, arity, warm, &TargetBudget::unlimited()) {
            Ok((trained, duals)) => (trained, Some(duals)),
            Err(_) => unreachable!("unlimited budget cannot trip"),
        }
    }

    /// Same one-vs-rest solve as the infallible path (bit-identical on
    /// success), but validates the problem up front and rejects diverged
    /// binary solves — any NaN/Inf hyperplane — as
    /// [`TrainError::NonConvergence`].
    fn try_train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
    ) -> Result<(Trained<LinearSvc>, Option<Vec<Vec<f64>>>), TrainError> {
        fault::check_classification_problem(x, y)?;
        let (trained, duals) = self.train_view_warm(x, y, arity, warm);
        let diverged = trained.model.hyperplanes.iter().any(|(w, b)| {
            !fault::all_finite(w) || !b.is_finite()
        });
        if diverged {
            return Err(TrainError::NonConvergence {
                epochs: self.config.max_epochs as u64,
            });
        }
        Ok((trained, duals))
    }

    /// Budget-polling one-vs-rest solve: same arithmetic as the other
    /// paths, with the budget checked once per epoch of every binary
    /// sub-problem.
    fn try_train_view_budgeted(
        &self,
        x: &dyn DesignView,
        y: &[u32],
        arity: u32,
        warm: Option<&[Vec<f64>]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<LinearSvc>, Option<Vec<Vec<f64>>>), TrainError> {
        fault::check_classification_problem(x, y)?;
        budget.check()?;
        let (trained, duals) = self.train_warm_impl(x, y, arity, warm, budget)?;
        let diverged = trained.model.hyperplanes.iter().any(|(w, b)| {
            !fault::all_finite(w) || !b.is_finite()
        });
        if diverged {
            return Err(TrainError::NonConvergence {
                epochs: self.config.max_epochs as u64,
            });
        }
        Ok((trained, Some(duals)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    fn matrix(rows: &[&[f64]]) -> DesignMatrix {
        let n_cols = rows[0].len();
        let values: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DesignMatrix::from_raw(rows.len(), n_cols, values)
    }

    #[test]
    fn separates_binary_classes() {
        let x = matrix(&[
            &[-2.0, -1.5],
            &[-1.5, -2.0],
            &[-1.0, -1.0],
            &[1.0, 1.5],
            &[2.0, 1.0],
            &[1.5, 2.0],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let t = SvcTrainer::default().train(&x, &y, 2);
        for (i, &label) in y.iter().enumerate() {
            assert_eq!(t.model.predict(x.row(i)), label, "sample {i}");
        }
        assert_eq!(t.model.predict(&[-3.0, -3.0]), 0);
        assert_eq!(t.model.predict(&[3.0, 3.0]), 1);
    }

    #[test]
    fn three_class_one_vs_rest() {
        // Three well-separated clusters, mimicking ternary SNP structure.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let centers = [(-3.0, 0.0), (0.0, 3.0), (3.0, 0.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..8 {
                let jx = (k % 3) as f64 * 0.1 - 0.1;
                let jy = (k % 4) as f64 * 0.1 - 0.15;
                rows.push(vec![cx + jx, cy + jy]);
                y.push(c as u32);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = matrix(&refs);
        let t = SvcTrainer::default().train(&x, &y, 3);
        assert_eq!(t.model.n_classes(), 3);
        let correct = y
            .iter()
            .enumerate()
            .filter(|&(i, &label)| t.model.predict(x.row(i)) == label)
            .count();
        assert_eq!(correct, y.len());
    }

    #[test]
    fn never_seen_class_still_has_hyperplane() {
        let x = matrix(&[&[0.0], &[1.0]]);
        let y = vec![0, 0];
        let t = SvcTrainer::default().train(&x, &y, 3);
        // Predictions remain valid codes even though classes 1,2 were absent.
        assert!(t.model.predict(&[0.5]) < 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = matrix(&[&[0.1], &[0.9], &[0.4], &[0.6]]);
        let y = vec![0, 1, 0, 1];
        let a = SvcTrainer::default().train(&x, &y, 2);
        let b = SvcTrainer::default().train(&x, &y, 2);
        for i in 0..4 {
            assert_eq!(
                a.model.decision_value(1, x.row(i)),
                b.model.decision_value(1, x.row(i))
            );
        }
    }

    #[test]
    fn empty_training_set_yields_valid_model() {
        let x = DesignMatrix::from_raw(0, 2, vec![]);
        let t = SvcTrainer::default().train(&x, &[], 3);
        assert!(t.model.predict(&[1.0, 1.0]) < 3);
        assert_eq!(t.cost.flops, 0);
    }

    #[test]
    fn small_c_is_more_regularized() {
        let x = matrix(&[&[-1.0], &[-0.5], &[0.5], &[1.0]]);
        let y = vec![0, 0, 1, 1];
        let small = SvcTrainer::new(SvcConfig { c: 1e-3, ..SvcConfig::default() })
            .train(&x, &y, 2);
        let large = SvcTrainer::new(SvcConfig { c: 100.0, ..SvcConfig::default() })
            .train(&x, &y, 2);
        let norm = |m: &LinearSvc| {
            m.hyperplanes[1].0.iter().map(|w| w * w).sum::<f64>().sqrt()
        };
        assert!(norm(&small.model) <= norm(&large.model) + 1e-9);
    }

    #[test]
    fn budgeted_path_matches_warm_path_and_trips_when_expired() {
        use crate::budget::RunBudget;
        let x = matrix(&[&[-1.0], &[-0.5], &[0.5], &[1.0]]);
        let y = vec![0, 0, 1, 1];
        let t = SvcTrainer::default();
        let (a, da) = t
            .try_train_view_budgeted(&x, &y, 2, None, &TargetBudget::unlimited())
            .unwrap();
        let (b, db) = t.try_train_view_warm(&x, &y, 2, None).unwrap();
        for k in 0..2 {
            assert_eq!(a.model.hyperplanes[k], b.model.hyperplanes[k]);
        }
        assert_eq!(da, db);

        let expired = RunBudget::with_deadline(std::time::Duration::from_secs(0)).start_target();
        assert_eq!(
            t.try_train_view_budgeted(&x, &y, 2, None, &expired).unwrap_err(),
            TrainError::DeadlineExceeded
        );
    }

    #[test]
    fn approx_bytes_counts_all_hyperplanes() {
        let x = matrix(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let t = SvcTrainer::default().train(&x, &[0, 1], 4);
        assert_eq!(t.model.approx_bytes(), 4 * 3 * 8);
    }
}
