//! Linear ε-insensitive support vector regression.
//!
//! The paper learns every continuous feature with a linear-kernel SVM
//! (originally libSVM's ε-SVR), chosen because "the SVM is a regularized
//! model … not highly susceptible to overfitting", which matters for the
//! high-dimension / tiny-sample data sets of precision medicine.
//!
//! For a linear kernel the kernelized SMO of libSVM is equivalent to — but
//! far slower than — the **dual coordinate descent** method of liblinear
//! (Ho & Lin, *Large-scale Linear Support Vector Regression*, JMLR 2012).
//! We implement that solver for the L1-loss (hinge-ε) primal
//!
//! ```text
//!   min_w  ½‖w‖² + C Σ_i max(0, |wᵀx_i − y_i| − ε)
//! ```
//!
//! via its dual over β ∈ [−C, C]ⁿ, sweeping coordinates in a seeded random
//! permutation per epoch and maintaining `w = Σ βᵢ xᵢ` incrementally. A bias
//! term is handled by the standard constant-feature augmentation.
//!
//! Two solver paths exist (see [`crate::solver`]): the **strict** reference
//! sweep above, and the default **fast** path adding liblinear's two classic
//! accelerations — active-set shrinking with an unshrink-and-recheck pass,
//! and warm-started duals through [`RegressorTrainer::train_view_warm`] —
//! on top of the blocked view kernels.

use crate::budget::TargetBudget;
use crate::fault::{self, TrainError};
use crate::solver::{stats, GramMatrix, SolverMode, SolverRows, SolverStrategy};
use crate::telemetry;
use crate::traits::{Regressor, RegressorTrainer, Trained, TrainingCost};
use frac_dataset::split::derive_seed;
use frac_dataset::DesignView;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Hyperparameters for [`LinearSvr`] training.
#[derive(Debug, Clone, Copy)]
pub struct SvrConfig {
    /// Soft-margin cost C (upper bound on |βᵢ|).
    pub c: f64,
    /// ε-insensitivity width.
    pub epsilon: f64,
    /// Maximum coordinate-descent epochs.
    pub max_epochs: usize,
    /// Stop when the largest projected-gradient violation in an epoch falls
    /// below this tolerance.
    pub tolerance: f64,
    /// Include a bias term (constant-feature augmentation).
    pub bias: bool,
    /// Seed for the per-epoch coordinate permutation.
    pub seed: u64,
    /// Solver path: fast (shrinking + warm starts, default) or strict.
    pub mode: SolverMode,
    /// Compute gradient dot products in f32 with f64 accumulation
    /// ([`frac_dataset::DesignView::row_dot_f32`]). Honoured only on the
    /// fast path — strict always runs the exact sequential f64 kernels.
    /// The weight updates (axpy) stay full f64, so the error is bounded by
    /// the ~1.2e-7 relative rounding of each product, well inside the
    /// solver tolerance it is meant to be paired with.
    pub f32_compute: bool,
    /// Fast-path execution strategy: Gram-matrix dual maintenance, primal
    /// maintenance, or cost-model auto-selection (default). Strict mode
    /// ignores this and always runs the primal reference sweep.
    pub strategy: SolverStrategy,
}

impl Default for SvrConfig {
    fn default() -> Self {
        // C = 1, ε = 0.1 are libSVM's defaults, which the original FRaC code
        // used unchanged. The epoch cap and tolerance follow liblinear's
        // philosophy of loose stopping (its SVR default eps is 0.1): models
        // that cannot fit inside the ε-tube (e.g. tiny Diverse subsets of
        // mostly-irrelevant inputs) never drive their violation to zero, so
        // a tight tolerance would burn the full epoch budget on them and
        // distort the variant cost ratios of the paper's Tables III–IV.
        SvrConfig {
            c: 1.0,
            epsilon: 0.1,
            max_epochs: 100,
            tolerance: 0.01,
            bias: true,
            seed: 0x5f3c_9e1d,
            mode: SolverMode::Fast,
            f32_compute: false,
            strategy: SolverStrategy::Auto,
        }
    }
}

/// A fitted linear SVR model: `ŷ(x) = wᵀx + b`.
#[derive(Debug, Clone)]
pub struct LinearSvr {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvr {
    /// The weight vector (one entry per design-matrix column).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Construct directly from fitted parameters (persistence path).
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> Self {
        LinearSvr { weights, bias }
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.floats("svr_bias", &[self.bias]);
        w.floats("svr_weights", &self.weights);
    }

    /// Parse a model previously produced by [`LinearSvr::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        let bias: f64 = r.parse_one("svr_bias")?;
        let weights: Vec<f64> = r.parse_all("svr_weights")?;
        Ok(LinearSvr { weights, bias })
    }
}

impl Regressor for LinearSvr {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }

    fn approx_bytes(&self) -> usize {
        self.weights.len() * std::mem::size_of::<f64>() + std::mem::size_of::<f64>()
    }
}

/// Trainer implementing the dual coordinate-descent ε-SVR solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvrTrainer {
    /// Hyperparameters.
    pub config: SvrConfig,
}

/// The raw output of one dual solve: primal weights, duals, and work done.
struct SvrSolve {
    w: Vec<f64>,
    w_bias: f64,
    beta: Vec<f64>,
    epochs: u64,
    /// Coordinates whose gradient was evaluated (= dense `epochs · n` on the
    /// strict path; less under shrinking).
    visits: u64,
    /// `STRATEGY_*` mask bits describing the path this solve actually took
    /// (0 on the strict path, which predates the strategy telemetry).
    path_bits: u64,
    /// Flops actually performed, priced per path: the primal loop pays
    /// O(d) per visit, the Gram loop O(n) per visit plus the one-off Q
    /// build and final w reconstruction.
    flops: u64,
}

impl SvrTrainer {
    /// Trainer with the given configuration.
    pub fn new(config: SvrConfig) -> Self {
        SvrTrainer { config }
    }

    /// The strict reference sweep: every coordinate every epoch, exact
    /// sequential kernels. Ignores warm starts by design — this path's
    /// results depend only on (data, config), never on solve history.
    /// The budget is polled once per epoch (the cooperative cancellation
    /// granularity of the ISSUE's "checked every N passes").
    fn solve_strict(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        budget: &TargetBudget,
    ) -> Result<SvrSolve, TrainError> {
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let bias_sq = if cfg.bias { 1.0 } else { 0.0 };
        // Q_ii = x_i·x_i (+1 for the bias augmentation).
        let q_diag: Vec<f64> = (0..n).map(|i| x.row_sq_norm(i) + bias_sq).collect();

        let mut beta = vec![0.0f64; n];
        let mut w = vec![0.0f64; d];
        let mut w_bias = 0.0f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut epochs_run = 0u64;

        for epoch in 0..cfg.max_epochs {
            budget.check()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, epoch as u64));
            order.shuffle(&mut rng);
            let mut max_violation = 0.0f64;

            for &i in &order {
                let h = q_diag[i];
                // G = wᵀx_i − y_i (folded in ascending column order — any
                // view must reproduce the owned accumulation bit for bit).
                let g = x.row_dot_acc(i, &w, -y[i] + w_bias * bias_sq);
                let gp = g + cfg.epsilon;
                let gn = g - cfg.epsilon;

                // Projected-gradient violation (liblinear's criterion): at a
                // bound, only a gradient pointing back *into* the feasible
                // interval counts — a blocked direction is KKT-optimal.
                let b = beta[i];
                let violation = svr_violation(b, gp, gn, cfg.c);
                max_violation = max_violation.max(violation);

                if h <= 0.0 {
                    // Zero row: objective is linear in β_i; any movement is
                    // unbounded or useless. Reset to 0.
                    beta[i] = 0.0;
                    continue;
                }

                // Newton step on the piecewise-quadratic dual coordinate.
                let dstep = if gp < h * b {
                    -gp / h
                } else if gn > h * b {
                    -gn / h
                } else {
                    -b
                };
                if dstep.abs() < 1e-14 {
                    continue;
                }
                let beta_new = (b + dstep).clamp(-cfg.c, cfg.c);
                let delta = beta_new - b;
                if delta != 0.0 {
                    beta[i] = beta_new;
                    x.axpy_row(i, delta, &mut w);
                    w_bias += delta * bias_sq;
                }
            }

            epochs_run = (epoch + 1) as u64;
            if max_violation < cfg.tolerance {
                break;
            }
        }

        let visits = epochs_run * n as u64;
        // Every visited coordinate touches its (d+1) augmented columns twice
        // (gradient + update), ~4 flops each.
        let flops = visits * ((d as u64) + 1) * 4;
        Ok(SvrSolve { w, w_bias, beta, epochs: epochs_run, visits, path_bits: 0, flops })
    }

    /// The fast path: active-set shrinking (liblinear §4), warm-started
    /// duals, blocked kernels. A bound-pinned coordinate whose projected
    /// gradient clears the previous epoch's worst violation is dropped from
    /// the sweep; once the active set converges, one full
    /// unshrink-and-recheck pass runs with shrinking disabled before
    /// convergence is declared.
    fn solve_fast(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<SvrSolve, TrainError> {
        // Gather the design into contiguous rows when it fits the packing
        // budget: the epoch loops below then monomorphize to single-slice
        // kernel calls with no view indirection. The Gram strategy
        // additionally requires a packed design (Q is built from its rows),
        // so an unpackable view always takes the primal path.
        let cfg = &self.config;
        match crate::solver::pack_for_solve(x, cfg.f32_compute) {
            Some(packed) => {
                let n = packed.n_rows();
                let d = packed.n_cols();
                let use_gram = match cfg.strategy {
                    SolverStrategy::Primal => false,
                    SolverStrategy::Gram => n > 0,
                    SolverStrategy::Auto => crate::solver::gram_policy().should_use_gram(n, d),
                };
                if use_gram {
                    let bias_sq = if cfg.bias { 1.0 } else { 0.0 };
                    let (gram, built) = crate::solver::gram_for_solve(&packed, bias_sq, budget)?;
                    self.solve_fast_gram(&packed, &gram, built, y, warm, budget)
                } else {
                    self.solve_fast_rows(packed.as_ref(), y, warm, budget)
                }
            }
            None => self.solve_fast_rows(x, y, warm, budget),
        }
    }

    /// The Gram-strategy fast loop: identical sweep order, shrinking, and
    /// stopping logic to [`SvrTrainer::solve_fast_rows`], but the gradient
    /// comes from a maintained dual image `qb[i] = Σ_j Q_ij β_j` (an O(1)
    /// read + O(n) row-of-Q update per step) instead of an O(d) primal dot;
    /// `w` is reconstructed once at convergence. Always full f64 — the Q
    /// build and row updates dominate, and mixing precision here would buy
    /// nothing.
    fn solve_fast_gram(
        &self,
        x: &frac_dataset::PackedDesign,
        q: &GramMatrix,
        built: bool,
        y: &[f64],
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<SvrSolve, TrainError> {
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let bias_sq = if cfg.bias { 1.0 } else { 0.0 };

        let mut beta = vec![0.0f64; n];
        // qb[i] tracks w·x_i + w_bias·bias exactly (Q folds the bias into
        // every entry), so g = qb[i] − y_i mirrors the primal gradient.
        let mut qb = vec![0.0f64; n];
        if let Some(warm) = warm {
            debug_assert_eq!(warm.len(), n, "warm-start dual length must match rows");
            for (i, &wv) in warm.iter().enumerate() {
                let b = wv.clamp(-cfg.c, cfg.c);
                if b != 0.0 {
                    beta[i] = b;
                    frac_dataset::kernels::axpy_blocked(b, q.row(i), &mut qb);
                }
            }
        }

        let mut active: Vec<usize> = (0..n).collect();
        let mut shrink_thr = f64::INFINITY;
        let mut epochs = 0u64;
        let mut visits = 0u64;

        while epochs < cfg.max_epochs as u64 {
            budget.check()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, epochs));
            crate::solver::shuffle_fast(&mut active, &mut rng);
            let mut max_violation = 0.0f64;

            let mut idx = 0usize;
            while idx < active.len() {
                let i = active[idx];
                let h = q.diag(i);
                let g = qb[i] - y[i];
                visits += 1;
                let gp = g + cfg.epsilon;
                let gn = g - cfg.epsilon;
                let b = beta[i];

                let shrink = if b == 0.0 {
                    gp > shrink_thr && gn < -shrink_thr
                } else if b >= cfg.c {
                    gp < -shrink_thr
                } else if b <= -cfg.c {
                    gn > shrink_thr
                } else {
                    false
                };
                if shrink {
                    active.swap_remove(idx);
                    continue;
                }

                max_violation = max_violation.max(svr_violation(b, gp, gn, cfg.c));

                if h <= 0.0 {
                    beta[i] = 0.0;
                    idx += 1;
                    continue;
                }

                let dstep = if gp < h * b {
                    -gp / h
                } else if gn > h * b {
                    -gn / h
                } else {
                    -b
                };
                if dstep.abs() >= 1e-14 {
                    let beta_new = (b + dstep).clamp(-cfg.c, cfg.c);
                    let delta = beta_new - b;
                    if delta != 0.0 {
                        beta[i] = beta_new;
                        frac_dataset::kernels::axpy_blocked(delta, q.row(i), &mut qb);
                    }
                }
                idx += 1;
            }

            epochs += 1;
            if max_violation < cfg.tolerance {
                if active.len() == n {
                    break;
                }
                active = (0..n).collect();
                shrink_thr = f64::INFINITY;
            } else {
                shrink_thr = max_violation;
            }
        }

        // Reconstruct the primal once: w = Xᵀβ over the support vectors.
        let mut w = vec![0.0f64; d];
        let mut w_bias = 0.0f64;
        let mut nnz = 0u64;
        for (i, &b) in beta.iter().enumerate() {
            if b != 0.0 {
                x.axpy_row_blocked(i, b, &mut w);
                w_bias += b * bias_sq;
                nnz += 1;
            }
        }

        stats::record_gram_solve();
        // Per visit: O(1) gradient + O(n+1) row-of-Q axpy (~4 flops/entry);
        // plus the final O(nnz·d) reconstruction, and the Q build when this
        // solve actually paid for it (a cache hit doesn't).
        let mut flops = visits * ((n as u64) + 1) * 4 + nnz * ((d as u64) + 1) * 2;
        if built {
            flops += GramMatrix::build_flops(n, d);
        }
        Ok(SvrSolve {
            w,
            w_bias,
            beta,
            epochs,
            visits,
            path_bits: crate::solver::STRATEGY_GRAM_CODE,
            flops,
        })
    }

    fn solve_fast_rows<X: SolverRows + ?Sized>(
        &self,
        x: &X,
        y: &[f64],
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<SvrSolve, TrainError> {
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();
        let bias_sq = if cfg.bias { 1.0 } else { 0.0 };
        let q_diag: Vec<f64> = (0..n).map(|i| x.sq_norm(i) + bias_sq).collect();

        let mut beta = vec![0.0f64; n];
        let mut w = vec![0.0f64; d];
        let mut w_bias = 0.0f64;
        if let Some(warm) = warm {
            debug_assert_eq!(warm.len(), n, "warm-start dual length must match rows");
            for (i, &wv) in warm.iter().enumerate() {
                // Clamp into the feasible box: any feasible point is a valid
                // start, so a caller may pass duals fit under a different C.
                let b = wv.clamp(-cfg.c, cfg.c);
                if b != 0.0 {
                    beta[i] = b;
                    x.axpy(i, b, &mut w);
                    w_bias += b * bias_sq;
                }
            }
        }

        let mut active: Vec<usize> = (0..n).collect();
        let mut shrink_thr = f64::INFINITY;
        let mut epochs = 0u64;
        let mut visits = 0u64;
        // f32 mode runs only over a packed f32 mirror (unit-stride loads);
        // without one the demote-per-visit kernel measures slower than f64,
        // so fall back to the exact dot and record which happened.
        let f32_dot = cfg.f32_compute && x.has_f32();

        while epochs < cfg.max_epochs as u64 {
            budget.check()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, epochs));
            crate::solver::shuffle_fast(&mut active, &mut rng);
            let mut max_violation = 0.0f64;

            let mut idx = 0usize;
            while idx < active.len() {
                let i = active[idx];
                let h = q_diag[i];
                let init = -y[i] + w_bias * bias_sq;
                let g = if f32_dot {
                    x.dot_f32(i, &w, init)
                } else {
                    x.dot(i, &w, init)
                };
                visits += 1;
                let gp = g + cfg.epsilon;
                let gn = g - cfg.epsilon;
                let b = beta[i];

                // Shrink: pinned at a bound with the blocked direction's
                // gradient beyond the previous epoch's worst violation —
                // KKT-optimal with margin, so skip it until the recheck.
                let shrink = if b == 0.0 {
                    gp > shrink_thr && gn < -shrink_thr
                } else if b >= cfg.c {
                    gp < -shrink_thr
                } else if b <= -cfg.c {
                    gn > shrink_thr
                } else {
                    false
                };
                if shrink {
                    active.swap_remove(idx);
                    continue;
                }

                max_violation = max_violation.max(svr_violation(b, gp, gn, cfg.c));

                if h <= 0.0 {
                    beta[i] = 0.0;
                    idx += 1;
                    continue;
                }

                let dstep = if gp < h * b {
                    -gp / h
                } else if gn > h * b {
                    -gn / h
                } else {
                    -b
                };
                if dstep.abs() >= 1e-14 {
                    let beta_new = (b + dstep).clamp(-cfg.c, cfg.c);
                    let delta = beta_new - b;
                    if delta != 0.0 {
                        beta[i] = beta_new;
                        x.axpy(i, delta, &mut w);
                        w_bias += delta * bias_sq;
                    }
                }
                idx += 1;
            }

            epochs += 1;
            if max_violation < cfg.tolerance {
                if active.len() == n {
                    break;
                }
                // Unshrink and recheck: restore every coordinate and run one
                // full pass with shrinking disabled (infinite threshold).
                active = (0..n).collect();
                shrink_thr = f64::INFINITY;
            } else {
                shrink_thr = max_violation;
            }
        }

        let path_bits = crate::solver::STRATEGY_PRIMAL_CODE
            | if f32_dot {
                crate::solver::STRATEGY_F32_PACKED_CODE
            } else if cfg.f32_compute {
                crate::solver::STRATEGY_F32_FALLBACK_CODE
            } else {
                0
            };
        let flops = visits * ((d as u64) + 1) * 4;
        Ok(SvrSolve { w, w_bias, beta, epochs, visits, path_bits, flops })
    }

    /// Dispatch on the configured [`SolverMode`], record solver stats, and
    /// price the work actually done. Returns [`TrainError::DeadlineExceeded`]
    /// only when `budget` trips; with an unlimited budget it never fails.
    fn solve_impl(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<LinearSvr>, Vec<f64>), TrainError> {
        assert_eq!(x.n_rows(), y.len(), "target length must match rows");
        let cfg = &self.config;
        let n = x.n_rows();
        let d = x.n_cols();

        if n == 0 {
            return Ok((
                Trained {
                    model: LinearSvr { weights: vec![0.0; d], bias: 0.0 },
                    cost: TrainingCost::default(),
                },
                Vec::new(),
            ));
        }

        let span = telemetry::span(telemetry::Stage::Solve);
        let out = match cfg.mode {
            SolverMode::Strict => self.solve_strict(x, y, budget)?,
            SolverMode::Fast => self.solve_fast(x, y, warm, budget)?,
        };
        drop(span);
        stats::record(out.epochs, out.visits, out.epochs * n as u64);
        telemetry::counter_add(telemetry::Counter::SolverEpochs, out.epochs);
        telemetry::counter_add(telemetry::Counter::SolverVisits, out.visits);
        if out.path_bits != 0 {
            telemetry::counter_add(telemetry::Counter::SolverStrategy, out.path_bits);
        }

        // Flops are priced per path inside each solve (the Gram loop's visit
        // is O(n), the primal loop's O(d), and a Q build is charged only by
        // the solve that paid for it). Warm-start initialization is priced
        // by the CV driver once per dual vector, not here — a cached dual
        // vector may seed many solves (folds, ensemble members), and
        // charging per solve would double-count the same fold-in work.
        // Under shrinking, `visits` counts only coordinates actually swept,
        // so the savings show up in ResourceReport instead of being charged
        // as dense work.
        let active_set_bytes = match cfg.mode {
            SolverMode::Fast => n * std::mem::size_of::<usize>(),
            SolverMode::Strict => 0,
        };
        let gram_bytes = if out.path_bits & crate::solver::STRATEGY_GRAM_CODE != 0 {
            (n * n + n) * std::mem::size_of::<f64>()
        } else {
            0
        };
        let cost = TrainingCost {
            flops: out.flops,
            peak_bytes: ((n + d + n) * std::mem::size_of::<f64>() + active_set_bytes + gram_bytes)
                as u64,
        };
        Ok((
            Trained {
                model: LinearSvr {
                    weights: out.w,
                    bias: if cfg.bias { out.w_bias } else { 0.0 },
                },
                cost,
            },
            out.beta,
        ))
    }

    /// Infallible solve: identical arithmetic under an unlimited budget,
    /// which can never trip.
    fn solve(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
    ) -> (Trained<LinearSvr>, Vec<f64>) {
        match self.solve_impl(x, y, warm, &TargetBudget::unlimited()) {
            Ok(out) => out,
            Err(_) => unreachable!("unlimited budget cannot trip"),
        }
    }
}

/// Projected-gradient violation of one dual coordinate (liblinear's
/// stopping criterion), shared by both solver paths.
#[inline]
fn svr_violation(b: f64, gp: f64, gn: f64, c: f64) -> f64 {
    if b == 0.0 {
        if gp < 0.0 {
            -gp
        } else if gn > 0.0 {
            gn
        } else {
            0.0
        }
    } else if b >= c {
        gp.max(0.0)
    } else if b <= -c {
        (-gn).max(0.0)
    } else if b > 0.0 {
        gp.abs()
    } else {
        gn.abs()
    }
}

impl RegressorTrainer for SvrTrainer {
    type Model = LinearSvr;

    fn train_view(&self, x: &dyn DesignView, y: &[f64]) -> Trained<LinearSvr> {
        self.solve(x, y, None).0
    }

    fn train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
    ) -> (Trained<LinearSvr>, Option<Vec<f64>>) {
        let (trained, beta) = self.solve(x, y, warm);
        (trained, Some(beta))
    }

    /// Same solve as the infallible path (bit-identical on success), but
    /// validates the problem up front and rejects diverged solves — NaN/Inf
    /// weights after the epoch budget — as [`TrainError::NonConvergence`].
    fn try_train_view_warm(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
    ) -> Result<(Trained<LinearSvr>, Option<Vec<f64>>), TrainError> {
        fault::check_regression_problem(x, y)?;
        let (trained, beta) = self.solve(x, y, warm);
        if !fault::all_finite(trained.model.weights()) || !trained.model.bias().is_finite() {
            return Err(TrainError::NonConvergence {
                epochs: self.config.max_epochs as u64,
            });
        }
        Ok((trained, Some(beta)))
    }

    /// Budget-polling solve: same arithmetic as the other paths, with the
    /// budget checked once per coordinate-descent epoch.
    fn try_train_view_budgeted(
        &self,
        x: &dyn DesignView,
        y: &[f64],
        warm: Option<&[f64]>,
        budget: &TargetBudget,
    ) -> Result<(Trained<LinearSvr>, Option<Vec<f64>>), TrainError> {
        fault::check_regression_problem(x, y)?;
        let (trained, beta) = self.solve_impl(x, y, warm, budget)?;
        if !fault::all_finite(trained.model.weights()) || !trained.model.bias().is_finite() {
            return Err(TrainError::NonConvergence {
                epochs: self.config.max_epochs as u64,
            });
        }
        Ok((trained, Some(beta)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    fn matrix(rows: &[&[f64]]) -> DesignMatrix {
        let n_cols = rows[0].len();
        let values: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DesignMatrix::from_raw(rows.len(), n_cols, values)
    }

    #[test]
    fn fits_exact_linear_function() {
        // y = 2x − 1, noiseless, well within ε=0 reach.
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let y: Vec<f64> = (0..6).map(|i| 2.0 * i as f64 - 1.0).collect();
        let cfg = SvrConfig { epsilon: 0.01, c: 100.0, ..SvrConfig::default() };
        let t = SvrTrainer::new(cfg).train(&x, &y);
        for (i, target) in y.iter().enumerate() {
            let pred = t.model.predict(&[i as f64]);
            assert!(
                (pred - target).abs() < 0.05,
                "pred {pred} vs true {target} at x={i}"
            );
        }
        assert!((t.model.weights()[0] - 2.0).abs() < 0.05);
        assert!((t.model.bias() - (-1.0)).abs() < 0.1);
    }

    #[test]
    fn multifeature_plane() {
        // y = x0 − 3x1 + 0.5.
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64 * 0.3, (i % 5) as f64 * 0.4])
            .collect();
        let rows: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let x = matrix(&rows);
        let y: Vec<f64> = pts.iter().map(|p| p[0] - 3.0 * p[1] + 0.5).collect();
        let cfg = SvrConfig { epsilon: 0.01, c: 50.0, ..SvrConfig::default() };
        let t = SvrTrainer::new(cfg).train(&x, &y);
        for (p, &target) in pts.iter().zip(&y) {
            assert!((t.model.predict(p) - target).abs() < 0.1);
        }
    }

    #[test]
    fn epsilon_tube_tolerates_small_noise() {
        // Targets within a wide ε-tube: the solver must find a solution with
        // zero hinge loss (every prediction within ε of its target) and a
        // small weight norm — it must not chase the ±0.02 noise.
        let x = matrix(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = vec![1.0, 1.02, 0.98, 1.01];
        let cfg = SvrConfig { epsilon: 0.5, c: 10.0, ..SvrConfig::default() };
        let t = SvrTrainer::new(cfg).train(&x, &y);
        for (i, &target) in y.iter().enumerate() {
            let pred = t.model.predict(x.row(i));
            assert!(
                (pred - target).abs() <= cfg.epsilon + 0.02,
                "sample {i}: residual {} exceeds tube",
                (pred - target).abs()
            );
        }
        assert!(t.model.weights()[0].abs() < 0.5, "weights must stay small");
    }

    #[test]
    fn regularization_bounds_weights() {
        // One wild outlier: with small C its influence is capped.
        let x = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0], &[100.0]]);
        let y = vec![0.0, 1.0, 2.0, 3.0, -500.0];
        let small_c = SvrTrainer::new(SvrConfig { c: 0.001, ..SvrConfig::default() })
            .train(&x, &y);
        let large_c = SvrTrainer::new(SvrConfig { c: 100.0, ..SvrConfig::default() })
            .train(&x, &y);
        assert!(
            small_c.model.weights()[0].abs() < large_c.model.weights()[0].abs() + 1e-9,
            "small C must shrink weights"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let x = matrix(&[&[0.1, 0.2], &[0.5, -0.3], &[-0.7, 0.9], &[0.2, 0.2]]);
        let y = vec![1.0, -0.5, 0.3, 0.9];
        let a = SvrTrainer::default().train(&x, &y);
        let b = SvrTrainer::default().train(&x, &y);
        assert_eq!(a.model.weights(), b.model.weights());
        assert_eq!(a.model.bias(), b.model.bias());
    }

    #[test]
    fn zero_column_matrix_learns_bias_only() {
        let x = DesignMatrix::empty(5);
        let y = vec![2.0; 5];
        let t = SvrTrainer::new(SvrConfig { epsilon: 0.0, c: 10.0, ..SvrConfig::default() })
            .train(&x, &y);
        assert!((t.model.predict(&[]) - 2.0).abs() < 0.05);
    }

    #[test]
    fn empty_training_set_yields_zero_model() {
        let x = DesignMatrix::from_raw(0, 3, vec![]);
        let t = SvrTrainer::default().train(&x, &[]);
        assert_eq!(t.model.predict(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(t.cost.flops, 0);
    }

    #[test]
    fn cost_scales_with_problem_size() {
        let small = matrix(&[&[1.0], &[2.0]]);
        let big = matrix(&[&[1.0, 2.0, 3.0, 4.0], &[2.0, 1.0, 0.0, 1.0]]);
        // Use a single epoch so convergence speed doesn't confound the size
        // comparison.
        let cfg = SvrConfig { max_epochs: 1, ..SvrConfig::default() };
        let a = SvrTrainer::new(cfg).train(&small, &[0.0, 1.0]);
        let b = SvrTrainer::new(cfg).train(&big, &[0.0, 1.0]);
        assert!(b.cost.flops > a.cost.flops);
        assert!(b.cost.peak_bytes > a.cost.peak_bytes);
    }

    #[test]
    fn budgeted_path_matches_warm_path_and_trips_when_expired() {
        use crate::budget::RunBudget;
        use crate::traits::RegressorTrainer;
        let x = matrix(&[&[0.1, 0.2], &[0.5, -0.3], &[-0.7, 0.9], &[0.2, 0.2]]);
        let y = vec![1.0, -0.5, 0.3, 0.9];
        let t = SvrTrainer::default();
        let (a, da) = t
            .try_train_view_budgeted(&x, &y, None, &TargetBudget::unlimited())
            .unwrap();
        let (b, db) = t.try_train_view_warm(&x, &y, None).unwrap();
        assert_eq!(a.model.weights(), b.model.weights());
        assert_eq!(a.model.bias(), b.model.bias());
        assert_eq!(da, db);

        let expired = RunBudget::with_deadline(std::time::Duration::from_secs(0)).start_target();
        assert_eq!(
            t.try_train_view_budgeted(&x, &y, None, &expired).unwrap_err(),
            TrainError::DeadlineExceeded
        );
    }

    #[test]
    fn no_bias_config_fixes_bias_at_zero() {
        let x = matrix(&[&[1.0], &[2.0]]);
        let y = vec![5.0, 5.0];
        let t = SvrTrainer::new(SvrConfig { bias: false, ..SvrConfig::default() })
            .train(&x, &y);
        assert_eq!(t.model.bias(), 0.0);
    }
}
