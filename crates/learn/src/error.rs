//! Error models: the probability estimators behind normalized surprisal.
//!
//! FRaC estimates `P(x_i | p_ij(x_{−i}))` with *error models* — "in the
//! discrete case confusion matrices, and in the continuous case density
//! function estimators for … `x_i − p_ij(…)`" (paper §I-A-1). The continuous
//! error model "simply fit\[s\] a Gaussian to the error distribution, as …
//! there is insufficient data to accurately learn a more detailed model."
//!
//! Both models are fit on *cross-validated* (true, predicted) pairs so that
//! the error distribution reflects out-of-sample behaviour, and both expose
//! surprisal in nats: `−log P(true | predicted)`.

use frac_dataset::stats;

/// Gaussian error model for continuous predictions.
///
/// Fits `e = y_true − y_pred ~ N(μ, σ²)` and scores new observations by the
/// negative log-density of their residual. σ is floored to keep surprisal
/// finite when a feature is perfectly predictable on the training set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianErrorModel {
    mu: f64,
    sigma: f64,
}

impl GaussianErrorModel {
    /// Minimum admissible σ; prevents infinite surprisal from degenerate
    /// (zero-residual) fits on tiny training sets.
    pub const MIN_SIGMA: f64 = 1e-6;

    /// Fit from (true, predicted) pairs. Pairs with a non-finite value on
    /// either side are ignored. With no usable pairs, falls back to a
    /// standard normal.
    pub fn fit(pairs: &[(f64, f64)]) -> Self {
        let residuals: Vec<f64> = pairs
            .iter()
            .filter(|(t, p)| t.is_finite() && p.is_finite())
            .map(|(t, p)| t - p)
            .collect();
        if residuals.is_empty() {
            return GaussianErrorModel { mu: 0.0, sigma: 1.0 };
        }
        let mu = stats::mean(&residuals).unwrap_or(0.0);
        let sigma = stats::std_dev(&residuals).unwrap_or(0.0);
        GaussianErrorModel { mu, sigma: sigma.max(Self::MIN_SIGMA) }
    }

    /// Construct directly from parameters (σ floored).
    pub fn from_params(mu: f64, sigma: f64) -> Self {
        GaussianErrorModel { mu, sigma: sigma.max(Self::MIN_SIGMA) }
    }

    /// Mean residual.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Residual standard deviation (post-floor).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Log-density of observing `truth` given prediction `pred`.
    pub fn log_likelihood(&self, truth: f64, pred: f64) -> f64 {
        stats::log_gaussian_pdf(truth - pred, self.mu, self.sigma)
    }

    /// Surprisal `−log P(truth | pred)` in nats. (For continuous features
    /// this is a negative log *density*, so it may be negative — exactly as
    /// the differential-entropy term it is compared against.)
    pub fn surprisal(&self, truth: f64, pred: f64) -> f64 {
        -self.log_likelihood(truth, pred)
    }

    /// Resident bytes (for the resource meter).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.floats("gauss_err", &[self.mu, self.sigma]);
    }

    /// Parse a model previously produced by
    /// [`GaussianErrorModel::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        let v: Vec<f64> = r.parse_all("gauss_err")?;
        if v.len() != 2 {
            return Err("gauss_err expects mu sigma".into());
        }
        Ok(GaussianErrorModel::from_params(v[0], v[1]))
    }
}

/// Confusion-matrix error model for categorical predictions.
///
/// `counts[pred][true]` accumulates cross-validated outcomes; conditional
/// probabilities are Laplace-smoothed with pseudo-count `alpha` so unseen
/// (pred, true) combinations keep finite surprisal.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionErrorModel {
    arity: u32,
    counts: Vec<u64>, // row-major [pred][true]
    alpha: f64,
}

impl ConfusionErrorModel {
    /// Fit from (true, predicted) code pairs with the default smoothing
    /// `alpha = 1` (add-one).
    pub fn fit(pairs: &[(u32, u32)], arity: u32) -> Self {
        Self::fit_with_alpha(pairs, arity, 1.0)
    }

    /// Fit with explicit Laplace pseudo-count `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `alpha <= 0` or any code is out of range.
    pub fn fit_with_alpha(pairs: &[(u32, u32)], arity: u32, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive for finite surprisal");
        let k = arity as usize;
        let mut counts = vec![0u64; k * k];
        for &(truth, pred) in pairs {
            assert!(truth < arity && pred < arity, "code out of range");
            counts[pred as usize * k + truth as usize] += 1;
        }
        ConfusionErrorModel { arity, counts, alpha }
    }

    /// Class arity.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Raw count of (pred, true) outcomes.
    pub fn count(&self, pred: u32, truth: u32) -> u64 {
        self.counts[pred as usize * self.arity as usize + truth as usize]
    }

    /// Smoothed conditional probability `P(truth | pred)`.
    pub fn probability(&self, truth: u32, pred: u32) -> f64 {
        let k = self.arity as usize;
        let row = &self.counts[pred as usize * k..(pred as usize + 1) * k];
        let row_total: u64 = row.iter().sum();
        (row[truth as usize] as f64 + self.alpha)
            / (row_total as f64 + self.alpha * k as f64)
    }

    /// Surprisal `−ln P(truth | pred)` in nats — always positive and finite.
    pub fn surprisal(&self, truth: u32, pred: u32) -> f64 {
        -self.probability(truth, pred).ln()
    }

    /// Resident bytes (for the resource meter).
    pub fn approx_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.line("conf_err", [self.arity.to_string(), format!("{:?}", self.alpha)]);
        w.line("conf_counts", self.counts.iter());
    }

    /// Parse a model previously produced by
    /// [`ConfusionErrorModel::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        let head = r.expect("conf_err")?;
        if head.len() != 2 {
            return Err("conf_err expects arity alpha".into());
        }
        let arity: u32 = head[0].parse().map_err(|_| "bad arity".to_string())?;
        let alpha: f64 = head[1].parse().map_err(|_| "bad alpha".to_string())?;
        if alpha <= 0.0 {
            return Err("alpha must be positive".into());
        }
        let counts: Vec<u64> = r.parse_all("conf_counts")?;
        if counts.len() != (arity as usize) * (arity as usize) {
            return Err(format!(
                "conf_counts expects {} entries, found {}",
                (arity as usize).pow(2),
                counts.len()
            )
            .into());
        }
        Ok(ConfusionErrorModel { arity, counts, alpha })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_fit_recovers_moments() {
        let pairs: Vec<(f64, f64)> = (0..110)
            .map(|i| {
                // Residues 0..=10 each appear exactly 10 times → mean 0.5.
                let e = ((i % 11) as f64 - 5.0) * 0.1 + 0.5;
                (e, 0.0)
            })
            .collect();
        let m = GaussianErrorModel::fit(&pairs);
        assert!((m.mu() - 0.5).abs() < 1e-12);
        assert!(m.sigma() > 0.0);
    }

    #[test]
    fn gaussian_surprisal_grows_with_residual() {
        let m = GaussianErrorModel::from_params(0.0, 1.0);
        let s0 = m.surprisal(0.0, 0.0);
        let s2 = m.surprisal(2.0, 0.0);
        let s5 = m.surprisal(5.0, 0.0);
        assert!(s0 < s2 && s2 < s5);
    }

    #[test]
    fn gaussian_degenerate_fit_is_floored() {
        // All residuals identical → σ would be 0 without the floor.
        let pairs = vec![(1.0, 1.0); 10];
        let m = GaussianErrorModel::fit(&pairs);
        assert_eq!(m.sigma(), GaussianErrorModel::MIN_SIGMA);
        assert!(m.surprisal(1.0, 1.0).is_finite());
        assert!(m.surprisal(2.0, 1.0).is_finite());
    }

    #[test]
    fn gaussian_ignores_nan_pairs() {
        let pairs = vec![(1.0, 0.0), (f64::NAN, 0.0), (3.0, 0.0), (2.0, f64::NAN)];
        let m = GaussianErrorModel::fit(&pairs);
        assert!((m.mu() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_empty_fit_is_standard_normal() {
        let m = GaussianErrorModel::fit(&[]);
        assert_eq!(m.mu(), 0.0);
        assert_eq!(m.sigma(), 1.0);
    }

    #[test]
    fn confusion_probabilities_sum_to_one_per_row() {
        let pairs = vec![(0, 0), (0, 0), (1, 0), (2, 1), (1, 1), (2, 2)];
        let m = ConfusionErrorModel::fit(&pairs, 3);
        for pred in 0..3 {
            let total: f64 = (0..3).map(|t| m.probability(t, pred)).sum();
            assert!((total - 1.0).abs() < 1e-12, "row {pred}");
        }
    }

    #[test]
    fn confusion_correct_prediction_less_surprising() {
        // Predictor is usually right: P(true=c | pred=c) high.
        let mut pairs = Vec::new();
        for c in 0..3u32 {
            for _ in 0..20 {
                pairs.push((c, c));
            }
            pairs.push(((c + 1) % 3, c));
        }
        let m = ConfusionErrorModel::fit(&pairs, 3);
        assert!(m.surprisal(0, 0) < m.surprisal(2, 0));
    }

    #[test]
    fn confusion_unseen_combination_is_finite() {
        let m = ConfusionErrorModel::fit(&[(0, 0)], 4);
        let s = m.surprisal(3, 2);
        assert!(s.is_finite());
        // With an all-zero row, smoothing yields the uniform distribution.
        assert!((s - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn confusion_uninformative_predictor_matches_prior_shape() {
        // A predictor that always answers 0: its row is the full class
        // distribution, so surprisal(t | 0) ≈ −ln pr(t).
        let pairs: Vec<(u32, u32)> = (0..90)
            .map(|i| ((i % 3) as u32, 0u32))
            .collect();
        let m = ConfusionErrorModel::fit(&pairs, 3);
        for t in 0..3 {
            assert!((m.probability(t, 0) - 1.0 / 3.0).abs() < 0.01);
        }
    }

    #[test]
    fn confusion_counts_are_exact() {
        let m = ConfusionErrorModel::fit(&[(1, 0), (1, 0), (2, 0)], 3);
        assert_eq!(m.count(0, 1), 2);
        assert_eq!(m.count(0, 2), 1);
        assert_eq!(m.count(1, 1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_rejects_bad_codes() {
        ConfusionErrorModel::fit(&[(5, 0)], 3);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn confusion_rejects_zero_alpha() {
        ConfusionErrorModel::fit_with_alpha(&[], 2, 0.0);
    }
}
