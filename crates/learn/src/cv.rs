//! Cross-validated predictions for error-model fitting.
//!
//! "In order to train error models, k-fold cross validation is used, and
//! predictions on the holdout fold, paired with the true value, are used to
//! construct error models. Then, the entire data set is used to train
//! predictors." (paper §I-A-1)
//!
//! These helpers run the k-fold half: they return, for every training row,
//! the prediction made by the fold model that did *not* see it, plus the
//! accumulated [`TrainingCost`] of all fold models.

use crate::budget::TargetBudget;
use crate::fault::TrainError;
use crate::telemetry;
use crate::traits::{ClassifierTrainer, Classifier, Regressor, RegressorTrainer, TrainingCost};
use frac_dataset::split::{k_fold, Fold};
use frac_dataset::{DesignView, RowSubset};

/// Out-of-fold predictions for a regression problem.
///
/// Returns `(predictions, cost)` where `predictions[r]` is the held-out
/// prediction for row `r`. `cost.flops` sums over folds; `cost.peak_bytes`
/// is the largest single-fold working set (folds run sequentially, so their
/// transient memory is not concurrently live). Each fold trains on a
/// [`RowSubset`] view of `x` — the only per-fold memory beyond the solver's
/// own state is the row-index vector and a one-row prediction buffer, not a
/// copy of the training slice.
pub fn cv_regression<T: RegressorTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[f64],
    k: usize,
    seed: u64,
) -> (Vec<f64>, TrainingCost) {
    let folds = k_fold(x.n_rows(), k, seed);
    let (preds, cost, _) = cv_regression_folds(trainer, x, y, &folds, None);
    (preds, cost)
}

/// [`cv_regression`] over a caller-supplied fold plan, with warm-started
/// duals threaded fold to fold.
///
/// The fold plan is computed once per FRaC run and shared across targets
/// (the per-target plan is its restriction to present rows), so the k-fold
/// shuffle is no longer re-derived per target. Each fold's solve seeds from
/// `dual_by_row` — the latest dual seen for each row of `x`, initialized
/// from `init_duals` (e.g. a previous replicate's solution) or zeros — and
/// scatters its solution back, so fold `j+1` starts from the duals of the
/// shared rows it has in common with folds `1..=j`. The returned vector is
/// the final `dual_by_row`, ready to seed the full-data fit; it is `None`
/// when the trainer has no dual formulation (trees, baselines).
pub fn cv_regression_folds<T: RegressorTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[f64],
    folds: &[Fold],
    init_duals: Option<&[f64]>,
) -> (Vec<f64>, TrainingCost, Option<Vec<f64>>) {
    assert_eq!(x.n_rows(), y.len(), "target length must match rows");
    let n = x.n_rows();
    let mut preds = vec![f64::NAN; n];
    let mut row_buf = vec![0.0f64; x.n_cols()];
    let mut dual_by_row: Vec<f64> = match init_duals {
        Some(d) => {
            assert_eq!(d.len(), n, "init dual length must match rows");
            d.to_vec()
        }
        None => vec![0.0; n],
    };
    let mut have_duals = true;
    let mut flops = 0u64;
    let mut peak = 0u64;
    let mut warm_buf: Vec<f64> = Vec::new();
    for (fold_idx, fold) in folds.iter().enumerate() {
        let _fold_span = telemetry::span(telemetry::Stage::CvFold);
        let x_train = RowSubset::new(x, &fold.train);
        let y_train: Vec<f64> = fold.train.iter().map(|&r| y[r]).collect();
        warm_buf.clear();
        warm_buf.extend(fold.train.iter().map(|&r| dual_by_row[r]));
        let warm = if have_duals { Some(warm_buf.as_slice()) } else { None };
        // Declare this fold's rows to the per-scope pack cache (slot 0 is
        // the final fit) — inert unless a fit scope is active.
        crate::solver::pack_cache::set_rows(1 + fold_idx as u64, &fold.train);
        let (trained, duals) = trainer.train_view_warm(&x_train, &y_train, warm);
        crate::solver::pack_cache::clear_rows();
        match duals {
            Some(d) => {
                for (&r, &b) in fold.train.iter().zip(&d) {
                    dual_by_row[r] = b;
                }
            }
            None => have_duals = false,
        }
        flops += trained.cost.flops;
        peak = peak.max(
            trained.cost.peak_bytes
                + fold_overhead_bytes(&x_train, &row_buf)
                + 2 * std::mem::size_of_val(dual_by_row.as_slice()) as u64,
        );
        for &r in &fold.holdout {
            x.copy_row_into(r, &mut row_buf);
            preds[r] = trained.model.predict(&row_buf);
        }
    }
    if have_duals {
        flops += warm_init_flops(init_duals.map_or(0, count_nonzero), x.n_cols());
    }
    let out_duals = have_duals.then_some(dual_by_row);
    (preds, TrainingCost { flops, peak_bytes: peak }, out_duals)
}

/// Budget-aware [`cv_regression_folds`]: each fold trains through
/// [`RegressorTrainer::try_train_view_budgeted`], so a tripped budget
/// surfaces as [`TrainError::DeadlineExceeded`] between (or inside) fold
/// solves instead of running the remaining folds. Unlike the infallible
/// path, a fold that fails validation or diverges also aborts the CV — the
/// caller's fallback ladder handles it. With an unlimited budget and clean
/// folds the predictions, cost, and duals are bit-identical to
/// [`cv_regression_folds`].
#[allow(clippy::type_complexity)]
pub fn cv_regression_folds_budgeted<T: RegressorTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[f64],
    folds: &[Fold],
    init_duals: Option<&[f64]>,
    budget: &TargetBudget,
) -> Result<(Vec<f64>, TrainingCost, Option<Vec<f64>>), TrainError> {
    assert_eq!(x.n_rows(), y.len(), "target length must match rows");
    let n = x.n_rows();
    let mut preds = vec![f64::NAN; n];
    let mut row_buf = vec![0.0f64; x.n_cols()];
    let mut dual_by_row: Vec<f64> = match init_duals {
        Some(d) => {
            assert_eq!(d.len(), n, "init dual length must match rows");
            d.to_vec()
        }
        None => vec![0.0; n],
    };
    let mut have_duals = true;
    let mut flops = 0u64;
    let mut peak = 0u64;
    let mut warm_buf: Vec<f64> = Vec::new();
    for (fold_idx, fold) in folds.iter().enumerate() {
        let _fold_span = telemetry::span(telemetry::Stage::CvFold);
        let x_train = RowSubset::new(x, &fold.train);
        let y_train: Vec<f64> = fold.train.iter().map(|&r| y[r]).collect();
        warm_buf.clear();
        warm_buf.extend(fold.train.iter().map(|&r| dual_by_row[r]));
        let warm = if have_duals { Some(warm_buf.as_slice()) } else { None };
        crate::solver::pack_cache::set_rows(1 + fold_idx as u64, &fold.train);
        let trained_duals = trainer.try_train_view_budgeted(&x_train, &y_train, warm, budget);
        crate::solver::pack_cache::clear_rows();
        let (trained, duals) = trained_duals?;
        match duals {
            Some(d) => {
                for (&r, &b) in fold.train.iter().zip(&d) {
                    dual_by_row[r] = b;
                }
            }
            None => have_duals = false,
        }
        flops += trained.cost.flops;
        peak = peak.max(
            trained.cost.peak_bytes
                + fold_overhead_bytes(&x_train, &row_buf)
                + 2 * std::mem::size_of_val(dual_by_row.as_slice()) as u64,
        );
        for &r in &fold.holdout {
            x.copy_row_into(r, &mut row_buf);
            preds[r] = trained.model.predict(&row_buf);
        }
    }
    if have_duals {
        flops += warm_init_flops(init_duals.map_or(0, count_nonzero), x.n_cols());
    }
    let out_duals = have_duals.then_some(dual_by_row);
    Ok((preds, TrainingCost { flops, peak_bytes: peak }, out_duals))
}

/// Out-of-fold predictions for a classification problem; see
/// [`cv_regression`] for conventions.
pub fn cv_classification<T: ClassifierTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[u32],
    arity: u32,
    k: usize,
    seed: u64,
) -> (Vec<u32>, TrainingCost) {
    let folds = k_fold(x.n_rows(), k, seed);
    let (preds, cost, _) = cv_classification_folds(trainer, x, y, arity, &folds, None);
    (preds, cost)
}

/// [`cv_classification`] over a caller-supplied fold plan with warm-started
/// duals; see [`cv_regression_folds`] for the threading contract. Duals are
/// per one-vs-rest class: `duals[k][r]` is row `r`'s latest dual for class
/// `k`'s binary problem.
pub fn cv_classification_folds<T: ClassifierTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[u32],
    arity: u32,
    folds: &[Fold],
    init_duals: Option<&[Vec<f64>]>,
) -> (Vec<u32>, TrainingCost, Option<Vec<Vec<f64>>>) {
    assert_eq!(x.n_rows(), y.len(), "target length must match rows");
    let n = x.n_rows();
    let k_classes = arity as usize;
    let mut preds = vec![0u32; n];
    let mut row_buf = vec![0.0f64; x.n_cols()];
    let mut dual_by_row: Vec<Vec<f64>> = match init_duals {
        Some(d) => {
            assert_eq!(d.len(), k_classes, "init duals must have one vector per class");
            d.to_vec()
        }
        None => vec![vec![0.0; n]; k_classes],
    };
    let mut have_duals = true;
    let mut flops = 0u64;
    let mut peak = 0u64;
    for (fold_idx, fold) in folds.iter().enumerate() {
        let _fold_span = telemetry::span(telemetry::Stage::CvFold);
        let x_train = RowSubset::new(x, &fold.train);
        let y_train: Vec<u32> = fold.train.iter().map(|&r| y[r]).collect();
        let warm_vecs: Vec<Vec<f64>> = if have_duals {
            dual_by_row
                .iter()
                .map(|class_duals| fold.train.iter().map(|&r| class_duals[r]).collect())
                .collect()
        } else {
            Vec::new()
        };
        let warm = if have_duals { Some(warm_vecs.as_slice()) } else { None };
        crate::solver::pack_cache::set_rows(1 + fold_idx as u64, &fold.train);
        let (trained, duals) = trainer.train_view_warm(&x_train, &y_train, arity, warm);
        crate::solver::pack_cache::clear_rows();
        match duals {
            Some(d) => {
                for (class_duals, class_out) in dual_by_row.iter_mut().zip(&d) {
                    for (&r, &a) in fold.train.iter().zip(class_out) {
                        class_duals[r] = a;
                    }
                }
            }
            None => have_duals = false,
        }
        flops += trained.cost.flops;
        peak = peak.max(
            trained.cost.peak_bytes
                + fold_overhead_bytes(&x_train, &row_buf)
                + 2 * (k_classes * n * std::mem::size_of::<f64>()) as u64,
        );
        for &r in &fold.holdout {
            x.copy_row_into(r, &mut row_buf);
            preds[r] = trained.model.predict(&row_buf);
        }
    }
    if have_duals {
        let nz = init_duals.map_or(0, |d| d.iter().map(|v| count_nonzero(v)).sum());
        flops += warm_init_flops(nz, x.n_cols());
    }
    let out_duals = have_duals.then_some(dual_by_row);
    (preds, TrainingCost { flops, peak_bytes: peak }, out_duals)
}

/// Budget-aware [`cv_classification_folds`]; see
/// [`cv_regression_folds_budgeted`] for the contract.
#[allow(clippy::type_complexity)]
pub fn cv_classification_folds_budgeted<T: ClassifierTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[u32],
    arity: u32,
    folds: &[Fold],
    init_duals: Option<&[Vec<f64>]>,
    budget: &TargetBudget,
) -> Result<(Vec<u32>, TrainingCost, Option<Vec<Vec<f64>>>), TrainError> {
    assert_eq!(x.n_rows(), y.len(), "target length must match rows");
    let n = x.n_rows();
    let k_classes = arity as usize;
    let mut preds = vec![0u32; n];
    let mut row_buf = vec![0.0f64; x.n_cols()];
    let mut dual_by_row: Vec<Vec<f64>> = match init_duals {
        Some(d) => {
            assert_eq!(d.len(), k_classes, "init duals must have one vector per class");
            d.to_vec()
        }
        None => vec![vec![0.0; n]; k_classes],
    };
    let mut have_duals = true;
    let mut flops = 0u64;
    let mut peak = 0u64;
    for (fold_idx, fold) in folds.iter().enumerate() {
        let _fold_span = telemetry::span(telemetry::Stage::CvFold);
        let x_train = RowSubset::new(x, &fold.train);
        let y_train: Vec<u32> = fold.train.iter().map(|&r| y[r]).collect();
        let warm_vecs: Vec<Vec<f64>> = if have_duals {
            dual_by_row
                .iter()
                .map(|class_duals| fold.train.iter().map(|&r| class_duals[r]).collect())
                .collect()
        } else {
            Vec::new()
        };
        let warm = if have_duals { Some(warm_vecs.as_slice()) } else { None };
        crate::solver::pack_cache::set_rows(1 + fold_idx as u64, &fold.train);
        let trained_duals = trainer.try_train_view_budgeted(&x_train, &y_train, arity, warm, budget);
        crate::solver::pack_cache::clear_rows();
        let (trained, duals) = trained_duals?;
        match duals {
            Some(d) => {
                for (class_duals, class_out) in dual_by_row.iter_mut().zip(&d) {
                    for (&r, &a) in fold.train.iter().zip(class_out) {
                        class_duals[r] = a;
                    }
                }
            }
            None => have_duals = false,
        }
        flops += trained.cost.flops;
        peak = peak.max(
            trained.cost.peak_bytes
                + fold_overhead_bytes(&x_train, &row_buf)
                + 2 * (k_classes * n * std::mem::size_of::<f64>()) as u64,
        );
        for &r in &fold.holdout {
            x.copy_row_into(r, &mut row_buf);
            preds[r] = trained.model.predict(&row_buf);
        }
    }
    if have_duals {
        let nz = init_duals.map_or(0, |d| d.iter().map(|v| count_nonzero(v)).sum());
        flops += warm_init_flops(nz, x.n_cols());
    }
    let out_duals = have_duals.then_some(dual_by_row);
    Ok((preds, TrainingCost { flops, peak_bytes: peak }, out_duals))
}

/// One-time price of folding a caller-supplied warm dual vector into the
/// solver state: ~2 flops per augmented column per nonzero row. Charged
/// here — once per dual vector handed in — not inside each solve, because
/// the same cached duals (e.g. one `fit_cached` entry shared across
/// ensemble members) seed every fold and the final full-data fit, and a
/// per-solve charge would count that single fold-in many times over.
fn warm_init_flops(nonzero_rows: u64, n_cols: usize) -> u64 {
    nonzero_rows * ((n_cols as u64) + 1) * 2
}

fn count_nonzero(duals: &[f64]) -> u64 {
    duals.iter().filter(|&&b| b != 0.0).count() as u64
}

/// Per-fold working-set bytes beyond the solver's own state: the fold's
/// row-index view plus the holdout prediction buffer. Before the shared
/// encoded pool this was a full copy of the fold's training slice
/// (`rows × cols × 8` bytes); the view reduces it to `rows × 8 + cols × 8`.
fn fold_overhead_bytes(view: &dyn DesignView, row_buf: &[f64]) -> u64 {
    (view.view_overhead_bytes() + std::mem::size_of_val(row_buf)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{ConstantRegressorTrainer, MajorityClassifierTrainer};
    use crate::svr::{SvrConfig, SvrTrainer};
    use crate::tree::ClassificationTreeTrainer;
    use frac_dataset::DesignMatrix;

    #[test]
    fn every_row_receives_a_prediction() {
        let x = DesignMatrix::from_raw(10, 1, (0..10).map(|i| i as f64).collect());
        let y: Vec<f64> = (0..10).map(|i| i as f64 * 2.0).collect();
        let (preds, _) = cv_regression(&ConstantRegressorTrainer, &x, &y, 5, 1);
        assert!(preds.iter().all(|p| !p.is_nan()));
    }

    #[test]
    fn holdout_predictions_exclude_own_row() {
        // With a constant-mean model and distinct targets, a row's holdout
        // prediction can never equal its own value — proof the row was
        // outside its fold's training set.
        let x = DesignMatrix::from_raw(6, 1, vec![0.0; 6]);
        let y = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        let (preds, _) = cv_regression(&ConstantRegressorTrainer, &x, &y, 3, 7);
        for (r, (&p, &t)) in preds.iter().zip(&y).enumerate() {
            assert!((p - t).abs() > 1e-9, "row {r} leaked into its own fold");
        }
    }

    #[test]
    fn learnable_signal_yields_accurate_oof_predictions() {
        let n = 30;
        let x = DesignMatrix::from_raw(n, 1, (0..n).map(|i| i as f64 * 0.1).collect());
        let y: Vec<f64> = (0..n).map(|i| 3.0 * (i as f64 * 0.1) + 1.0).collect();
        let cfg = SvrConfig { epsilon: 0.01, c: 100.0, ..SvrConfig::default() };
        let (preds, cost) = cv_regression(&SvrTrainer::new(cfg), &x, &y, 5, 3);
        let max_err = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.5, "max_err = {max_err}");
        assert!(cost.flops > 0);
        assert!(cost.peak_bytes > 0);
    }

    #[test]
    fn classification_cv_covers_all_rows() {
        let x = DesignMatrix::from_raw(12, 1, (0..12).map(|i| (i % 2) as f64).collect());
        let y: Vec<u32> = (0..12).map(|i| (i % 2) as u32).collect();
        let (preds, _) =
            cv_classification(&ClassificationTreeTrainer::default(), &x, &y, 2, 4, 5);
        assert_eq!(preds.len(), 12);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = DesignMatrix::from_raw(8, 1, (0..8).map(|i| i as f64).collect());
        let y: Vec<u32> = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let a = cv_classification(&MajorityClassifierTrainer, &x, &y, 2, 4, 9).0;
        let b = cv_classification(&MajorityClassifierTrainer, &x, &y, 2, 4, 9).0;
        assert_eq!(a, b);
        let c = cv_classification(&MajorityClassifierTrainer, &x, &y, 2, 4, 10).0;
        // Different seed shuffles folds differently (may coincide rarely, but
        // not for this configuration).
        assert_ne!(a, c);
    }

    #[test]
    fn fold_peak_charges_view_overhead_not_a_copy() {
        let (n, d) = (40usize, 25usize);
        let x = DesignMatrix::from_raw(n, d, vec![1.0; n * d]);
        let y = vec![0.0f64; n];
        let k = 5;
        let (_, cost) = cv_regression(&ConstantRegressorTrainer, &x, &y, k, 3);
        // Largest fold trains on n - n/k rows. The old model charged a full
        // copy of that slice; the view model charges only row indices plus
        // the one-row prediction buffer (+ the trainer's own peak).
        let fold_rows = n - n / k;
        let copy_bytes = (fold_rows * d * 8) as u64;
        let view_bytes = (fold_rows * std::mem::size_of::<usize>() + d * 8) as u64;
        assert!(cost.peak_bytes < copy_bytes, "peak {} still charges a copy", cost.peak_bytes);
        assert!(cost.peak_bytes >= view_bytes, "peak {} omits view overhead", cost.peak_bytes);
    }

    #[test]
    fn budgeted_cv_matches_plain_and_trips_when_expired() {
        use crate::budget::RunBudget;
        let n = 20;
        let x = DesignMatrix::from_raw(n, 1, (0..n).map(|i| i as f64 * 0.1).collect());
        let y: Vec<f64> = (0..n).map(|i| 2.0 * (i as f64 * 0.1)).collect();
        let folds = k_fold(n, 4, 11);
        let t = SvrTrainer::default();
        let (a, ca, da) = cv_regression_folds(&t, &x, &y, &folds, None);
        let (b, cb, db) =
            cv_regression_folds_budgeted(&t, &x, &y, &folds, None, &TargetBudget::unlimited())
                .unwrap();
        let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(ca, cb);
        assert_eq!(da, db);

        let expired = RunBudget::with_deadline(std::time::Duration::from_secs(0)).start_target();
        assert!(matches!(
            cv_regression_folds_budgeted(&t, &x, &y, &folds, None, &expired),
            Err(TrainError::DeadlineExceeded)
        ));
        let yc: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        assert!(matches!(
            cv_classification_folds_budgeted(
                &ClassificationTreeTrainer::default(),
                &x,
                &yc,
                2,
                &folds,
                None,
                &expired
            ),
            Err(TrainError::DeadlineExceeded)
        ));
    }

    #[test]
    fn warm_init_flops_charged_once_per_dual_vector() {
        // Regression test: a warm dual vector handed to the CV driver used
        // to be re-charged inside every fold solve (and again by the final
        // full-data fit), so `fit_cached` reusing one cache entry across
        // ensemble members inflated `TrainingCost.flops`. The fold-in must
        // now be priced exactly once per supplied vector.
        let n = 12;
        let x = DesignMatrix::from_raw(n, 1, (0..n).map(|i| i as f64 * 0.1).collect());
        let y: Vec<f64> = (0..n).map(|i| 2.0 * (i as f64 * 0.1)).collect();
        let folds = k_fold(n, 3, 5);
        // One epoch, and epoch 1 never shrinks (the threshold starts at
        // infinity), so per-fold visits are identical with or without warm
        // duals — any flops difference is the init charge alone.
        let t = SvrTrainer::new(SvrConfig { max_epochs: 1, ..SvrConfig::default() });
        let (_, cold, _) = cv_regression_folds(&t, &x, &y, &folds, None);
        let init: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.5 } else { 0.0 }).collect();
        let (_, warm, _) = cv_regression_folds(&t, &x, &y, &folds, Some(&init));
        let nonzero = init.iter().filter(|&&b| b != 0.0).count() as u64;
        let one_charge = nonzero * ((x.n_cols() as u64) + 1) * 2;
        assert_eq!(
            warm.flops,
            cold.flops + one_charge,
            "warm-init fold-in must be charged exactly once, not per fold"
        );
    }

    #[test]
    fn single_row_degenerate_cv_still_returns() {
        let x = DesignMatrix::from_raw(1, 1, vec![0.5]);
        let (preds, _) = cv_regression(&ConstantRegressorTrainer, &x, &[2.0], 5, 0);
        assert_eq!(preds.len(), 1);
        assert!(!preds[0].is_nan());
    }
}
