//! Cross-validated predictions for error-model fitting.
//!
//! "In order to train error models, k-fold cross validation is used, and
//! predictions on the holdout fold, paired with the true value, are used to
//! construct error models. Then, the entire data set is used to train
//! predictors." (paper §I-A-1)
//!
//! These helpers run the k-fold half: they return, for every training row,
//! the prediction made by the fold model that did *not* see it, plus the
//! accumulated [`TrainingCost`] of all fold models.

use crate::traits::{ClassifierTrainer, Classifier, Regressor, RegressorTrainer, TrainingCost};
use frac_dataset::split::k_fold;
use frac_dataset::{DesignView, RowSubset};

/// Out-of-fold predictions for a regression problem.
///
/// Returns `(predictions, cost)` where `predictions[r]` is the held-out
/// prediction for row `r`. `cost.flops` sums over folds; `cost.peak_bytes`
/// is the largest single-fold working set (folds run sequentially, so their
/// transient memory is not concurrently live). Each fold trains on a
/// [`RowSubset`] view of `x` — the only per-fold memory beyond the solver's
/// own state is the row-index vector and a one-row prediction buffer, not a
/// copy of the training slice.
pub fn cv_regression<T: RegressorTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[f64],
    k: usize,
    seed: u64,
) -> (Vec<f64>, TrainingCost) {
    assert_eq!(x.n_rows(), y.len(), "target length must match rows");
    let n = x.n_rows();
    let mut preds = vec![f64::NAN; n];
    let mut row_buf = vec![0.0f64; x.n_cols()];
    let mut flops = 0u64;
    let mut peak = 0u64;
    for fold in k_fold(n, k, seed) {
        let x_train = RowSubset::new(x, &fold.train);
        let y_train: Vec<f64> = fold.train.iter().map(|&r| y[r]).collect();
        let trained = trainer.train_view(&x_train, &y_train);
        flops += trained.cost.flops;
        peak = peak.max(trained.cost.peak_bytes + fold_overhead_bytes(&x_train, &row_buf));
        for &r in &fold.holdout {
            x.copy_row_into(r, &mut row_buf);
            preds[r] = trained.model.predict(&row_buf);
        }
    }
    (preds, TrainingCost { flops, peak_bytes: peak })
}

/// Out-of-fold predictions for a classification problem; see
/// [`cv_regression`] for conventions.
pub fn cv_classification<T: ClassifierTrainer>(
    trainer: &T,
    x: &dyn DesignView,
    y: &[u32],
    arity: u32,
    k: usize,
    seed: u64,
) -> (Vec<u32>, TrainingCost) {
    assert_eq!(x.n_rows(), y.len(), "target length must match rows");
    let n = x.n_rows();
    let mut preds = vec![0u32; n];
    let mut row_buf = vec![0.0f64; x.n_cols()];
    let mut flops = 0u64;
    let mut peak = 0u64;
    for fold in k_fold(n, k, seed) {
        let x_train = RowSubset::new(x, &fold.train);
        let y_train: Vec<u32> = fold.train.iter().map(|&r| y[r]).collect();
        let trained = trainer.train_view(&x_train, &y_train, arity);
        flops += trained.cost.flops;
        peak = peak.max(trained.cost.peak_bytes + fold_overhead_bytes(&x_train, &row_buf));
        for &r in &fold.holdout {
            x.copy_row_into(r, &mut row_buf);
            preds[r] = trained.model.predict(&row_buf);
        }
    }
    (preds, TrainingCost { flops, peak_bytes: peak })
}

/// Per-fold working-set bytes beyond the solver's own state: the fold's
/// row-index view plus the holdout prediction buffer. Before the shared
/// encoded pool this was a full copy of the fold's training slice
/// (`rows × cols × 8` bytes); the view reduces it to `rows × 8 + cols × 8`.
fn fold_overhead_bytes(view: &dyn DesignView, row_buf: &[f64]) -> u64 {
    (view.view_overhead_bytes() + std::mem::size_of_val(row_buf)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{ConstantRegressorTrainer, MajorityClassifierTrainer};
    use crate::svr::{SvrConfig, SvrTrainer};
    use crate::tree::ClassificationTreeTrainer;
    use frac_dataset::DesignMatrix;

    #[test]
    fn every_row_receives_a_prediction() {
        let x = DesignMatrix::from_raw(10, 1, (0..10).map(|i| i as f64).collect());
        let y: Vec<f64> = (0..10).map(|i| i as f64 * 2.0).collect();
        let (preds, _) = cv_regression(&ConstantRegressorTrainer, &x, &y, 5, 1);
        assert!(preds.iter().all(|p| !p.is_nan()));
    }

    #[test]
    fn holdout_predictions_exclude_own_row() {
        // With a constant-mean model and distinct targets, a row's holdout
        // prediction can never equal its own value — proof the row was
        // outside its fold's training set.
        let x = DesignMatrix::from_raw(6, 1, vec![0.0; 6]);
        let y = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        let (preds, _) = cv_regression(&ConstantRegressorTrainer, &x, &y, 3, 7);
        for (r, (&p, &t)) in preds.iter().zip(&y).enumerate() {
            assert!((p - t).abs() > 1e-9, "row {r} leaked into its own fold");
        }
    }

    #[test]
    fn learnable_signal_yields_accurate_oof_predictions() {
        let n = 30;
        let x = DesignMatrix::from_raw(n, 1, (0..n).map(|i| i as f64 * 0.1).collect());
        let y: Vec<f64> = (0..n).map(|i| 3.0 * (i as f64 * 0.1) + 1.0).collect();
        let cfg = SvrConfig { epsilon: 0.01, c: 100.0, ..SvrConfig::default() };
        let (preds, cost) = cv_regression(&SvrTrainer::new(cfg), &x, &y, 5, 3);
        let max_err = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.5, "max_err = {max_err}");
        assert!(cost.flops > 0);
        assert!(cost.peak_bytes > 0);
    }

    #[test]
    fn classification_cv_covers_all_rows() {
        let x = DesignMatrix::from_raw(12, 1, (0..12).map(|i| (i % 2) as f64).collect());
        let y: Vec<u32> = (0..12).map(|i| (i % 2) as u32).collect();
        let (preds, _) =
            cv_classification(&ClassificationTreeTrainer::default(), &x, &y, 2, 4, 5);
        assert_eq!(preds.len(), 12);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = DesignMatrix::from_raw(8, 1, (0..8).map(|i| i as f64).collect());
        let y: Vec<u32> = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let a = cv_classification(&MajorityClassifierTrainer, &x, &y, 2, 4, 9).0;
        let b = cv_classification(&MajorityClassifierTrainer, &x, &y, 2, 4, 9).0;
        assert_eq!(a, b);
        let c = cv_classification(&MajorityClassifierTrainer, &x, &y, 2, 4, 10).0;
        // Different seed shuffles folds differently (may coincide rarely, but
        // not for this configuration).
        assert_ne!(a, c);
    }

    #[test]
    fn fold_peak_charges_view_overhead_not_a_copy() {
        let (n, d) = (40usize, 25usize);
        let x = DesignMatrix::from_raw(n, d, vec![1.0; n * d]);
        let y = vec![0.0f64; n];
        let k = 5;
        let (_, cost) = cv_regression(&ConstantRegressorTrainer, &x, &y, k, 3);
        // Largest fold trains on n - n/k rows. The old model charged a full
        // copy of that slice; the view model charges only row indices plus
        // the one-row prediction buffer (+ the trainer's own peak).
        let fold_rows = n - n / k;
        let copy_bytes = (fold_rows * d * 8) as u64;
        let view_bytes = (fold_rows * std::mem::size_of::<usize>() + d * 8) as u64;
        assert!(cost.peak_bytes < copy_bytes, "peak {} still charges a copy", cost.peak_bytes);
        assert!(cost.peak_bytes >= view_bytes, "peak {} omits view overhead", cost.peak_bytes);
    }

    #[test]
    fn single_row_degenerate_cv_still_returns() {
        let x = DesignMatrix::from_raw(1, 1, vec![0.5]);
        let (preds, _) = cv_regression(&ConstantRegressorTrainer, &x, &[2.0], 5, 0);
        assert_eq!(preds.len(), 1);
        assert!(!preds[0].is_nan());
    }
}
