//! Solver-path selection and instrumentation for the linear SVM trainers.
//!
//! The per-feature SVR/SVC fleet executes thousands of independent dual
//! coordinate-descent solves per FRaC run, so the workspace keeps **two**
//! solver paths:
//!
//! * [`SolverMode::Fast`] (the default) — liblinear-style active-set
//!   **shrinking** (bound-pinned coordinates whose projected gradient
//!   exceeds the previous epoch's worst violation are dropped from the
//!   sweep, with a full unshrink-and-recheck pass before convergence is
//!   declared), optional **warm-started duals** via the
//!   `train_view_warm` entry points, and the blocked
//!   [`frac_dataset::DesignView::row_dot_blocked`] kernels in the inner
//!   loop. Iteration order differs from the reference, so results agree
//!   with it only to solver tolerance — the equivalence tests gate on
//!   NS-score tolerance and identical anomaly rankings, not bits.
//! * [`SolverMode::Strict`] — the original solvers, unchanged: full sweeps
//!   in a seeded random permutation, sequential exact kernels. This is the
//!   reference the fast path is validated against, and the path to use
//!   when bit-reproducibility across machines matters more than speed.
//!
//! [`stats`] exposes process-wide counters (solves, epochs, coordinate
//! visits, dense sweep slots) that both paths bump once per solve; the
//! `perfsnapshot` bench resets and snapshots them to report
//! epochs-to-converge and active-set occupancy per model family.

use std::sync::atomic::{AtomicU64, Ordering};

use frac_dataset::{DesignView, PackedDesign};

/// Row-access surface the fast solvers' epoch loops are generic over.
///
/// Two implementors: [`frac_dataset::PackedDesign`] — rows gathered into
/// one contiguous buffer per solve, so the monomorphized hot loop makes a
/// single unsegmented kernel call per visit — and `dyn DesignView`, the
/// zero-copy fallback for designs beyond the packing budget
/// ([`PackedDesign::MAX_ELEMS`]). Strict mode never goes through this
/// trait; it keeps the exact sequential per-view paths.
pub(crate) trait SolverRows {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Number of design columns.
    fn n_cols(&self) -> usize;
    /// `init + w · row(r)` (blocked kernel).
    fn dot(&self, r: usize, w: &[f64], init: f64) -> f64;
    /// Mixed-precision `init + w · row(r)` (f32 products, f64 accumulate).
    fn dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64;
    /// `Σ_j row(r)[j]²` (blocked kernel).
    fn sq_norm(&self, r: usize) -> f64;
    /// `w += alpha · row(r)` (blocked kernel; bit-identical across tiers).
    fn axpy(&self, r: usize, alpha: f64, w: &mut [f64]);
}

impl SolverRows for PackedDesign {
    fn n_rows(&self) -> usize {
        PackedDesign::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        PackedDesign::n_cols(self)
    }

    fn dot(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.row_dot_blocked(r, w, init)
    }

    fn dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        PackedDesign::row_dot_f32(self, r, w, init)
    }

    fn sq_norm(&self, r: usize) -> f64 {
        self.row_sq_norm_blocked(r)
    }

    fn axpy(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.axpy_row_blocked(r, alpha, w);
    }
}

impl SolverRows for dyn DesignView + '_ {
    fn n_rows(&self) -> usize {
        DesignView::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        DesignView::n_cols(self)
    }

    fn dot(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.row_dot_blocked(r, w, init)
    }

    fn dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        DesignView::row_dot_f32(self, r, w, init)
    }

    fn sq_norm(&self, r: usize) -> f64 {
        self.row_sq_norm_blocked(r)
    }

    fn axpy(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.axpy_row_blocked(r, alpha, w);
    }
}

/// When set, the fast solvers skip the per-solve [`PackedDesign`] gather
/// and run their epoch loops through the zero-copy view path, as the
/// pre-SIMD-tier fast path did. Bench-only (the `perfsnapshot` A/B pins
/// its scalar-blocked baseline with this); packing changes results only
/// within the fast path's tolerance contract.
static FORCE_UNPACKED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Force (or restore) the zero-copy view-path solver, skipping the
/// per-solve design packing. Bench-only: `perfsnapshot` pins its
/// scalar-blocked A/B baseline with this.
pub fn force_unpacked_solver(on: bool) {
    FORCE_UNPACKED.store(on, Ordering::Release);
}

/// Gather `x` for the fast epoch loops unless disabled or over-budget.
pub(crate) fn pack_for_solve(x: &dyn DesignView) -> Option<PackedDesign> {
    if FORCE_UNPACKED.load(Ordering::Acquire) {
        return None;
    }
    PackedDesign::from_view(x)
}

/// Fisher–Yates with multiply-shift index sampling (Lemire) — no integer
/// division. The fast solver paths shuffle the active set every epoch, so
/// the reference shuffle's rejection sampling (two 64-bit divisions per
/// element) is measurable next to a blocked dot over a short row. The
/// permutation is still a pure function of the RNG stream, just a
/// different one than `SliceRandom::shuffle` draws — covered by the fast
/// path's "iteration order differs from the reference" contract. Strict
/// keeps the reference shuffle.
pub(crate) fn shuffle_fast(v: &mut [usize], rng: &mut impl rand::RngCore) {
    for i in (1..v.len()).rev() {
        let j = (((rng.next_u64() as u128) * (i as u128 + 1)) >> 64) as usize;
        v.swap(i, j);
    }
}

/// Which coordinate-descent path [`crate::svr::SvrTrainer`] and
/// [`crate::svc::SvcTrainer`] use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Shrinking + warm starts + blocked kernels (default).
    #[default]
    Fast,
    /// The reference solver: full sweeps, exact sequential kernels.
    Strict,
}

/// Process-wide solver instrumentation (see module docs).
pub mod stats {
    use super::*;

    static SOLVES: AtomicU64 = AtomicU64::new(0);
    static EPOCHS: AtomicU64 = AtomicU64::new(0);
    static VISITS: AtomicU64 = AtomicU64::new(0);
    static DENSE_SLOTS: AtomicU64 = AtomicU64::new(0);

    /// A snapshot of the solver counters.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct SolverStats {
        /// Binary subproblems solved (one per SVR fit, one per SVC class).
        pub solves: u64,
        /// Coordinate-descent epochs run, summed over solves.
        pub epochs: u64,
        /// Coordinates actually visited (gradient evaluated), summed.
        pub visits: u64,
        /// Coordinates a dense (non-shrinking) sweep would have visited:
        /// `Σ epochs · n`. `visits / dense_slots` is the mean active-set
        /// occupancy — 1.0 for the strict path, < 1 under shrinking.
        pub dense_slots: u64,
    }

    impl SolverStats {
        /// Mean active-set occupancy (`visits / dense_slots`), NaN when no
        /// sweeps ran.
        pub fn occupancy(&self) -> f64 {
            if self.dense_slots == 0 {
                return f64::NAN;
            }
            self.visits as f64 / self.dense_slots as f64
        }
    }

    /// Record one completed solve. Called once per binary subproblem, so
    /// the atomics are far off the inner loop.
    pub fn record(epochs: u64, visits: u64, dense_slots: u64) {
        SOLVES.fetch_add(1, Ordering::Relaxed);
        EPOCHS.fetch_add(epochs, Ordering::Relaxed);
        VISITS.fetch_add(visits, Ordering::Relaxed);
        DENSE_SLOTS.fetch_add(dense_slots, Ordering::Relaxed);
    }

    /// Zero all counters (bench harness, before a timed region).
    pub fn reset() {
        SOLVES.store(0, Ordering::Relaxed);
        EPOCHS.store(0, Ordering::Relaxed);
        VISITS.store(0, Ordering::Relaxed);
        DENSE_SLOTS.store(0, Ordering::Relaxed);
    }

    /// Read the counters.
    pub fn snapshot() -> SolverStats {
        SolverStats {
            solves: SOLVES.load(Ordering::Relaxed),
            epochs: EPOCHS.load(Ordering::Relaxed),
            visits: VISITS.load(Ordering::Relaxed),
            dense_slots: DENSE_SLOTS.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_fast() {
        assert_eq!(SolverMode::default(), SolverMode::Fast);
    }

    #[test]
    fn occupancy_ratio() {
        let s = stats::SolverStats { solves: 1, epochs: 2, visits: 30, dense_slots: 100 };
        assert!((s.occupancy() - 0.3).abs() < 1e-12);
        assert!(stats::SolverStats::default().occupancy().is_nan());
    }
}
