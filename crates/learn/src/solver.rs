//! Solver-path selection and instrumentation for the linear SVM trainers.
//!
//! The per-feature SVR/SVC fleet executes thousands of independent dual
//! coordinate-descent solves per FRaC run, so the workspace keeps **two**
//! solver paths:
//!
//! * [`SolverMode::Fast`] (the default) — liblinear-style active-set
//!   **shrinking** (bound-pinned coordinates whose projected gradient
//!   exceeds the previous epoch's worst violation are dropped from the
//!   sweep, with a full unshrink-and-recheck pass before convergence is
//!   declared), optional **warm-started duals** via the
//!   `train_view_warm` entry points, and the blocked
//!   [`frac_dataset::DesignView::row_dot_blocked`] kernels in the inner
//!   loop. Iteration order differs from the reference, so results agree
//!   with it only to solver tolerance — the equivalence tests gate on
//!   NS-score tolerance and identical anomaly rankings, not bits.
//! * [`SolverMode::Strict`] — the original solvers, unchanged: full sweeps
//!   in a seeded random permutation, sequential exact kernels. This is the
//!   reference the fast path is validated against, and the path to use
//!   when bit-reproducibility across machines matters more than speed.
//!
//! [`stats`] exposes process-wide counters (solves, epochs, coordinate
//! visits, dense sweep slots) that both paths bump once per solve; the
//! `perfsnapshot` bench resets and snapshots them to report
//! epochs-to-converge and active-set occupancy per model family.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::budget::TargetBudget;
use crate::fault::TrainError;
use frac_dataset::{DesignView, PackedDesign};

/// Row-access surface the fast solvers' epoch loops are generic over.
///
/// Two implementors: [`frac_dataset::PackedDesign`] — rows gathered into
/// one contiguous buffer per solve, so the monomorphized hot loop makes a
/// single unsegmented kernel call per visit — and `dyn DesignView`, the
/// zero-copy fallback for designs beyond the packing budget
/// ([`PackedDesign::MAX_ELEMS`]). Strict mode never goes through this
/// trait; it keeps the exact sequential per-view paths.
pub(crate) trait SolverRows {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Number of design columns.
    fn n_cols(&self) -> usize;
    /// `init + w · row(r)` (blocked kernel).
    fn dot(&self, r: usize, w: &[f64], init: f64) -> f64;
    /// Mixed-precision `init + w · row(r)` (f32 products, f64 accumulate).
    fn dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64;
    /// `Σ_j row(r)[j]²` (blocked kernel).
    fn sq_norm(&self, r: usize) -> f64;
    /// `w += alpha · row(r)` (blocked kernel; bit-identical across tiers).
    fn axpy(&self, r: usize, alpha: f64, w: &mut [f64]);
    /// Whether [`Self::dot_f32`] is served by a unit-stride packed f32
    /// mirror. When false, the fast solvers' f32 mode falls back to the
    /// full-precision f64 dot (and records the fallback in the
    /// `solver_strategy` telemetry mask) instead of paying the
    /// demote-per-visit kernel, which measures slower than f64.
    fn has_f32(&self) -> bool {
        false
    }
}

impl SolverRows for PackedDesign {
    fn n_rows(&self) -> usize {
        PackedDesign::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        PackedDesign::n_cols(self)
    }

    fn dot(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.row_dot_blocked(r, w, init)
    }

    fn dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        PackedDesign::row_dot_f32(self, r, w, init)
    }

    fn sq_norm(&self, r: usize) -> f64 {
        self.row_sq_norm_blocked(r)
    }

    fn axpy(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.axpy_row_blocked(r, alpha, w);
    }

    fn has_f32(&self) -> bool {
        PackedDesign::has_f32(self)
    }
}

impl SolverRows for dyn DesignView + '_ {
    fn n_rows(&self) -> usize {
        DesignView::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        DesignView::n_cols(self)
    }

    fn dot(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.row_dot_blocked(r, w, init)
    }

    fn dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        DesignView::row_dot_f32(self, r, w, init)
    }

    fn sq_norm(&self, r: usize) -> f64 {
        self.row_sq_norm_blocked(r)
    }

    fn axpy(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.axpy_row_blocked(r, alpha, w);
    }
}

/// When set, the fast solvers skip the per-solve [`PackedDesign`] gather
/// and run their epoch loops through the zero-copy view path, as the
/// pre-SIMD-tier fast path did. Bench-only (the `perfsnapshot` A/B pins
/// its scalar-blocked baseline with this); packing changes results only
/// within the fast path's tolerance contract.
static FORCE_UNPACKED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Force (or restore) the zero-copy view-path solver, skipping the
/// per-solve design packing. Bench-only: `perfsnapshot` pins its
/// scalar-blocked A/B baseline with this.
pub fn force_unpacked_solver(on: bool) {
    FORCE_UNPACKED.store(on, Ordering::Release);
}

/// Gather `x` for the fast epoch loops unless disabled or over-budget.
///
/// When a solve context is active (see [`pack_cache`]) and a cached gather
/// matches it exactly, the cached [`PackedDesign`] is reused instead of
/// re-gathered — ensemble members and one-vs-rest classes of the same
/// (target, fold) problem then share one gather. `want_f32` additionally
/// builds (or requires, on a cache hit) the contiguous f32 mirror for the
/// mixed-precision dot kernel.
pub(crate) fn pack_for_solve(x: &dyn DesignView, want_f32: bool) -> Option<Rc<PackedDesign>> {
    if FORCE_UNPACKED.load(Ordering::Acquire) {
        return None;
    }
    if let Some(hit) = pack_cache::lookup(x.n_rows(), x.n_cols(), want_f32) {
        stats::record_pack_reuse();
        return Some(hit);
    }
    let mut packed = PackedDesign::from_view(x)?;
    if want_f32 {
        packed.ensure_f32();
    }
    let rc = Rc::new(packed);
    pack_cache::store(&rc);
    Some(rc)
}

/// The Gram matrix for `packed` with the bias augmentation folded in, from
/// the solve-context cache when one matches (members and one-vs-rest
/// classes then share one O(n²d) build) or built fresh. The budget is
/// polled once per Gram row during a build. The flag is true when this
/// call actually built Q (the caller charges the build flops then).
pub(crate) fn gram_for_solve(
    packed: &Rc<PackedDesign>,
    bias_sq: f64,
    budget: &TargetBudget,
) -> Result<(Rc<GramMatrix>, bool), TrainError> {
    if let Some(hit) = pack_cache::lookup_gram(packed, bias_sq) {
        return Ok((hit, false));
    }
    let gram = Rc::new(GramMatrix::build(packed, bias_sq, budget)?);
    stats::record_gram_build();
    pack_cache::store_gram(packed, bias_sq, &gram);
    Ok((gram, true))
}

/// Which execution strategy the fast dual coordinate-descent loops use.
///
/// * `Primal` — maintain `w = Xᵀα` and evaluate each gradient with an
///   O(d) row dot (the PR 2/PR 6 path).
/// * `Gram` — precompute `Q = XXᵀ` (bias folded in) once per solve and
///   maintain the dual gradient vector, making a coordinate visit an O(1)
///   gradient read plus an O(n) row-of-Q update; `w` is reconstructed once
///   at convergence. Wins when n ≪ d and Q fits in cache.
/// * `Auto` — pick per solve via [`GramPolicy::should_use_gram`].
///
/// Honoured only by [`SolverMode::Fast`]; the strict reference path always
/// runs the exact sequential primal sweep. Gram and primal converge to the
/// same objective (the equivalence gate checks 1e-8), but their rounding
/// and iteration histories differ — like fast-vs-strict, agreement is to
/// solver tolerance, not bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverStrategy {
    /// Cost-model selection per solve (default).
    #[default]
    Auto,
    /// Always use the Gram-matrix dual loop (falls back to primal only
    /// when the design cannot be packed).
    Gram,
    /// Always use the primal-maintenance loop.
    Primal,
}

impl SolverStrategy {
    /// Stable display / serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            SolverStrategy::Auto => "auto",
            SolverStrategy::Gram => "gram",
            SolverStrategy::Primal => "primal",
        }
    }

    /// Parse a strategy name (`auto` / `gram` / `primal`).
    pub fn parse(s: &str) -> Option<SolverStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(SolverStrategy::Auto),
            "gram" => Some(SolverStrategy::Gram),
            "primal" => Some(SolverStrategy::Primal),
            _ => None,
        }
    }
}

impl std::fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `solver_strategy` telemetry bit: a fast solve ran the primal loop.
pub const STRATEGY_PRIMAL_CODE: u64 = 1;
/// `solver_strategy` telemetry bit: a fast solve ran the Gram dual loop.
pub const STRATEGY_GRAM_CODE: u64 = 2;
/// `solver_strategy` telemetry bit: f32 mode served by the packed mirror.
pub const STRATEGY_F32_PACKED_CODE: u64 = 4;
/// `solver_strategy` telemetry bit: f32 mode requested but served as f64
/// (no packed mirror available on this solve's path).
pub const STRATEGY_F32_FALLBACK_CODE: u64 = 8;

/// Human name(s) for a `solver_strategy` telemetry mask (the OR of the
/// `STRATEGY_*_CODE` bits), comma-joined in flag order. `None` for an
/// empty mask or one with unknown bits.
pub fn describe_strategy_mask(mask: u64) -> Option<String> {
    const FLAGS: [(u64, &str); 4] = [
        (STRATEGY_PRIMAL_CODE, "primal"),
        (STRATEGY_GRAM_CODE, "gram"),
        (STRATEGY_F32_PACKED_CODE, "f32-packed"),
        (STRATEGY_F32_FALLBACK_CODE, "f32-as-f64"),
    ];
    const KNOWN: u64 = STRATEGY_PRIMAL_CODE
        | STRATEGY_GRAM_CODE
        | STRATEGY_F32_PACKED_CODE
        | STRATEGY_F32_FALLBACK_CODE;
    if mask == 0 || mask & !KNOWN != 0 {
        return None;
    }
    let names: Vec<&str> =
        FLAGS.iter().filter(|&&(bit, _)| mask & bit != 0).map(|&(_, name)| name).collect();
    Some(names.join(","))
}

/// Cost model deciding when [`SolverStrategy::Auto`] takes the Gram loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GramPolicy {
    /// Use Gram only when `n² · 8` bytes fit this budget (inclusive), so Q
    /// stays L1/L2-resident. Default 1 MiB (n ≤ 362).
    pub cache_budget_bytes: usize,
    /// Use Gram only when `d ≥ ratio · n`: below this the O(n) row-of-Q
    /// update is no cheaper than the O(d) primal dot and the build never
    /// amortizes. Default 0.25: per-visit arithmetic alone would put the
    /// crossover near d ≈ n, but a Gram visit whose Newton step is null
    /// costs O(1) (gradient read, no row update) where the primal loop
    /// still pays its O(d) dot, so the measured crossover
    /// (`BENCH_gram.json` d/n sweep) sits well below 1.
    pub crossover_ratio: f64,
}

impl Default for GramPolicy {
    fn default() -> Self {
        GramPolicy { cache_budget_bytes: 1 << 20, crossover_ratio: 0.25 }
    }
}

impl GramPolicy {
    /// Whether a fast solve of `n` rows × `d` columns should take the Gram
    /// loop. The byte test is inclusive: `n·n·8 == cache_budget_bytes`
    /// still fits.
    pub fn should_use_gram(&self, n: usize, d: usize) -> bool {
        n > 0
            && d > 0
            && n.saturating_mul(n).saturating_mul(8) <= self.cache_budget_bytes
            && (d as f64) >= self.crossover_ratio * (n as f64)
    }
}

/// Process-wide [`GramPolicy`] for [`SolverStrategy::Auto`], as two atomics
/// so the hot path's read is two relaxed loads. Bits of 0.25 = 0x3FD0….
static GRAM_BUDGET_BYTES: AtomicU64 = AtomicU64::new(1 << 20);
static GRAM_RATIO_BITS: AtomicU64 = AtomicU64::new(0x3FD0_0000_0000_0000);

/// The process-wide auto-selection policy.
pub fn gram_policy() -> GramPolicy {
    GramPolicy {
        cache_budget_bytes: GRAM_BUDGET_BYTES.load(Ordering::Relaxed) as usize,
        crossover_ratio: f64::from_bits(GRAM_RATIO_BITS.load(Ordering::Relaxed)),
    }
}

/// Override the process-wide auto-selection policy (bench sweeps, tuning).
pub fn set_gram_policy(policy: GramPolicy) {
    GRAM_BUDGET_BYTES.store(policy.cache_budget_bytes as u64, Ordering::Relaxed);
    GRAM_RATIO_BITS.store(policy.crossover_ratio.to_bits(), Ordering::Relaxed);
}

/// A solve's Gram matrix `Q = XXᵀ + bias·𝟙` — n² doubles, symmetric, with
/// the bias augmentation folded into every entry so the dual loops never
/// special-case it. Built with the dispatched SIMD dot kernel over packed
/// rows (upper triangle mirrored), O(n²d/2) once per solve — or once per
/// (target, fold) when the [`pack_cache`] can share it.
#[derive(Debug)]
pub struct GramMatrix {
    q: Vec<f64>,
    n: usize,
}

impl GramMatrix {
    /// Build from packed rows, polling `budget` once per Gram row.
    pub(crate) fn build(
        x: &PackedDesign,
        bias_sq: f64,
        budget: &TargetBudget,
    ) -> Result<GramMatrix, TrainError> {
        let n = x.n_rows();
        let mut q = vec![0.0f64; n * n];
        for i in 0..n {
            budget.check()?;
            let ri = x.row(i);
            for j in 0..=i {
                let v = frac_dataset::kernels::dot_blocked(ri, x.row(j), bias_sq);
                q[i * n + j] = v;
                q[j * n + i] = v;
            }
        }
        Ok(GramMatrix { q, n })
    }

    /// Number of rows (= columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `i` of Q as one contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.q[i * self.n..(i + 1) * self.n]
    }

    /// `Q_ii` (the dual coordinate's curvature, bias included).
    #[inline]
    pub fn diag(&self, i: usize) -> f64 {
        self.q[i * self.n + i]
    }

    /// Resident bytes (for the pack cache's byte cap).
    pub fn approx_bytes(&self) -> usize {
        self.q.len() * std::mem::size_of::<f64>()
    }

    /// Flops of one build over `d` columns: n(n+1)/2 dots of 2d flops.
    pub fn build_flops(n: usize, d: usize) -> u64 {
        (n as u64) * (n as u64 + 1) / 2 * (d as u64) * 2
    }
}

/// Per-thread cache of solve-scoped [`PackedDesign`] gathers and their
/// [`GramMatrix`] builds.
///
/// The fit driver re-solves the same (target, fold) design many times —
/// once per ensemble member, once per one-vs-rest class, plus the final
/// full fit — and each fast solve used to re-gather the rows. The driver
/// brackets those solves with [`pack_cache::begin_scope`] (one scope per
/// fitted predictor problem) and [`pack_cache::set_rows`] (the exact
/// train-row indices of the
/// upcoming solve); `pack_for_solve` then reuses a cached gather only when
/// the stored row indices and the view shape match exactly, so a stale or
/// missing context degrades to a fresh gather, never a wrong one.
///
/// Thread-local on purpose: the fit fleet runs one target per rayon
/// thread, so entries never cross targets mid-problem, and `Rc` keeps the
/// hot path free of atomics.
pub mod pack_cache {
    use super::GramMatrix;
    use frac_dataset::PackedDesign;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Byte cap per thread across packed buffers and Gram matrices; the
    /// oldest entries are evicted past it.
    const MAX_BYTES: usize = 16 << 20;

    struct Entry {
        slot: u64,
        rows: Vec<usize>,
        packed: Rc<PackedDesign>,
        gram: Option<(u64, Rc<GramMatrix>)>,
    }

    impl Entry {
        fn bytes(&self) -> usize {
            self.packed.approx_bytes()
                + self.gram.as_ref().map_or(0, |(_, g)| g.approx_bytes())
                + self.rows.len() * std::mem::size_of::<usize>()
        }
    }

    struct State {
        /// Whether any scope was ever begun on this thread: `set_rows` is
        /// inert until then, so code paths shared with direct trainer users
        /// (the CV drivers) can declare rows unconditionally without risking
        /// stale hits outside a scoped fit.
        begun: bool,
        scope: u64,
        active: Option<(u64, Vec<usize>)>,
        entries: Vec<Entry>,
    }

    thread_local! {
        static STATE: RefCell<State> = const {
            RefCell::new(State { begun: false, scope: 0, active: None, entries: Vec::new() })
        };
    }

    /// Enter a solve scope (one per fitted predictor problem: target ×
    /// input set × fit). A scope change drops every cached entry; the
    /// caller must pick keys that never collide across different designs
    /// (e.g. hash of a per-fit nonce, target id, and input set).
    pub fn begin_scope(scope: u64) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            if !s.begun || s.scope != scope {
                s.scope = scope;
                s.entries.clear();
            }
            s.begun = true;
            s.active = None;
        });
    }

    /// Declare the train rows of the next solve(s): `slot` names the fold
    /// (or final fit) and `rows` are the exact row indices, compared
    /// verbatim on lookup. Stays active until the next `set_rows` /
    /// `clear_rows` / `begin_scope`.
    pub fn set_rows(slot: u64, rows: &[usize]) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            if s.begun {
                s.active = Some((slot, rows.to_vec()));
            }
        });
    }

    /// Clear the active solve context (subsequent solves bypass the cache).
    pub fn clear_rows() {
        STATE.with(|s| s.borrow_mut().active = None);
    }

    pub(crate) fn lookup(
        n_rows: usize,
        n_cols: usize,
        want_f32: bool,
    ) -> Option<Rc<PackedDesign>> {
        STATE.with(|s| {
            let s = s.borrow();
            let (slot, rows) = s.active.as_ref()?;
            if rows.len() != n_rows {
                return None;
            }
            s.entries
                .iter()
                .find(|e| {
                    e.slot == *slot
                        && e.rows == *rows
                        && e.packed.n_rows() == n_rows
                        && e.packed.n_cols() == n_cols
                        && (!want_f32 || e.packed.has_f32())
                })
                .map(|e| Rc::clone(&e.packed))
        })
    }

    pub(crate) fn store(packed: &Rc<PackedDesign>) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let Some((slot, rows)) = s.active.clone() else { return };
            if rows.len() != packed.n_rows() {
                return;
            }
            s.entries.retain(|e| e.slot != slot);
            s.entries.push(Entry { slot, rows, packed: Rc::clone(packed), gram: None });
            evict(&mut s.entries);
        });
    }

    pub(crate) fn lookup_gram(packed: &Rc<PackedDesign>, bias_sq: f64) -> Option<Rc<GramMatrix>> {
        STATE.with(|s| {
            s.borrow()
                .entries
                .iter()
                .find(|e| Rc::ptr_eq(&e.packed, packed))
                .and_then(|e| e.gram.as_ref())
                .filter(|(bits, _)| *bits == bias_sq.to_bits())
                .map(|(_, g)| Rc::clone(g))
        })
    }

    pub(crate) fn store_gram(packed: &Rc<PackedDesign>, bias_sq: f64, gram: &Rc<GramMatrix>) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(e) = s.entries.iter_mut().find(|e| Rc::ptr_eq(&e.packed, packed)) {
                e.gram = Some((bias_sq.to_bits(), Rc::clone(gram)));
            }
            evict(&mut s.entries);
        });
    }

    fn evict(entries: &mut Vec<Entry>) {
        let mut total: usize = entries.iter().map(Entry::bytes).sum();
        while total > MAX_BYTES && entries.len() > 1 {
            total -= entries.remove(0).bytes();
        }
    }
}

/// Fisher–Yates with multiply-shift index sampling (Lemire) — no integer
/// division. The fast solver paths shuffle the active set every epoch, so
/// the reference shuffle's rejection sampling (two 64-bit divisions per
/// element) is measurable next to a blocked dot over a short row. The
/// permutation is still a pure function of the RNG stream, just a
/// different one than `SliceRandom::shuffle` draws — covered by the fast
/// path's "iteration order differs from the reference" contract. Strict
/// keeps the reference shuffle.
pub(crate) fn shuffle_fast(v: &mut [usize], rng: &mut impl rand::RngCore) {
    for i in (1..v.len()).rev() {
        let j = (((rng.next_u64() as u128) * (i as u128 + 1)) >> 64) as usize;
        v.swap(i, j);
    }
}

/// Which coordinate-descent path [`crate::svr::SvrTrainer`] and
/// [`crate::svc::SvcTrainer`] use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Shrinking + warm starts + blocked kernels (default).
    #[default]
    Fast,
    /// The reference solver: full sweeps, exact sequential kernels.
    Strict,
}

/// Process-wide solver instrumentation (see module docs).
pub mod stats {
    use super::*;

    static SOLVES: AtomicU64 = AtomicU64::new(0);
    static EPOCHS: AtomicU64 = AtomicU64::new(0);
    static VISITS: AtomicU64 = AtomicU64::new(0);
    static DENSE_SLOTS: AtomicU64 = AtomicU64::new(0);
    static GRAM_SOLVES: AtomicU64 = AtomicU64::new(0);
    static GRAM_BUILDS: AtomicU64 = AtomicU64::new(0);
    static PACK_REUSES: AtomicU64 = AtomicU64::new(0);

    /// A snapshot of the solver counters.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct SolverStats {
        /// Binary subproblems solved (one per SVR fit, one per SVC class).
        pub solves: u64,
        /// Coordinate-descent epochs run, summed over solves.
        pub epochs: u64,
        /// Coordinates actually visited (gradient evaluated), summed.
        pub visits: u64,
        /// Coordinates a dense (non-shrinking) sweep would have visited:
        /// `Σ epochs · n`. `visits / dense_slots` is the mean active-set
        /// occupancy — 1.0 for the strict path, < 1 under shrinking.
        pub dense_slots: u64,
        /// Solves that ran the Gram-matrix dual loop.
        pub gram_solves: u64,
        /// Gram matrices actually built (< `gram_solves` when the pack
        /// cache shares one Q across members / classes / the d/n sweep).
        pub gram_builds: u64,
        /// Solves that reused a cached [`frac_dataset::PackedDesign`]
        /// gather instead of re-gathering the design.
        pub pack_reuses: u64,
    }

    impl SolverStats {
        /// Mean active-set occupancy (`visits / dense_slots`), NaN when no
        /// sweeps ran.
        pub fn occupancy(&self) -> f64 {
            if self.dense_slots == 0 {
                return f64::NAN;
            }
            self.visits as f64 / self.dense_slots as f64
        }
    }

    /// Record one completed solve. Called once per binary subproblem, so
    /// the atomics are far off the inner loop.
    pub fn record(epochs: u64, visits: u64, dense_slots: u64) {
        SOLVES.fetch_add(1, Ordering::Relaxed);
        EPOCHS.fetch_add(epochs, Ordering::Relaxed);
        VISITS.fetch_add(visits, Ordering::Relaxed);
        DENSE_SLOTS.fetch_add(dense_slots, Ordering::Relaxed);
    }

    /// Record one solve that ran the Gram-matrix dual loop.
    pub fn record_gram_solve() {
        GRAM_SOLVES.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one Gram matrix actually built (cache misses only).
    pub fn record_gram_build() {
        GRAM_BUILDS.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one solve that reused a cached design gather.
    pub fn record_pack_reuse() {
        PACK_REUSES.fetch_add(1, Ordering::Relaxed);
    }

    /// Zero all counters (bench harness, before a timed region).
    pub fn reset() {
        SOLVES.store(0, Ordering::Relaxed);
        EPOCHS.store(0, Ordering::Relaxed);
        VISITS.store(0, Ordering::Relaxed);
        DENSE_SLOTS.store(0, Ordering::Relaxed);
        GRAM_SOLVES.store(0, Ordering::Relaxed);
        GRAM_BUILDS.store(0, Ordering::Relaxed);
        PACK_REUSES.store(0, Ordering::Relaxed);
    }

    /// Read the counters.
    pub fn snapshot() -> SolverStats {
        SolverStats {
            solves: SOLVES.load(Ordering::Relaxed),
            epochs: EPOCHS.load(Ordering::Relaxed),
            visits: VISITS.load(Ordering::Relaxed),
            dense_slots: DENSE_SLOTS.load(Ordering::Relaxed),
            gram_solves: GRAM_SOLVES.load(Ordering::Relaxed),
            gram_builds: GRAM_BUILDS.load(Ordering::Relaxed),
            pack_reuses: PACK_REUSES.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_fast() {
        assert_eq!(SolverMode::default(), SolverMode::Fast);
    }

    #[test]
    fn occupancy_ratio() {
        let s = stats::SolverStats {
            solves: 1,
            epochs: 2,
            visits: 30,
            dense_slots: 100,
            ..Default::default()
        };
        assert!((s.occupancy() - 0.3).abs() < 1e-12);
        assert!(stats::SolverStats::default().occupancy().is_nan());
    }

    #[test]
    fn strategy_parse_round_trips() {
        for s in [SolverStrategy::Auto, SolverStrategy::Gram, SolverStrategy::Primal] {
            assert_eq!(SolverStrategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(SolverStrategy::parse("GRAM"), Some(SolverStrategy::Gram));
        assert_eq!(SolverStrategy::parse("dual"), None);
        assert_eq!(SolverStrategy::default(), SolverStrategy::Auto);
    }

    #[test]
    fn describe_strategy_mask_names_flags() {
        assert_eq!(describe_strategy_mask(STRATEGY_PRIMAL_CODE).as_deref(), Some("primal"));
        assert_eq!(describe_strategy_mask(STRATEGY_GRAM_CODE).as_deref(), Some("gram"));
        assert_eq!(
            describe_strategy_mask(STRATEGY_PRIMAL_CODE | STRATEGY_GRAM_CODE).as_deref(),
            Some("primal,gram")
        );
        assert_eq!(
            describe_strategy_mask(STRATEGY_GRAM_CODE | STRATEGY_F32_PACKED_CODE).as_deref(),
            Some("gram,f32-packed")
        );
        assert_eq!(
            describe_strategy_mask(STRATEGY_F32_FALLBACK_CODE).as_deref(),
            Some("f32-as-f64")
        );
        assert_eq!(describe_strategy_mask(0), None);
        assert_eq!(describe_strategy_mask(16), None);
        assert_eq!(describe_strategy_mask(1 | 16), None);
    }

    #[test]
    fn gram_policy_crossover_cost_model() {
        let p = GramPolicy { cache_budget_bytes: 8 * 10 * 10, crossover_ratio: 2.0 };
        // Tiny n, wide d: Gram.
        assert!(p.should_use_gram(10, 400));
        // Exact byte boundary is inclusive: n·n·8 == budget still fits.
        assert_eq!(10 * 10 * 8, p.cache_budget_bytes);
        assert!(p.should_use_gram(10, 20));
        // One row over the budget: primal.
        assert!(!p.should_use_gram(11, 400));
        // Wide-enough budget but d/n below the crossover ratio: primal.
        assert!(!p.should_use_gram(10, 19));
        // Exact crossover ratio is inclusive.
        assert!(p.should_use_gram(10, 20));
        // Degenerate shapes never take Gram.
        assert!(!p.should_use_gram(0, 400));
        assert!(!p.should_use_gram(10, 0));
        // Large n always falls back regardless of width.
        assert!(!GramPolicy::default().should_use_gram(100_000, usize::MAX / 100_000));
        // The shipped default: 1 MiB budget (n ≤ 362), measured crossover
        // ratio 0.25 (BENCH_gram.json d/n sweep).
        let default = GramPolicy::default();
        assert_eq!(default.cache_budget_bytes, 1 << 20);
        assert_eq!(default.crossover_ratio, 0.25);
        assert!(default.should_use_gram(48, 12)); // d/n exactly at ratio
        assert!(!default.should_use_gram(48, 11)); // just below
        assert!(default.should_use_gram(362, 91)); // n at the byte budget
        assert!(!default.should_use_gram(363, 91)); // one row over
    }

    #[test]
    fn gram_policy_process_override_round_trips() {
        let prev = gram_policy();
        let custom = GramPolicy { cache_budget_bytes: 123 * 8, crossover_ratio: 3.5 };
        set_gram_policy(custom);
        assert_eq!(gram_policy(), custom);
        set_gram_policy(prev);
        assert_eq!(gram_policy(), prev);
    }

    #[test]
    fn gram_matrix_is_symmetric_with_bias_folded() {
        use frac_dataset::DesignMatrix;
        let x = DesignMatrix::from_raw(3, 2, vec![1.0, 2.0, -0.5, 0.25, 3.0, -1.0]);
        let packed = std::rc::Rc::new(PackedDesign::from_view(&x).unwrap());
        let q = GramMatrix::build(&packed, 1.0, &TargetBudget::unlimited()).unwrap();
        assert_eq!(q.n(), 3);
        for i in 0..3 {
            for j in 0..3 {
                let expect: f64 = (0..2).map(|c| x.get(i, c) * x.get(j, c)).sum::<f64>() + 1.0;
                assert!((q.row(i)[j] - expect).abs() < 1e-12, "Q[{i},{j}]");
                assert_eq!(q.row(i)[j].to_bits(), q.row(j)[i].to_bits(), "symmetry");
            }
        }
        assert_eq!(q.diag(1), q.row(1)[1]);
    }

    #[test]
    fn pack_cache_reuses_gather_only_on_exact_row_match() {
        use frac_dataset::DesignMatrix;
        let x = DesignMatrix::from_raw(4, 2, vec![0.0; 8]);
        pack_cache::begin_scope(0xDEAD);
        pack_cache::set_rows(7, &[0, 1, 2, 3]);
        let a = pack_for_solve(&x, false).unwrap();
        let b = pack_for_solve(&x, false).unwrap();
        assert!(Rc::ptr_eq(&a, &b), "same scope+slot+rows must reuse the gather");
        // Same slot, different rows: exact row comparison rejects reuse.
        pack_cache::set_rows(7, &[0, 1, 3, 2]);
        let c = pack_for_solve(&x, false).unwrap();
        assert!(!Rc::ptr_eq(&a, &c));
        // f32 mirror demanded later: the plain cached pack is not reused.
        let d = pack_for_solve(&x, true).unwrap();
        assert!(!Rc::ptr_eq(&c, &d) && d.has_f32());
        let e = pack_for_solve(&x, false).unwrap();
        assert!(Rc::ptr_eq(&d, &e), "a mirrored pack serves plain lookups too");
        // Scope change drops everything.
        pack_cache::begin_scope(0xBEEF);
        pack_cache::set_rows(7, &[0, 1, 3, 2]);
        let f = pack_for_solve(&x, false).unwrap();
        assert!(!Rc::ptr_eq(&d, &f));
        // No active context: packs are fresh every time.
        pack_cache::clear_rows();
        let g = pack_for_solve(&x, false).unwrap();
        let h = pack_for_solve(&x, false).unwrap();
        assert!(!Rc::ptr_eq(&g, &h));
        pack_cache::begin_scope(0);
    }

    #[test]
    fn gram_cache_shares_q_per_pack_and_bias() {
        use frac_dataset::DesignMatrix;
        let x = DesignMatrix::from_raw(3, 4, (0..12).map(|v| v as f64).collect());
        pack_cache::begin_scope(0xCAFE);
        pack_cache::set_rows(1, &[0, 1, 2]);
        let packed = pack_for_solve(&x, false).unwrap();
        let unlimited = TargetBudget::unlimited();
        let (q1, built1) = gram_for_solve(&packed, 1.0, &unlimited).unwrap();
        let (q2, built2) = gram_for_solve(&packed, 1.0, &unlimited).unwrap();
        assert!(built1 && !built2, "second solve must reuse the cached build");
        assert!(Rc::ptr_eq(&q1, &q2), "same pack + bias must share one Q build");
        let (q3, built3) = gram_for_solve(&packed, 0.0, &unlimited).unwrap();
        assert!(built3, "bias change invalidates the cached Q");
        assert!(!Rc::ptr_eq(&q1, &q3));
        pack_cache::begin_scope(0);
    }
}
