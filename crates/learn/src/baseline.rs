//! Constant baselines.
//!
//! Two roles: (1) the degenerate fallback when a predictor's input subset is
//! empty (Diverse FRaC with very small `p` routinely produces such subsets);
//! (2) sanity baselines — a feature whose model cannot beat the constant
//! predictor contributes nothing but noise to NS, the phenomenon the paper's
//! §II-D footnote discusses.

use crate::traits::{
    Classifier, ClassifierTrainer, Regressor, RegressorTrainer, Trained, TrainingCost,
};
use frac_dataset::{stats, DesignView};

/// Predicts the training-target mean regardless of input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantRegressor {
    mean: f64,
}

impl ConstantRegressor {
    /// The constant prediction.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Construct directly (persistence path).
    pub fn from_mean(mean: f64) -> Self {
        ConstantRegressor { mean }
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.floats("const_reg", &[self.mean]);
    }

    /// Parse a model previously produced by
    /// [`ConstantRegressor::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        Ok(ConstantRegressor { mean: r.parse_one("const_reg")? })
    }
}

impl Regressor for ConstantRegressor {
    fn predict(&self, _x: &[f64]) -> f64 {
        self.mean
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Trainer for [`ConstantRegressor`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantRegressorTrainer;

impl RegressorTrainer for ConstantRegressorTrainer {
    type Model = ConstantRegressor;

    fn train_view(&self, x: &dyn DesignView, y: &[f64]) -> Trained<ConstantRegressor> {
        assert_eq!(x.n_rows(), y.len());
        Trained {
            model: ConstantRegressor { mean: stats::mean(y).unwrap_or(0.0) },
            cost: TrainingCost {
                flops: y.len() as u64,
                peak_bytes: std::mem::size_of::<f64>() as u64,
            },
        }
    }
}

/// Predicts the training-set majority class regardless of input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorityClassifier {
    class: u32,
}

impl MajorityClassifier {
    /// The constant prediction.
    pub fn class(&self) -> u32 {
        self.class
    }

    /// Construct directly (persistence path).
    pub fn from_class(class: u32) -> Self {
        MajorityClassifier { class }
    }

    /// Serialize into a text writer (model persistence).
    pub fn write_text(&self, w: &mut frac_dataset::textio::TextWriter) {
        w.line("majority_clf", [self.class]);
    }

    /// Parse a model previously produced by
    /// [`MajorityClassifier::write_text`].
    pub fn parse_text(
        r: &mut frac_dataset::textio::TextReader<'_>,
    ) -> Result<Self, frac_dataset::textio::TextError> {
        Ok(MajorityClassifier { class: r.parse_one("majority_clf")? })
    }
}

impl Classifier for MajorityClassifier {
    fn predict(&self, _x: &[f64]) -> u32 {
        self.class
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Trainer for [`MajorityClassifier`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityClassifierTrainer;

impl ClassifierTrainer for MajorityClassifierTrainer {
    type Model = MajorityClassifier;

    fn train_view(&self, x: &dyn DesignView, y: &[u32], arity: u32) -> Trained<MajorityClassifier> {
        assert_eq!(x.n_rows(), y.len());
        let mut counts = vec![0usize; arity as usize];
        for &c in y {
            counts[c as usize] += 1;
        }
        let class = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c as u32)
            .unwrap_or(0);
        Trained {
            model: MajorityClassifier { class },
            cost: TrainingCost {
                flops: y.len() as u64,
                peak_bytes: (arity as u64) * std::mem::size_of::<usize>() as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    #[test]
    fn constant_regressor_predicts_mean() {
        let x = DesignMatrix::from_raw(3, 1, vec![0.0, 1.0, 2.0]);
        let t = ConstantRegressorTrainer.train(&x, &[1.0, 2.0, 6.0]);
        assert_eq!(t.model.predict(&[100.0]), 3.0);
        assert_eq!(t.model.mean(), 3.0);
    }

    #[test]
    fn constant_regressor_empty_defaults_to_zero() {
        let x = DesignMatrix::from_raw(0, 1, vec![]);
        let t = ConstantRegressorTrainer.train(&x, &[]);
        assert_eq!(t.model.predict(&[1.0]), 0.0);
    }

    #[test]
    fn majority_classifier_picks_mode() {
        let x = DesignMatrix::from_raw(5, 1, vec![0.0; 5]);
        let t = MajorityClassifierTrainer.train(&x, &[2, 2, 1, 2, 0], 3);
        assert_eq!(t.model.predict(&[9.9]), 2);
    }

    #[test]
    fn majority_tie_breaks_low() {
        let x = DesignMatrix::from_raw(4, 1, vec![0.0; 4]);
        let t = MajorityClassifierTrainer.train(&x, &[0, 1, 1, 0], 2);
        assert_eq!(t.model.class(), 0);
    }

    #[test]
    fn majority_empty_defaults_to_zero() {
        let x = DesignMatrix::from_raw(0, 1, vec![]);
        let t = MajorityClassifierTrainer.train(&x, &[], 3);
        assert_eq!(t.model.class(), 0);
    }
}
