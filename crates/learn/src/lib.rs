//! # frac-learn
//!
//! Supervised-learning substrate for FRaC (Cousins, Pietras, Slonim — IPPS
//! 2017). The paper trains, per feature, either a **linear support vector
//! machine** (continuous expression features, originally via libSVM) or an
//! **entropy-minimizing decision tree** (categorical SNP features, originally
//! via the Waffles toolkit), and estimates prediction-error distributions
//! with **error models** built from k-fold cross-validation.
//!
//! This crate reimplements all of that from scratch:
//!
//! * [`svr`] — L2-regularized ε-insensitive linear support vector regression
//!   solved by dual coordinate descent (the liblinear algorithm, exact for
//!   the linear kernel the paper uses).
//! * [`svc`] — linear C-SVM classification (dual coordinate descent,
//!   one-vs-rest for multi-class).
//! * [`tree`] — CART-style decision trees: entropy-minimizing classification
//!   trees and variance-minimizing regression trees.
//! * [`error`] — the paper's error models: a Gaussian fit to continuous
//!   residuals and a Laplace-smoothed confusion matrix for categorical
//!   predictions, each exposing the surprisal `−log P(true | predicted)`.
//! * [`cv`] — k-fold cross-validated predictions used to fit error models
//!   without leaking training data.
//! * [`baseline`] — constant-mean / majority-class predictors used when a
//!   feature subset is empty and as sanity baselines.
//! * [`budget`] — cooperative wall-clock/cancellation budgets polled inside
//!   the solver loops, so a stuck target degrades instead of hanging a run.
//! * [`telemetry`] — hierarchical span tracing and counters for run
//!   forensics: where each target's fit spent its time, drained into a
//!   [`telemetry::TelemetryReport`] (compile out with the `telemetry-off`
//!   feature).
//!
//! Every trainer returns the fitted model together with a [`TrainingCost`]
//! so the evaluation harness can reproduce the paper's time/memory columns
//! analytically.

#![deny(missing_docs)]
// Trainers feed the fault-isolated fit fleet in frac-core: library code
// must surface failures as `TrainError`, never panic on an Option/Result
// shortcut. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod budget;
pub mod cv;
pub mod error;
pub mod fault;
pub mod solver;
pub mod svc;
pub mod svr;
pub mod telemetry;
pub mod traits;
pub mod tree;

pub use baseline::{ConstantRegressor, MajorityClassifier};
pub use budget::{CancelHandle, RunBudget, TargetBudget};
pub use error::{ConfusionErrorModel, GaussianErrorModel};
pub use fault::TrainError;
pub use solver::{GramPolicy, SolverMode, SolverStrategy};
pub use svc::{LinearSvc, SvcConfig};
pub use svr::{LinearSvr, SvrConfig};
pub use telemetry::{TelemetryReport, TelemetrySession};
pub use traits::{
    Classifier, ClassifierTrainer, Regressor, RegressorTrainer, Trained, TrainingCost,
};
pub use tree::{ClassificationTree, RegressionTree, TreeConfig};
