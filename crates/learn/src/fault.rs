//! Fallible training: the error taxonomy of the fault-isolated fleet.
//!
//! FRaC aggregates hundreds of independent per-feature models, so one
//! degenerate training problem must never take down the whole run. Trainers
//! expose fallible entry points ([`crate::RegressorTrainer::try_train_view_warm`]
//! and the classifier analogue) that validate their inputs and inspect their
//! outputs, returning a [`TrainError`] instead of panicking or silently
//! emitting a poisoned model. The caller (frac-core's per-target fit loop)
//! reacts with a fallback ladder: retry the strict solver, substitute the
//! baseline predictor, or drop the target.

use frac_dataset::DesignView;

/// Why one model training could not produce a usable model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The design matrix is unusable (e.g. mismatched row/target counts).
    DegenerateDesign {
        /// What is wrong with the design.
        detail: String,
    },
    /// A target or design value is NaN/±Inf where a finite number is
    /// required (the caller is expected to drop or sanitize such rows).
    NonFiniteData {
        /// Which input carried the non-finite value.
        what: &'static str,
    },
    /// The solver exhausted its epoch budget without producing a finite
    /// model (diverged duals/weights), or non-convergence was injected by a
    /// fault plan.
    NonConvergence {
        /// Epochs consumed before giving up.
        epochs: u64,
    },
    /// The requested problem size would overflow allocation arithmetic.
    AllocOverflow {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// The run's wall-clock budget expired or the run was cancelled (see
    /// [`crate::budget::TargetBudget::check`]). Not retryable: a strict
    /// re-solve would only burn more of the budget that is already gone,
    /// so the fallback ladder jumps straight to the baseline predictor.
    DeadlineExceeded,
}

/// Stable marker substring of [`TrainError::DeadlineExceeded`]'s `Display`
/// output; health accounting matches on it to count deadline-degraded
/// targets without re-parsing event details structurally.
pub const DEADLINE_MARKER: &str = "wall-clock budget exceeded";

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::DegenerateDesign { detail } => {
                write!(f, "degenerate design: {detail}")
            }
            TrainError::NonFiniteData { what } => {
                write!(f, "non-finite value in {what}")
            }
            TrainError::NonConvergence { epochs } => {
                write!(f, "no finite solution after {epochs} epochs")
            }
            TrainError::AllocOverflow { rows, cols } => {
                write!(f, "allocation overflow for {rows}×{cols} problem")
            }
            TrainError::DeadlineExceeded => {
                write!(f, "{DEADLINE_MARKER} (run cancelled or deadline passed)")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl TrainError {
    /// Whether retrying with the strict solver path could plausibly help
    /// (only non-convergence is a property of the solve, not of the data).
    pub fn is_retryable(&self) -> bool {
        matches!(self, TrainError::NonConvergence { .. })
    }
}

/// Validate the shared preconditions of every trainer: row/target agreement,
/// allocation-size sanity, and finite real targets.
pub fn check_regression_problem(x: &dyn DesignView, y: &[f64]) -> Result<(), TrainError> {
    check_shape(x, y.len())?;
    if y.iter().any(|v| !v.is_finite()) {
        return Err(TrainError::NonFiniteData { what: "regression targets" });
    }
    Ok(())
}

/// Validate the shared preconditions of classifier trainers. Class codes are
/// integers, so only shape and allocation sanity apply.
pub fn check_classification_problem(x: &dyn DesignView, y: &[u32]) -> Result<(), TrainError> {
    check_shape(x, y.len())
}

fn check_shape(x: &dyn DesignView, n_targets: usize) -> Result<(), TrainError> {
    let (rows, cols) = (x.n_rows(), x.n_cols());
    if rows != n_targets {
        return Err(TrainError::DegenerateDesign {
            detail: format!("{rows} design rows for {n_targets} targets"),
        });
    }
    // A dense copy of this problem (solver scratch is O(rows + cols)) must
    // be addressable; `checked_mul` guards the 32-bit and pathological cases.
    let cells = rows.checked_mul(cols).and_then(|c| c.checked_mul(std::mem::size_of::<f64>()));
    if cells.is_none() || cells.unwrap_or(usize::MAX) > isize::MAX as usize {
        return Err(TrainError::AllocOverflow { rows, cols });
    }
    Ok(())
}

/// Whether every value of a fitted weight vector is finite — a diverged
/// coordinate-descent solve shows up as NaN/Inf weights.
pub fn all_finite<'a>(values: impl IntoIterator<Item = &'a f64>) -> bool {
    values.into_iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::DesignMatrix;

    #[test]
    fn clean_problem_passes() {
        let x = DesignMatrix::from_raw(2, 2, vec![1.0; 4]);
        assert!(check_regression_problem(&x, &[0.0, 1.0]).is_ok());
        assert!(check_classification_problem(&x, &[0, 1]).is_ok());
    }

    #[test]
    fn shape_mismatch_is_degenerate() {
        let x = DesignMatrix::from_raw(2, 2, vec![1.0; 4]);
        assert!(matches!(
            check_regression_problem(&x, &[0.0]),
            Err(TrainError::DegenerateDesign { .. })
        ));
    }

    #[test]
    fn non_finite_targets_rejected() {
        let x = DesignMatrix::from_raw(2, 1, vec![1.0, 2.0]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                check_regression_problem(&x, &[0.0, bad]),
                Err(TrainError::NonFiniteData { what: "regression targets" })
            );
        }
    }

    #[test]
    fn retryability_and_display() {
        assert!(TrainError::NonConvergence { epochs: 9 }.is_retryable());
        assert!(!TrainError::NonFiniteData { what: "x" }.is_retryable());
        assert!(!TrainError::DeadlineExceeded.is_retryable());
        let msg = TrainError::AllocOverflow { rows: 1, cols: 2 }.to_string();
        assert!(msg.contains("1×2"), "{msg}");
        assert!(TrainError::DeadlineExceeded.to_string().contains(DEADLINE_MARKER));
    }

    #[test]
    fn all_finite_detects_poison() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
