//! Per-target degradation accounting for fault-isolated runs.
//!
//! FRaC's NS score aggregates hundreds of independent per-feature models, so
//! a production run must degrade per target, not die: a degenerate column is
//! quarantined, a diverged solve retries on the strict solver, a panicking
//! trainer is replaced by the baseline predictor, and a target with nothing
//! left is dropped with the NS sum renormalized over the survivors. Every
//! one of those decisions is recorded here as a [`TargetHealth`] event inside
//! the run's [`RunHealth`], which rides on
//! [`crate::resources::ResourceReport`] and is surfaced by the CLI and
//! `perfsnapshot`. A clean run produces no events — `RunHealth` stays empty
//! and costs nothing.

use frac_dataset::QuarantineReason;

/// Which rung of the fallback ladder rescued a member fit.
///
/// The ladder is Fast → Strict → baseline → drop: a non-converged fast
/// solve retries on the strict reference solver; any other failure (or a
/// strict failure, or a panic) substitutes the baseline predictor; a member
/// that even the baseline cannot fit is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackKind {
    /// The strict reference solver replaced a non-converged fast solve.
    StrictSolver,
    /// The baseline predictor (constant mean / majority class) replaced the
    /// configured model family.
    Baseline,
}

impl std::fmt::Display for FallbackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackKind::StrictSolver => write!(f, "strict solver"),
            FallbackKind::Baseline => write!(f, "baseline predictor"),
        }
    }
}

/// What happened to one target (or one of its ensemble members).
#[derive(Debug, Clone, PartialEq)]
pub enum TargetOutcome {
    /// Poisoned (`±Inf`) cells in the target's column were rewritten to
    /// missing before training; the target then trained normally.
    Sanitized {
        /// Number of rewritten cells in this column.
        cells: usize,
    },
    /// The ingestion screen flagged the column as degenerate
    /// (zero variance / single class) and the baseline predictor was
    /// substituted without running a solver.
    Quarantined {
        /// The screening verdict.
        reason: QuarantineReason,
    },
    /// One member's fit failed and a fallback rung produced its model.
    Degraded {
        /// Input-set (ensemble member) index within the target's plan.
        member: usize,
        /// Which rung rescued the fit.
        fallback: FallbackKind,
        /// The original failure, for diagnostics.
        detail: String,
    },
    /// One ensemble member could not be fitted even by the baseline rung
    /// and was removed; the target survives on its remaining members.
    MemberDropped {
        /// Input-set (ensemble member) index within the target's plan.
        member: usize,
        /// The final failure, for diagnostics.
        detail: String,
    },
    /// The target could not be fitted at all and was removed from the
    /// model; NS scores are renormalized over the survivors.
    Dropped {
        /// Why nothing could be fitted.
        reason: String,
    },
}

impl std::fmt::Display for TargetOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetOutcome::Sanitized { cells } => {
                write!(f, "sanitized {cells} non-finite cell(s)")
            }
            TargetOutcome::Quarantined { reason } => {
                write!(f, "quarantined ({reason}); baseline substituted")
            }
            TargetOutcome::Degraded { member, fallback, detail } => {
                write!(f, "member {member} fell back to {fallback} ({detail})")
            }
            TargetOutcome::MemberDropped { member, detail } => {
                write!(f, "member {member} dropped: {detail}")
            }
            TargetOutcome::Dropped { reason } => write!(f, "dropped: {reason}"),
        }
    }
}

/// One degradation event, tied to its target feature.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetHealth {
    /// Target feature index (into the training schema).
    pub target: usize,
    /// What happened.
    pub outcome: TargetOutcome,
}

/// Health report of one fit (or several merged sequential fits).
///
/// `Default` is the clean report: zero targets, no events — exactly what a
/// run that never hit a fault produces, so equality against
/// `RunHealth::default()` is meaningful only through [`RunHealth::is_clean`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunHealth {
    /// Targets the training plan asked for.
    pub targets_planned: usize,
    /// Targets that produced a usable model (possibly degraded).
    pub targets_survived: usize,
    /// Total `±Inf` cells sanitized across the training set.
    pub sanitized_cells: usize,
    /// Every degradation, quarantine, and drop, in target order.
    pub events: Vec<TargetHealth>,
}

impl RunHealth {
    /// No degradation of any kind: every planned target fitted cleanly.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
            && self.sanitized_cells == 0
            && self.targets_survived == self.targets_planned
    }

    /// Number of dropped targets.
    pub fn n_dropped(&self) -> usize {
        self.count(|o| matches!(o, TargetOutcome::Dropped { .. }))
    }

    /// Number of quarantined (baseline-substituted) targets.
    pub fn n_quarantined(&self) -> usize {
        self.count(|o| matches!(o, TargetOutcome::Quarantined { .. }))
    }

    /// Number of member fits rescued by a fallback rung.
    pub fn n_degraded(&self) -> usize {
        self.count(|o| matches!(o, TargetOutcome::Degraded { .. }))
    }

    fn count(&self, pred: impl Fn(&TargetOutcome) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.outcome)).count()
    }

    /// All events touching one target.
    pub fn events_for(&self, target: usize) -> impl Iterator<Item = &TargetHealth> {
        self.events.iter().filter(move |e| e.target == target)
    }

    /// Fold in the health of a run executed after this one (sequential
    /// composition — ensemble members, replicates): counts add, events
    /// concatenate.
    pub fn merge_sequential(&mut self, other: &RunHealth) {
        self.targets_planned += other.targets_planned;
        self.targets_survived += other.targets_survived;
        self.sanitized_cells += other.sanitized_cells;
        self.events.extend(other.events.iter().cloned());
    }

    /// Fold in the health of a *shard* of the same run: a disjoint subset of
    /// targets fitted against the same training set, possibly in another
    /// process.
    ///
    /// Differs from [`Self::merge_sequential`] in two ways that matter for
    /// sharded runs:
    ///
    /// - `sanitized_cells` takes the max, not the sum. Every worker screens
    ///   the same full training matrix, so each shard reports the same
    ///   global sanitization count; adding them would multi-count cells.
    /// - `events` are re-sorted by target index (stably, so multiple events
    ///   on one target keep their ladder order). Shards interleave targets
    ///   round-robin, and the merged report must read identically no matter
    ///   how many shards produced it or in which order they were merged.
    pub fn merge(&mut self, other: &RunHealth) {
        self.targets_planned += other.targets_planned;
        self.targets_survived += other.targets_survived;
        self.sanitized_cells = self.sanitized_cells.max(other.sanitized_cells);
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.target);
    }

    /// One-line human summary, e.g. for CLI output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("all {} targets fitted cleanly", self.targets_planned)
        } else {
            format!(
                "{}/{} targets survived ({} quarantined, {} member fallbacks, {} dropped, {} cells sanitized)",
                self.targets_survived,
                self.targets_planned,
                self.n_quarantined(),
                self.n_degraded(),
                self.n_dropped(),
                self.sanitized_cells,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degraded_health() -> RunHealth {
        RunHealth {
            targets_planned: 4,
            targets_survived: 3,
            sanitized_cells: 2,
            events: vec![
                TargetHealth {
                    target: 0,
                    outcome: TargetOutcome::Sanitized { cells: 2 },
                },
                TargetHealth {
                    target: 1,
                    outcome: TargetOutcome::Quarantined {
                        reason: QuarantineReason::ZeroVariance,
                    },
                },
                TargetHealth {
                    target: 2,
                    outcome: TargetOutcome::Degraded {
                        member: 0,
                        fallback: FallbackKind::StrictSolver,
                        detail: "no finite solution after 60 epochs".into(),
                    },
                },
                TargetHealth {
                    target: 3,
                    outcome: TargetOutcome::Dropped { reason: "all values missing".into() },
                },
            ],
        }
    }

    #[test]
    fn default_is_clean() {
        assert!(RunHealth::default().is_clean());
        assert_eq!(RunHealth::default().summary(), "all 0 targets fitted cleanly");
    }

    #[test]
    fn counts_by_outcome_kind() {
        let h = degraded_health();
        assert!(!h.is_clean());
        assert_eq!(h.n_dropped(), 1);
        assert_eq!(h.n_quarantined(), 1);
        assert_eq!(h.n_degraded(), 1);
        assert_eq!(h.events_for(2).count(), 1);
        assert_eq!(h.events_for(7).count(), 0);
    }

    #[test]
    fn merge_adds_counts_and_concatenates_events() {
        let mut a = degraded_health();
        let b = degraded_health();
        a.merge_sequential(&b);
        assert_eq!(a.targets_planned, 8);
        assert_eq!(a.targets_survived, 6);
        assert_eq!(a.sanitized_cells, 4);
        assert_eq!(a.events.len(), 8);
    }

    #[test]
    fn shard_merge_rebalances_counts_and_orders_events_by_target() {
        // Two shards of one 5-target run over the same training matrix:
        // shard 0 took targets {0, 2, 4}, shard 1 took {1, 3}. Both saw the
        // same 2 sanitized cells (each worker screens the full matrix).
        let shard0 = RunHealth {
            targets_planned: 3,
            targets_survived: 3,
            sanitized_cells: 2,
            events: vec![
                TargetHealth { target: 0, outcome: TargetOutcome::Sanitized { cells: 2 } },
                TargetHealth {
                    target: 4,
                    outcome: TargetOutcome::Quarantined {
                        reason: QuarantineReason::ZeroVariance,
                    },
                },
            ],
        };
        let shard1 = RunHealth {
            targets_planned: 2,
            targets_survived: 1,
            sanitized_cells: 2,
            events: vec![TargetHealth {
                target: 1,
                outcome: TargetOutcome::Dropped { reason: "all values missing".into() },
            }],
        };

        // Merge in both orders: the result must be identical.
        let mut a = shard0.clone();
        a.merge(&shard1);
        let mut b = shard1.clone();
        b.merge(&shard0);
        assert_eq!(a, b);

        assert_eq!(a.targets_planned, 5);
        assert_eq!(a.targets_survived, 4);
        assert_eq!(a.sanitized_cells, 2, "same matrix — cells must not double-count");
        let order: Vec<usize> = a.events.iter().map(|e| e.target).collect();
        assert_eq!(order, vec![0, 1, 4], "events sorted by target index");
    }

    #[test]
    fn shard_merge_keeps_ladder_order_within_a_target() {
        // Two events on the same target must keep their relative (ladder)
        // order through the stable sort.
        let mut base = RunHealth {
            targets_planned: 1,
            targets_survived: 1,
            sanitized_cells: 0,
            events: vec![
                TargetHealth { target: 2, outcome: TargetOutcome::Sanitized { cells: 1 } },
                TargetHealth {
                    target: 2,
                    outcome: TargetOutcome::Degraded {
                        member: 0,
                        fallback: FallbackKind::Baseline,
                        detail: "panicked".into(),
                    },
                },
            ],
        };
        let other = RunHealth {
            targets_planned: 1,
            targets_survived: 1,
            sanitized_cells: 0,
            events: vec![TargetHealth {
                target: 0,
                outcome: TargetOutcome::Sanitized { cells: 1 },
            }],
        };
        base.merge(&other);
        assert_eq!(base.events.len(), 3);
        assert_eq!(base.events[0].target, 0);
        assert!(matches!(base.events[1].outcome, TargetOutcome::Sanitized { .. }));
        assert!(matches!(base.events[2].outcome, TargetOutcome::Degraded { .. }));
    }

    #[test]
    fn summary_mentions_every_degradation_class() {
        let s = degraded_health().summary();
        for needle in ["3/4", "1 quarantined", "1 member fallbacks", "1 dropped", "2 cells"] {
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
    }

    #[test]
    fn outcome_display_is_actionable() {
        let o = TargetOutcome::Degraded {
            member: 2,
            fallback: FallbackKind::Baseline,
            detail: "panicked".into(),
        };
        let s = o.to_string();
        assert!(s.contains("member 2") && s.contains("baseline"), "{s}");
    }
}
