//! Feature selectors for the filtering variants (paper §II-A).
//!
//! "Filter techniques identify some property of each feature, rank the
//! features by this property, and remove some features from consideration."
//! The paper evaluates **random** selection (most effective overall) and
//! **entropy** ranking (spectacular on some data sets, poor on others).

use frac_dataset::entropy::rank_by_entropy;
use frac_dataset::split::permutation;
use frac_dataset::Dataset;

/// A strategy for choosing which features survive filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSelector {
    /// Keep a uniform random subset (seeded).
    Random,
    /// Keep the highest-entropy features: the most informative ones by the
    /// plug-in (categorical) or KDE differential (real) entropy estimate.
    Entropy,
}

impl FeatureSelector {
    /// Select `⌈p · f⌉` features of `train` (at least 1). Returned indices
    /// are sorted ascending for deterministic downstream iteration.
    ///
    /// The selection looks only at the *training* data (entropies are
    /// training-set statistics), so no test leakage is possible.
    ///
    /// # Panics
    /// Panics unless `0 < p ≤ 1` and the data set has features.
    pub fn select(&self, train: &Dataset, p: f64, seed: u64) -> Vec<usize> {
        assert!(p > 0.0 && p <= 1.0, "keep fraction must be in (0, 1], got {p}");
        let f = train.n_features();
        assert!(f > 0, "cannot select from an empty data set");
        let keep = ((p * f as f64).ceil() as usize).clamp(1, f);
        let mut chosen: Vec<usize> = match self {
            FeatureSelector::Random => {
                permutation(f, seed).into_iter().take(keep).collect()
            }
            FeatureSelector::Entropy => {
                rank_by_entropy(train).into_iter().take(keep).collect()
            }
        };
        chosen.sort_unstable();
        chosen
    }

    /// Entropy-selection cost in flops (KDE resubstitution is O(n²) per
    /// real feature; categorical counting is O(n)). Random selection is
    /// effectively free. Used by the resource meter.
    pub fn selection_flops(&self, train: &Dataset) -> u64 {
        match self {
            FeatureSelector::Random => 0,
            FeatureSelector::Entropy => {
                let n = train.n_rows() as u64;
                (0..train.n_features())
                    .map(|j| {
                        if train.schema().kind(j).is_real() {
                            n * n * 4
                        } else {
                            n
                        }
                    })
                    .sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::dataset::DatasetBuilder;

    fn data() -> Dataset {
        DatasetBuilder::new()
            .categorical("low", 3, vec![0; 12]) // entropy 0
            .categorical("high", 3, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]) // ln 3
            .categorical("mid", 3, vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2]) // < ln 3
            .build()
    }

    #[test]
    fn entropy_keeps_most_informative() {
        let d = data();
        // f = 3: ⌈0.3·3⌉ = 1 keeps the top feature; ⌈0.6·3⌉ = 2 the top two.
        assert_eq!(FeatureSelector::Entropy.select(&d, 0.3, 0), vec![1]);
        assert_eq!(FeatureSelector::Entropy.select(&d, 0.6, 0), vec![1, 2]);
    }

    #[test]
    fn random_is_seeded_and_correct_size() {
        let d = data();
        let a = FeatureSelector::Random.select(&d, 0.6, 5);
        let b = FeatureSelector::Random.select(&d, 0.6, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted");
        // Different seeds eventually differ.
        let distinct = (0..20)
            .map(|s| FeatureSelector::Random.select(&d, 0.6, s))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn keep_fraction_one_keeps_everything() {
        let d = data();
        assert_eq!(FeatureSelector::Random.select(&d, 1.0, 3), vec![0, 1, 2]);
        assert_eq!(FeatureSelector::Entropy.select(&d, 1.0, 3), vec![0, 1, 2]);
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one() {
        let d = data();
        assert_eq!(FeatureSelector::Random.select(&d, 0.0001, 1).len(), 1);
    }

    #[test]
    fn ceil_rule_matches_paper_5_percent() {
        // The paper filters at p = 0.05; for 320 features that is 16.
        let cols: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut builder = DatasetBuilder::new();
        for j in 0..320 {
            builder = builder.real(format!("g{j}"), cols.clone());
        }
        let d = builder.build();
        assert_eq!(FeatureSelector::Random.select(&d, 0.05, 0).len(), 16);
    }

    #[test]
    fn selection_cost_only_for_entropy() {
        let d = data();
        assert_eq!(FeatureSelector::Random.selection_flops(&d), 0);
        assert!(FeatureSelector::Entropy.selection_flops(&d) > 0);
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn zero_fraction_rejected() {
        FeatureSelector::Random.select(&data(), 0.0, 0);
    }
}
