//! CSAX — Characterizing Systematic Anomalies in eXpression data (Noto,
//! Majidi, Edlow, Wick, Bianchi, Slonim — J. Comp. Biol. 2015, the paper's
//! ref. 7).
//!
//! The paper under reproduction describes FRaC as "the core of an approach
//! that characterizes individual anomalies by identifying dysregulated
//! molecular functions" — that approach is CSAX, and its bootstrapping
//! "over multiple FRaC runs" is one of the paper's stated cost motivations.
//! This module implements it on top of [`crate::run_variant`]:
//!
//! 1. Draw `B` bootstrap resamples of the (all-normal) training set.
//! 2. Run FRaC (any [`Variant`]) on each resample; for a query sample this
//!    yields `B` per-feature surprisal rankings.
//! 3. For every annotated *gene set* compute a GSEA-style weighted
//!    Kolmogorov–Smirnov enrichment score against each ranking.
//! 4. Aggregate per set: median enrichment across bootstraps plus the
//!    *support* (fraction of bootstrap runs ranking that set in the top
//!    decile) — the robust characterization CSAX reports.
//!
//! A sample's final CSAX anomaly score is its median NS across bootstrap
//! runs; its characterization is the gene sets ranked by median enrichment.

use crate::config::FracConfig;
use crate::variants::{run_variant, Variant};
use frac_dataset::split::derive_seed;
use frac_dataset::stats::median;
use frac_dataset::Dataset;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A named gene set (pathway / GO-term analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneSet {
    /// Display name.
    pub name: String,
    /// Member feature indices (into the data set's schema).
    pub genes: Vec<usize>,
}

impl GeneSet {
    /// Construct, deduplicating and sorting members.
    pub fn new(name: impl Into<String>, mut genes: Vec<usize>) -> Self {
        genes.sort_unstable();
        genes.dedup();
        GeneSet { name: name.into(), genes }
    }
}

/// CSAX configuration.
#[derive(Debug, Clone)]
pub struct CsaxConfig {
    /// Number of bootstrap FRaC runs (CSAX's published default regime is
    /// tens; each costs a full FRaC training).
    pub bootstraps: usize,
    /// The FRaC variant run on each resample — the paper's point is that a
    /// scalable variant here makes CSAX itself tractable.
    pub variant: Variant,
    /// Underlying FRaC configuration.
    pub frac: FracConfig,
    /// GSEA weighting exponent (0 = classic KS, 1 = score-weighted; GSEA's
    /// standard choice is 1).
    pub weight_exponent: f64,
}

impl Default for CsaxConfig {
    fn default() -> Self {
        CsaxConfig {
            bootstraps: 10,
            variant: Variant::Full,
            frac: FracConfig::default(),
            weight_exponent: 1.0,
        }
    }
}

/// Enrichment of one gene set for one sample, aggregated over bootstraps.
#[derive(Debug, Clone)]
pub struct SetEnrichment {
    /// Index into the supplied gene-set list.
    pub set: usize,
    /// Median enrichment score across bootstrap runs (in `[-1, 1]`).
    pub median_es: f64,
    /// Fraction of bootstrap runs ranking this set in the top decile of
    /// all sets — CSAX's stability measure.
    pub support: f64,
}

/// CSAX output for one test sample.
#[derive(Debug, Clone)]
pub struct SampleCharacterization {
    /// Test row index.
    pub sample: usize,
    /// Median NS across bootstrap runs (the CSAX anomaly score).
    pub anomaly_score: f64,
    /// Gene sets sorted by descending median enrichment.
    pub enriched_sets: Vec<SetEnrichment>,
}

/// GSEA-style weighted KS enrichment of `set_genes` within a ranked list.
///
/// `scores[g]` is gene `g`'s (per-sample) surprisal contribution; genes are
/// ranked descending. Hits advance the running statistic proportionally to
/// `|score|^w`, misses retreat uniformly; the ES is the extremum of the
/// running sum. Returns 0 for empty sets or sets with no scored genes.
pub fn enrichment_score(scores: &[f64], set_genes: &[usize], weight_exponent: f64) -> f64 {
    let n = scores.len();
    if n == 0 || set_genes.is_empty() {
        return 0.0;
    }
    let in_set: Vec<bool> = {
        let mut mask = vec![false; n];
        for &g in set_genes {
            if g < n {
                mask[g] = true;
            }
        }
        mask
    };
    let n_hits = in_set.iter().filter(|&&h| h).count();
    if n_hits == 0 || n_hits == n {
        return 0.0;
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
    });

    let hit_norm: f64 = order
        .iter()
        .filter(|&&g| in_set[g])
        .map(|&g| scores[g].abs().powf(weight_exponent))
        .sum();
    let miss_step = 1.0 / (n - n_hits) as f64;

    let mut running = 0.0f64;
    let mut best = 0.0f64;
    for &g in &order {
        if in_set[g] {
            if hit_norm > 0.0 {
                running += scores[g].abs().powf(weight_exponent) / hit_norm;
            } else {
                running += 1.0 / n_hits as f64;
            }
        } else {
            running -= miss_step;
        }
        if running.abs() > best.abs() {
            best = running;
        }
    }
    best
}

/// Run CSAX: characterize every test sample by bootstrapped FRaC runs and
/// gene-set enrichment.
///
/// # Panics
/// Panics if `bootstraps == 0`, `gene_sets` is empty, or schemas differ.
pub fn characterize(
    train: &Dataset,
    test: &Dataset,
    gene_sets: &[GeneSet],
    config: &CsaxConfig,
) -> Vec<SampleCharacterization> {
    assert!(config.bootstraps >= 1, "need at least one bootstrap run");
    assert!(!gene_sets.is_empty(), "need at least one gene set");
    assert_eq!(train.schema(), test.schema(), "train and test must share a schema");

    let n_test = test.n_rows();
    let n_features = train.n_features();
    let n_sets = gene_sets.len();
    // es[b][sample][set], ns[b][sample]
    let mut all_es: Vec<Vec<Vec<f64>>> = Vec::with_capacity(config.bootstraps);
    let mut all_ns: Vec<Vec<f64>> = Vec::with_capacity(config.bootstraps);

    for b in 0..config.bootstraps {
        // Bootstrap resample of training rows (with replacement).
        let bseed = derive_seed(config.frac.seed, 0xC5A_0000 + b as u64);
        let mut rng = StdRng::seed_from_u64(bseed);
        let rows: Vec<usize> =
            (0..train.n_rows()).map(|_| rng.random_range(0..train.n_rows())).collect();
        let boot = train.select_rows(&rows);

        let cfg = FracConfig { seed: derive_seed(bseed, 1), ..config.frac };
        let out = run_variant(&boot, test, &config.variant, &cfg);

        // Dense per-gene score vector per sample (unscored genes = 0, e.g.
        // under a filtering variant).
        let mut es_b = Vec::with_capacity(n_test);
        for r in 0..n_test {
            let mut scores = vec![0.0f64; n_features];
            for (idx, &g) in out.contributions.feature_ids.iter().enumerate() {
                if g < n_features {
                    scores[g] = out.contributions.values[idx][r];
                }
            }
            let es: Vec<f64> = gene_sets
                .iter()
                .map(|s| enrichment_score(&scores, &s.genes, config.weight_exponent))
                .collect();
            es_b.push(es);
        }
        all_es.push(es_b);
        all_ns.push(out.ns);
    }

    // Aggregate per sample.
    (0..n_test)
        .map(|r| {
            let ns_runs: Vec<f64> = all_ns.iter().map(|ns| ns[r]).collect();
            let anomaly_score = median(&ns_runs).unwrap_or(0.0);

            // Support: per bootstrap, which sets land in the top decile?
            let top_k = (n_sets as f64 * 0.1).ceil() as usize;
            let mut top_counts = vec![0usize; n_sets];
            for es_b in &all_es {
                let mut idx: Vec<usize> = (0..n_sets).collect();
                idx.sort_by(|&a, &b| {
                    es_b[r][b].partial_cmp(&es_b[r][a]).unwrap_or(std::cmp::Ordering::Equal)
                });
                for &s in idx.iter().take(top_k) {
                    top_counts[s] += 1;
                }
            }

            let mut enriched_sets: Vec<SetEnrichment> = (0..n_sets)
                .map(|s| {
                    let runs: Vec<f64> = all_es.iter().map(|es_b| es_b[r][s]).collect();
                    SetEnrichment {
                        set: s,
                        median_es: median(&runs).unwrap_or(0.0),
                        support: top_counts[s] as f64 / config.bootstraps as f64,
                    }
                })
                .collect();
            enriched_sets.sort_by(|a, b| {
                b.median_es.partial_cmp(&a.median_es).unwrap_or(std::cmp::Ordering::Equal)
            });
            SampleCharacterization { sample: r, anomaly_score, enriched_sets }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enrichment_of_top_ranked_set_is_positive() {
        // Genes 0..5 carry all the signal; the set {0..5} must be strongly
        // positively enriched, a disjoint set negatively-or-near-zero.
        let mut scores = vec![0.1f64; 20];
        for s in scores.iter_mut().take(5) {
            *s = 5.0;
        }
        let hot = enrichment_score(&scores, &[0, 1, 2, 3, 4], 1.0);
        let cold = enrichment_score(&scores, &[15, 16, 17, 18, 19], 1.0);
        assert!(hot > 0.8, "hot ES = {hot}");
        assert!(cold < hot, "cold ES = {cold}");
    }

    #[test]
    fn enrichment_bounded_by_one() {
        let scores: Vec<f64> = (0..30).map(|i| i as f64).collect();
        for genes in [vec![29, 28], vec![0, 1, 2], (0..15).collect::<Vec<_>>()] {
            let es = enrichment_score(&scores, &genes, 1.0);
            assert!(es.abs() <= 1.0 + 1e-12, "ES {es} for {genes:?}");
        }
    }

    #[test]
    fn empty_and_degenerate_sets_score_zero() {
        let scores = vec![1.0, 2.0, 3.0];
        assert_eq!(enrichment_score(&scores, &[], 1.0), 0.0);
        assert_eq!(enrichment_score(&scores, &[0, 1, 2], 1.0), 0.0); // all genes
        assert_eq!(enrichment_score(&scores, &[99], 1.0), 0.0); // out of range
        assert_eq!(enrichment_score(&[], &[0], 1.0), 0.0);
    }

    #[test]
    fn unweighted_ks_ignores_magnitudes() {
        // With w = 0, only rank order matters: doubling scores is a no-op.
        let scores = vec![4.0, 3.0, 2.0, 1.0, 0.5, 0.1];
        let doubled: Vec<f64> = scores.iter().map(|s| s * 2.0).collect();
        let set = [0usize, 1];
        assert!(
            (enrichment_score(&scores, &set, 0.0) - enrichment_score(&doubled, &set, 0.0))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn gene_set_constructor_dedups() {
        let s = GeneSet::new("m0", vec![3, 1, 3, 2, 1]);
        assert_eq!(s.genes, vec![1, 2, 3]);
    }
}
