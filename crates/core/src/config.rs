//! FRaC configuration: model families, CV folds, seeds.

use frac_learn::tree::TreeConfig;
use frac_learn::{SolverMode, SolverStrategy, SvcConfig, SvrConfig};

/// Which model family learns real-valued target features.
#[derive(Debug, Clone, Copy)]
pub enum RealModel {
    /// Linear ε-SVR — the paper's choice for expression data.
    Svr(SvrConfig),
    /// Regression tree — used in the JL-projected space on SNP data.
    Tree(TreeConfig),
    /// Constant mean predictor (baseline / degenerate fallback).
    Constant,
}

/// Which model family learns categorical target features.
#[derive(Debug, Clone, Copy)]
pub enum CatModel {
    /// Decision tree — the paper's choice for SNP data.
    Tree(TreeConfig),
    /// Linear SVM (one-vs-rest) — the paper found this inferior on SNP
    /// data; kept for the tree-vs-SVM ablation.
    Svc(SvcConfig),
    /// Majority-class predictor (baseline / degenerate fallback).
    Majority,
}

/// Full configuration of a FRaC run.
#[derive(Debug, Clone, Copy)]
pub struct FracConfig {
    /// Cross-validation folds for error-model fitting (paper: k-fold CV).
    pub cv_folds: usize,
    /// Whether to z-score real input features (recommended for SVMs).
    pub standardize: bool,
    /// Model family for real targets.
    pub real_model: RealModel,
    /// Model family for categorical targets.
    pub cat_model: CatModel,
    /// Master seed: all per-feature, per-fold and per-member randomness is
    /// derived from it.
    pub seed: u64,
}

impl Default for FracConfig {
    fn default() -> Self {
        FracConfig {
            cv_folds: 5,
            standardize: true,
            real_model: RealModel::Svr(SvrConfig::default()),
            cat_model: CatModel::Tree(TreeConfig::default()),
            seed: 0xF12AC,
        }
    }
}

impl FracConfig {
    /// The paper's expression-data configuration: linear SVR everywhere
    /// real, trees for any categorical features.
    pub fn expression() -> Self {
        FracConfig::default()
    }

    /// The paper's SNP-data configuration: decision trees (SVMs "did not
    /// appear to work well on the discrete SNP data").
    pub fn snp() -> Self {
        FracConfig {
            real_model: RealModel::Tree(TreeConfig::default()),
            cat_model: CatModel::Tree(TreeConfig::default()),
            ..FracConfig::default()
        }
    }

    /// Replace the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Content fingerprint of the full configuration, used by the run
    /// journal to refuse resuming under a different config. Hashes the
    /// `Debug` rendering — every field (model families and their
    /// hyperparameters, folds, seed) feeds the hash, and floats render
    /// bit-exactly, so two configs collide only if they are behaviourally
    /// identical. Not a stable cross-release format: a journal is a
    /// crash-recovery artifact, not an archive.
    pub fn content_hash(&self) -> u64 {
        frac_dataset::crc::fnv64(format!("{self:?}").as_bytes())
    }

    /// Select the SVM solver path (builder style): [`SolverMode::Fast`]
    /// (shrinking + warm starts + blocked kernels, the default) or
    /// [`SolverMode::Strict`] (the reference solver the fast path is
    /// validated against). A no-op for tree/baseline model families, which
    /// have a single implementation.
    pub fn with_solver_mode(mut self, mode: SolverMode) -> Self {
        if let RealModel::Svr(cfg) = &mut self.real_model {
            cfg.mode = mode;
        }
        if let CatModel::Svc(cfg) = &mut self.cat_model {
            cfg.mode = mode;
        }
        self
    }

    /// Select the fast-path SVM execution strategy (builder style):
    /// [`SolverStrategy::Auto`] (cost-model selection per solve, the
    /// default), [`SolverStrategy::Gram`] (always the Gram-matrix dual
    /// loop), or [`SolverStrategy::Primal`] (always primal maintenance).
    /// Honoured only on the [`SolverMode::Fast`] path; a no-op for
    /// tree/baseline model families.
    pub fn with_solver_strategy(mut self, strategy: SolverStrategy) -> Self {
        if let RealModel::Svr(cfg) = &mut self.real_model {
            cfg.strategy = strategy;
        }
        if let CatModel::Svc(cfg) = &mut self.cat_model {
            cfg.strategy = strategy;
        }
        self
    }

    /// Enable f32-compute/f64-accumulate gradient dot products in the SVM
    /// duals (builder style). Honoured only on the [`SolverMode::Fast`]
    /// path — strict solves stay exact f64 regardless. A no-op for
    /// tree/baseline model families.
    pub fn with_fast_f32(mut self, enabled: bool) -> Self {
        if let RealModel::Svr(cfg) = &mut self.real_model {
            cfg.f32_compute = enabled;
        }
        if let CatModel::Svc(cfg) = &mut self.cat_model {
            cfg.f32_compute = enabled;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_protocol() {
        let c = FracConfig::default();
        assert_eq!(c.cv_folds, 5);
        assert!(c.standardize);
        assert!(matches!(c.real_model, RealModel::Svr(_)));
        assert!(matches!(c.cat_model, CatModel::Tree(_)));
    }

    #[test]
    fn snp_config_uses_trees_for_everything() {
        let c = FracConfig::snp();
        assert!(matches!(c.real_model, RealModel::Tree(_)));
        assert!(matches!(c.cat_model, CatModel::Tree(_)));
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let c = FracConfig::default().with_seed(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.cv_folds, FracConfig::default().cv_folds);
    }
}
