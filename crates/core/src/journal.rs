//! Write-ahead run journal: crash-safe checkpointing of per-target fits.
//!
//! A full FRaC training run fits one model per feature and can take hours;
//! a crash (OOM kill, node preemption, power loss) should cost at most the
//! target that was in flight, not the whole run. The journal makes that
//! true: as each target finishes, its fitted model, health events, and cost
//! counters are appended to the journal file as one framed, checksummed,
//! fsynced record. On resume the journal is scanned, any torn trailing
//! record is truncated away (never fatal — a kill mid-`write` is the
//! expected case), the completed targets are reloaded, and training
//! continues with only the remaining ones.
//!
//! # File format
//!
//! A header, then zero or more records:
//!
//! ```text
//! fracjournal 1
//! config <hex u64>            FNV-1a of the FracConfig (Debug rendering)
//! dataset <hex u64>           Dataset::fingerprint() of the training set
//! plan <hex u64>              TrainingPlan::content_hash()
//! planned <n>                 number of targets the plan asked for
//! endheader
//! rec <body_len> <crc32 hex>
//! <body_len bytes of record body>
//! rec ...
//! ```
//!
//! Each record body is itself line-oriented text:
//!
//! ```text
//! target <t>
//! status fitted|dropped
//! flops <u64>
//! transient <u64>
//! model_bytes <u64>
//! n_models <u64>
//! events <k>
//! ev sanitized <cells>
//! ev quarantined allmissing|zerovariance|singleclass <class>|nonfinite <cells>
//! ev degraded <member> strict|baseline <detail…>
//! ev memberdropped <member> <detail…>
//! ev dropped <reason…>
//! feature <t>                 (persist feature section, only when fitted)
//! …
//! ```
//!
//! The feature section is byte-identical to the one in the persisted model
//! format ([`crate::persist`]), so a model assembled from journal records
//! round-trips bit-exactly. SVM warm-start duals are *not* journaled — they
//! only affect solve trajectories, never (in strict mode) results.
//!
//! # Integrity rules
//!
//! * A valid header whose hashes differ from the current run's is an
//!   **error** ([`JournalError::Mismatch`]) — resuming someone else's run
//!   silently would corrupt results.
//! * A torn header (file killed mid-header-write) makes the journal
//!   **fresh**: it is truncated and rewritten. A file whose first line is
//!   not the journal magic is an error, never truncated — it is probably
//!   not ours.
//! * The first record whose frame, checksum, or body fails to validate
//!   ends the valid region; the file is truncated there and appends
//!   continue from that offset.

use crate::health::{FallbackKind, TargetHealth, TargetOutcome};
use crate::model::FeatureModel;
use crate::persist::{parse_feature, write_feature};
use frac_dataset::crc::crc32;
use frac_dataset::textio::{TextReader, TextWriter};
use frac_dataset::QuarantineReason;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How long the fit's journal writer thread lets written records sit
/// before forcing them to disk. Bounds both the flush rate (at most one
/// `fdatasync` per interval, keeping journal overhead off the solvers) and
/// the window of completed targets a crash can lose.
const SYNC_INTERVAL: std::time::Duration = std::time::Duration::from_millis(50);

const JOURNAL_MAGIC: &str = "fracjournal";
const JOURNAL_VERSION: u32 = 1;

/// Compatibility header of a run journal: a resumed run must match every
/// fingerprint or the journal's records are meaningless for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`crate::config::FracConfig::content_hash`] of the run's config.
    pub config_hash: u64,
    /// [`frac_dataset::Dataset::fingerprint`] of the (unsanitized) training set.
    pub dataset_fingerprint: u64,
    /// [`crate::plan::TrainingPlan::content_hash`] of the training plan.
    pub plan_hash: u64,
    /// Number of targets the plan asked for.
    pub planned: usize,
}

/// What went wrong opening, scanning, or appending to a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a readable journal (wrong magic, or a
    /// checksum-valid record whose body does not parse — a format bug or
    /// version skew, never a torn write).
    Corrupt(String),
    /// The journal belongs to a different run (config, dataset, or plan
    /// fingerprint differs).
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt(m) => write!(f, "journal corrupt: {m}"),
            JournalError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One completed target, as recorded in (or reloaded from) the journal.
///
/// `feature` is `None` for a target that completed by being *dropped*
/// (quarantined all-missing or every member failed) — that outcome is
/// final and must also survive a resume, or the run would pointlessly
/// re-attempt a hopeless target.
pub struct TargetRecord {
    /// Target feature index.
    pub target: usize,
    pub(crate) feature: Option<FeatureModel>,
    pub(crate) health: Vec<TargetOutcome>,
    pub(crate) flops: u64,
    pub(crate) transient: u64,
    pub(crate) model_bytes: u64,
    pub(crate) n_models: u64,
}

impl TargetRecord {
    fn as_parts(&self) -> RecordParts<'_> {
        RecordParts {
            target: self.target,
            feature: self.feature.as_ref(),
            outcomes: self.health.iter().collect(),
            flops: self.flops,
            transient: self.transient,
            model_bytes: self.model_bytes,
            n_models: self.n_models,
        }
    }
}

/// Borrowed form of a journal record, for appending straight out of the
/// fit loop without cloning the fitted model.
pub(crate) struct RecordParts<'a> {
    pub(crate) target: usize,
    pub(crate) feature: Option<&'a FeatureModel>,
    pub(crate) outcomes: Vec<&'a TargetOutcome>,
    pub(crate) flops: u64,
    pub(crate) transient: u64,
    pub(crate) model_bytes: u64,
    pub(crate) n_models: u64,
}

/// Read-only scan result: what a journal file currently holds, plus the
/// byte geometry the crash tests truncate at.
pub struct JournalScan {
    /// The parsed header, `None` when the file is empty or its header is
    /// torn (in both cases a fresh header will be written on open).
    pub header: Option<JournalHeader>,
    /// Byte offset just past the header.
    pub header_end: u64,
    /// Byte offset just past each valid record, in file order.
    pub record_ends: Vec<u64>,
    /// Length of the valid prefix (header + intact records); any bytes
    /// beyond this are a torn tail.
    pub valid_len: u64,
    /// The reloaded records themselves.
    pub records: Vec<TargetRecord>,
}

/// An open, appendable run journal.
///
/// `append` is safe to call from rayon worker closures: writes are
/// serialized through an internal mutex and each record is fsynced before
/// `append` returns, so a completed target is durable the moment its
/// record is on disk. The parallel fit loop instead hands serialized
/// record bodies to a dedicated writer thread (`RunJournal::write_loop`)
/// that frames, checksums, and writes them as they arrive but flushes at
/// most once per `SYNC_INTERVAL` (plus once at shutdown, before the fit
/// returns) — keeping disk latency off the solver threads entirely. A
/// failed append marks the journal broken (checked via
/// [`RunJournal::is_broken`]); the fit itself continues — losing
/// checkpoint durability degrades resume, never the run's results.
pub struct RunJournal {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    broken: AtomicBool,
}

impl RunJournal {
    /// Create a fresh journal at `path` (truncating any existing file),
    /// write and fsync the header.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> Result<RunJournal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(header_text(header).as_bytes())?;
        file.sync_data()?;
        sync_parent_dir(&path);
        Ok(Self::from_file(file, path))
    }

    fn from_file(file: std::fs::File, path: PathBuf) -> RunJournal {
        RunJournal {
            file: Mutex::new(file),
            path,
            broken: AtomicBool::new(false),
        }
    }

    /// Open `path` for a run described by `expected`: scan it, truncate any
    /// torn tail, and return the journal (positioned for append) together
    /// with the records already completed.
    ///
    /// A missing or empty file — or one whose header write was itself torn
    /// — becomes a fresh journal. A valid header that does not match
    /// `expected` is a [`JournalError::Mismatch`].
    pub fn open_or_create(
        path: impl AsRef<Path>,
        expected: &JournalHeader,
    ) -> Result<(RunJournal, Vec<TargetRecord>), JournalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            return Ok((Self::create(&path, expected)?, Vec::new()));
        }
        let scan = scan_bytes(&bytes)?;
        let header = match scan.header {
            None => {
                // Torn header: the only thing ever written was a partial
                // header, so nothing of value is lost by starting over.
                return Ok((Self::create(&path, expected)?, Vec::new()));
            }
            Some(h) => h,
        };
        if header != *expected {
            return Err(JournalError::Mismatch(mismatch_detail(&header, expected)));
        }
        if (scan.valid_len as usize) < bytes.len() {
            // Torn tail from a mid-append kill: drop it so the next append
            // starts at a record boundary.
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.valid_len)?;
            f.sync_data()?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok((Self::from_file(file, path), scan.records))
    }

    /// Scan a journal file without opening it for writing — the crash
    /// tests' view of record geometry, and the CLI's way to inspect a
    /// journal. Does not modify the file.
    pub fn scan(path: impl AsRef<Path>) -> Result<JournalScan, JournalError> {
        let bytes = std::fs::read(path.as_ref())?;
        if bytes.is_empty() {
            return Ok(JournalScan {
                header: None,
                header_end: 0,
                record_ends: Vec::new(),
                valid_len: 0,
                records: Vec::new(),
            });
        }
        scan_bytes(&bytes)
    }

    /// Append one completed-target record: frame, checksum, write, fsync.
    /// On failure the journal is marked broken and the error returned; the
    /// caller may keep fitting (resume will simply refit this target).
    pub fn append(&self, rec: &TargetRecord) -> Result<(), JournalError> {
        self.append_parts(&rec.as_parts())
    }

    /// [`RunJournal::append`] over borrowed parts — the fit loop's form,
    /// which avoids cloning a freshly fitted feature model just to log it.
    pub(crate) fn append_parts(&self, rec: &RecordParts<'_>) -> Result<(), JournalError> {
        self.append_bodies(std::iter::once(record_body(rec)))
    }

    /// Frame, checksum, and write a batch of pre-serialized record bodies,
    /// then fsync once. On failure the journal is marked broken and the
    /// error returned; the caller may keep fitting (resume will simply
    /// refit the unlogged targets).
    fn append_bodies(&self, bodies: impl Iterator<Item = String>) -> Result<(), JournalError> {
        self.write_bodies(bodies)?;
        self.sync()
    }

    /// Frame, checksum, and write record bodies without flushing. The whole
    /// batch is framed into one buffer before the file lock is taken and
    /// written with a single `write_all` — one syscall per flush window
    /// instead of one per record, which is most of the journal overhead on
    /// fast many-target workloads. Marks the journal broken on failure.
    fn write_bodies(&self, bodies: impl Iterator<Item = String>) -> Result<(), JournalError> {
        use std::fmt::Write as _;
        let mut buf = String::new();
        let mut n_records = 0usize;
        for body in bodies {
            let _ = writeln!(buf, "rec {} {:08x}", body.len(), crc32(body.as_bytes()));
            buf.push_str(&body);
            n_records += 1;
        }
        if buf.is_empty() {
            return Ok(());
        }
        let result = (|| -> Result<(), JournalError> {
            let mut file = match self.file.lock() {
                Ok(f) => f,
                Err(poisoned) => poisoned.into_inner(),
            };
            file.write_all(buf.as_bytes())?;
            Ok(())
        })();
        if result.is_err() {
            self.broken.store(true, Ordering::Relaxed);
        } else {
            // Fault-injection hook: an armed abort-after budget dies here,
            // at the record boundary, once the write has reached the file.
            crate::fault::note_journal_records_appended(n_records);
        }
        result
    }

    /// Flush written records to disk. Marks the journal broken on failure.
    fn sync(&self) -> Result<(), JournalError> {
        let result = (|| -> Result<(), JournalError> {
            let file = match self.file.lock() {
                Ok(f) => f,
                Err(poisoned) => poisoned.into_inner(),
            };
            file.sync_data()?;
            Ok(())
        })();
        if result.is_err() {
            self.broken.store(true, Ordering::Relaxed);
        }
        result
    }

    /// Writer-thread loop for the parallel fit: drain serialized record
    /// bodies from `rx`, write them as they arrive, and `fdatasync` at
    /// most once per [`SYNC_INTERVAL`] plus once at shutdown — even on a
    /// filesystem where each flush forces a journal commit, a fleet of
    /// finishing targets costs a bounded number of flushes rather than one
    /// per target. Returns when every sender is dropped and the channel is
    /// drained; the fit joins this thread before returning, so every
    /// record handed over is durable once the fit completes. A mid-run
    /// crash can lose at most the last `SYNC_INTERVAL` of completed
    /// targets (plus an in-flight torn tail), which resume simply refits.
    /// Errors mark the journal broken and the loop keeps draining
    /// (discarding) so senders never block on a dead disk.
    pub(crate) fn write_loop(&self, rx: std::sync::mpsc::Receiver<String>) {
        use std::sync::mpsc::RecvTimeoutError;
        // `None` = everything written is synced; `Some(t)` = unsynced
        // records on disk, flush due at `t`.
        let mut sync_due: Option<std::time::Instant> = None;
        loop {
            let first = match sync_due {
                None => match rx.recv() {
                    Ok(b) => Some(b),
                    Err(_) => break,
                },
                Some(due) => {
                    let wait = due.saturating_duration_since(std::time::Instant::now());
                    match rx.recv_timeout(wait) {
                        Ok(b) => Some(b),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            if let Some(first) = first {
                let batch =
                    std::iter::once(first).chain(std::iter::from_fn(|| rx.try_recv().ok()));
                if self.is_broken() {
                    batch.for_each(drop);
                } else if self.write_bodies(batch).is_ok() && sync_due.is_none() {
                    sync_due = Some(std::time::Instant::now() + SYNC_INTERVAL);
                }
            }
            if let Some(due) = sync_due {
                if self.is_broken() {
                    sync_due = None;
                } else if std::time::Instant::now() >= due {
                    let _ = self.sync();
                    sync_due = None;
                }
            }
        }
        if sync_due.is_some() && !self.is_broken() {
            let _ = self.sync();
        }
    }

    /// Whether any append has failed since the journal was opened.
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Relaxed)
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Best-effort fsync of a path's parent directory, so a freshly created
/// journal survives power loss of the directory entry itself.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

fn header_text(h: &JournalHeader) -> String {
    format!(
        "{JOURNAL_MAGIC} {JOURNAL_VERSION}\nconfig {:016x}\ndataset {:016x}\nplan {:016x}\nplanned {}\nendheader\n",
        h.config_hash, h.dataset_fingerprint, h.plan_hash, h.planned
    )
}

pub(crate) fn mismatch_detail(found: &JournalHeader, expected: &JournalHeader) -> String {
    // Name each differing hash with its found/expected values: a stale or
    // wrong-shard journal must be diagnosable from the CLI message alone
    // (e.g. "plan differs" pinpoints a journal from another shard of the
    // same run, where config and dataset still agree).
    let mut parts = Vec::new();
    if found.config_hash != expected.config_hash {
        parts.push(format!(
            "config hash {:016x}, expected {:016x}",
            found.config_hash, expected.config_hash
        ));
    }
    if found.dataset_fingerprint != expected.dataset_fingerprint {
        parts.push(format!(
            "dataset fingerprint {:016x}, expected {:016x}",
            found.dataset_fingerprint, expected.dataset_fingerprint
        ));
    }
    if found.plan_hash != expected.plan_hash {
        parts.push(format!(
            "training plan hash {:016x}, expected {:016x}",
            found.plan_hash, expected.plan_hash
        ));
    }
    if found.planned != expected.planned {
        parts.push(format!(
            "planned target count {}, expected {}",
            found.planned, expected.planned
        ));
    }
    format!(
        "journal was written by a different run ({}); \
         delete it or point --journal elsewhere to start fresh",
        parts.join("; ")
    )
}

/// Read one `\n`-terminated line starting at `pos`. `None` when no full
/// line is available (torn write) or the line is not UTF-8.
fn read_line(bytes: &[u8], pos: usize) -> Option<(&str, usize)> {
    let rest = bytes.get(pos..)?;
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&rest[..nl]).ok()?;
    Some((line, pos + nl + 1))
}

fn parse_hex_field(line: &str, tag: &str) -> Option<u64> {
    let rest = line.strip_prefix(tag)?.strip_prefix(' ')?;
    u64::from_str_radix(rest.trim(), 16).ok()
}

/// Parse the header region. `Ok(None)` means torn-but-ours (start fresh);
/// `Err` means the file is not a journal at all.
fn parse_header(bytes: &[u8]) -> Result<Option<(JournalHeader, usize)>, JournalError> {
    let Some((first, mut pos)) = read_line(bytes, 0) else {
        // No complete first line. If what's there is a prefix of our magic
        // line it is a torn header; anything else is not our file.
        let prefix = format!("{JOURNAL_MAGIC} {JOURNAL_VERSION}");
        return if prefix.as_bytes().starts_with(bytes) {
            Ok(None)
        } else {
            Err(JournalError::Corrupt("not a fracjournal file".into()))
        };
    };
    let mut fields = first.split_whitespace();
    if fields.next() != Some(JOURNAL_MAGIC) {
        return Err(JournalError::Corrupt("not a fracjournal file".into()));
    }
    match fields.next().and_then(|v| v.parse::<u32>().ok()) {
        Some(v) if v <= JOURNAL_VERSION => {}
        Some(v) => {
            return Err(JournalError::Corrupt(format!("unsupported journal version {v}")));
        }
        None => return Ok(None),
    }
    let mut take_hex = |tag: &str| -> Result<Option<u64>, JournalError> {
        match read_line(bytes, pos) {
            None => Ok(None),
            Some((line, next)) => match parse_hex_field(line, tag) {
                Some(v) => {
                    pos = next;
                    Ok(Some(v))
                }
                None => Ok(None),
            },
        }
    };
    let Some(config_hash) = take_hex("config")? else { return Ok(None) };
    let Some(dataset_fingerprint) = take_hex("dataset")? else { return Ok(None) };
    let Some(plan_hash) = take_hex("plan")? else { return Ok(None) };
    let planned = match read_line(bytes, pos) {
        Some((line, next)) => match line
            .strip_prefix("planned ")
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(v) => {
                pos = next;
                v
            }
            None => return Ok(None),
        },
        None => return Ok(None),
    };
    match read_line(bytes, pos) {
        Some(("endheader", next)) => Ok(Some((
            JournalHeader { config_hash, dataset_fingerprint, plan_hash, planned },
            next,
        ))),
        _ => Ok(None),
    }
}

fn scan_bytes(bytes: &[u8]) -> Result<JournalScan, JournalError> {
    let Some((header, header_end)) = parse_header(bytes)? else {
        return Ok(JournalScan {
            header: None,
            header_end: 0,
            record_ends: Vec::new(),
            valid_len: 0,
            records: Vec::new(),
        });
    };
    let mut pos = header_end;
    let mut record_ends = Vec::new();
    let mut records = Vec::new();
    while pos < bytes.len() {
        let Some((line, body_start)) = read_line(bytes, pos) else { break };
        let mut fields = line.split_whitespace();
        if fields.next() != Some("rec") {
            break;
        }
        let (Some(len), Some(crc)) = (
            fields.next().and_then(|v| v.parse::<usize>().ok()),
            fields.next().and_then(|v| u32::from_str_radix(v, 16).ok()),
        ) else {
            break;
        };
        let Some(body) = bytes.get(body_start..body_start + len) else { break };
        if crc32(body) != crc {
            break;
        }
        // The frame checksum passed, so these are exactly the bytes a
        // writer committed: a parse failure here is format skew, not a
        // torn write, and silently truncating would discard good work.
        let text = std::str::from_utf8(body)
            .map_err(|_| JournalError::Corrupt("record body is not UTF-8".into()))?;
        let rec = parse_record_body(text)?;
        records.push(rec);
        pos = body_start + len;
        record_ends.push(pos as u64);
    }
    Ok(JournalScan {
        header: Some(header),
        header_end: header_end as u64,
        record_ends,
        valid_len: pos as u64,
        records,
    })
}

/// Newlines inside free-text diagnostics would break the line framing.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

fn write_event(w: &mut TextWriter, outcome: &TargetOutcome) {
    match outcome {
        TargetOutcome::Sanitized { cells } => w.line("ev", ["sanitized".into(), cells.to_string()]),
        TargetOutcome::Quarantined { reason } => match reason {
            QuarantineReason::AllMissing => w.line("ev", ["quarantined", "allmissing"]),
            QuarantineReason::ZeroVariance => w.line("ev", ["quarantined", "zerovariance"]),
            QuarantineReason::SingleClass { class } => {
                w.line("ev", ["quarantined".into(), "singleclass".into(), class.to_string()])
            }
            QuarantineReason::NonFinite { cells } => {
                w.line("ev", ["quarantined".into(), "nonfinite".into(), cells.to_string()])
            }
        },
        TargetOutcome::Degraded { member, fallback, detail } => {
            let rung = match fallback {
                FallbackKind::StrictSolver => "strict",
                FallbackKind::Baseline => "baseline",
            };
            w.line(
                "ev",
                ["degraded".into(), member.to_string(), rung.into(), one_line(detail)],
            )
        }
        TargetOutcome::MemberDropped { member, detail } => w.line(
            "ev",
            ["memberdropped".into(), member.to_string(), one_line(detail)],
        ),
        TargetOutcome::Dropped { reason } => {
            w.line("ev", ["dropped".into(), one_line(reason)])
        }
    }
}

fn parse_event(fields: &[&str]) -> Result<TargetOutcome, JournalError> {
    let bad = || JournalError::Corrupt(format!("bad event line: ev {}", fields.join(" ")));
    match fields.first().copied() {
        Some("sanitized") => {
            let cells = fields.get(1).and_then(|v| v.parse().ok()).ok_or_else(bad)?;
            Ok(TargetOutcome::Sanitized { cells })
        }
        Some("quarantined") => {
            let reason = match fields.get(1).copied() {
                Some("allmissing") => QuarantineReason::AllMissing,
                Some("zerovariance") => QuarantineReason::ZeroVariance,
                Some("singleclass") => QuarantineReason::SingleClass {
                    class: fields.get(2).and_then(|v| v.parse().ok()).ok_or_else(bad)?,
                },
                Some("nonfinite") => QuarantineReason::NonFinite {
                    cells: fields.get(2).and_then(|v| v.parse().ok()).ok_or_else(bad)?,
                },
                _ => return Err(bad()),
            };
            Ok(TargetOutcome::Quarantined { reason })
        }
        Some("degraded") => {
            let member = fields.get(1).and_then(|v| v.parse().ok()).ok_or_else(bad)?;
            let fallback = match fields.get(2).copied() {
                Some("strict") => FallbackKind::StrictSolver,
                Some("baseline") => FallbackKind::Baseline,
                _ => return Err(bad()),
            };
            Ok(TargetOutcome::Degraded {
                member,
                fallback,
                detail: fields[3..].join(" "),
            })
        }
        Some("memberdropped") => {
            let member = fields.get(1).and_then(|v| v.parse().ok()).ok_or_else(bad)?;
            Ok(TargetOutcome::MemberDropped { member, detail: fields[2..].join(" ") })
        }
        Some("dropped") => Ok(TargetOutcome::Dropped { reason: fields[1..].join(" ") }),
        _ => Err(bad()),
    }
}

pub(crate) fn record_body(rec: &RecordParts<'_>) -> String {
    let mut w = TextWriter::new();
    w.line("target", [rec.target]);
    w.line("status", [if rec.feature.is_some() { "fitted" } else { "dropped" }]);
    w.line("flops", [rec.flops]);
    w.line("transient", [rec.transient]);
    w.line("model_bytes", [rec.model_bytes]);
    w.line("n_models", [rec.n_models]);
    w.line("events", [rec.outcomes.len()]);
    for outcome in &rec.outcomes {
        write_event(&mut w, outcome);
    }
    if let Some(fm) = rec.feature {
        write_feature(&mut w, fm);
    }
    w.finish()
}

fn parse_record_body(text: &str) -> Result<TargetRecord, JournalError> {
    let corrupt = |e: frac_dataset::textio::TextError| JournalError::Corrupt(e.to_string());
    let mut r = TextReader::new(text);
    let target: usize = r.parse_one("target").map_err(corrupt)?;
    let status = r.expect("status").map_err(corrupt)?;
    let fitted = match status.first().copied() {
        Some("fitted") => true,
        Some("dropped") => false,
        other => {
            return Err(JournalError::Corrupt(format!(
                "bad record status `{}`",
                other.unwrap_or("")
            )))
        }
    };
    let flops: u64 = r.parse_one("flops").map_err(corrupt)?;
    let transient: u64 = r.parse_one("transient").map_err(corrupt)?;
    let model_bytes: u64 = r.parse_one("model_bytes").map_err(corrupt)?;
    let n_models: u64 = r.parse_one("n_models").map_err(corrupt)?;
    let n_events: usize = r.parse_one("events").map_err(corrupt)?;
    let mut health = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let fields = r.expect("ev").map_err(corrupt)?;
        health.push(parse_event(&fields)?);
    }
    let feature = if fitted {
        let fm = parse_feature(&mut r).map_err(corrupt)?;
        if fm.target != target {
            return Err(JournalError::Corrupt(format!(
                "record for target {target} carries a model for target {}",
                fm.target
            )));
        }
        Some(fm)
    } else {
        None
    };
    Ok(TargetRecord { target, feature, health, flops, transient, model_bytes, n_models })
}

/// Reconstruct the [`TargetHealth`] events of a record (each event's target
/// is the record's target — the fit loop never emits cross-target events).
pub(crate) fn record_health(rec: &TargetRecord) -> Vec<TargetHealth> {
    rec.health
        .iter()
        .map(|outcome| TargetHealth { target: rec.target, outcome: outcome.clone() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            config_hash: 0xAB,
            dataset_fingerprint: 0xCD,
            plan_hash: 0xEF,
            planned: 3,
        }
    }

    fn dropped_record(target: usize) -> TargetRecord {
        TargetRecord {
            target,
            feature: None,
            health: vec![TargetOutcome::Dropped { reason: "all values missing".into() }],
            flops: 7,
            transient: 11,
            model_bytes: 0,
            n_models: 0,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("frac-journal-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_append_scan_roundtrip() {
        let path = tmp_path("roundtrip.fjr");
        std::fs::remove_file(&path).ok();
        let j = RunJournal::create(&path, &header()).unwrap();
        j.append(&dropped_record(0)).unwrap();
        j.append(&dropped_record(2)).unwrap();
        assert!(!j.is_broken());
        drop(j);

        let scan = RunJournal::scan(&path).unwrap();
        assert_eq!(scan.header, Some(header()));
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.record_ends.len(), 2);
        assert_eq!(scan.records[0].target, 0);
        assert_eq!(scan.records[1].target, 2);
        assert_eq!(scan.records[0].flops, 7);
        assert_eq!(
            scan.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "clean file is valid to the end"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp_path("torn.fjr");
        std::fs::remove_file(&path).ok();
        let j = RunJournal::create(&path, &header()).unwrap();
        j.append(&dropped_record(0)).unwrap();
        drop(j);
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-append: half a record frame.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"rec 999 0123ab").unwrap();
        drop(f);

        let (j, records) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(records.len(), 1);
        drop(j);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
    }

    #[test]
    fn header_mismatch_is_an_error_not_a_truncation() {
        let path = tmp_path("mismatch.fjr");
        std::fs::remove_file(&path).ok();
        let j = RunJournal::create(&path, &header()).unwrap();
        j.append(&dropped_record(1)).unwrap();
        drop(j);
        let other = JournalHeader { config_hash: 0x99, ..header() };
        match RunJournal::open_or_create(&path, &other) {
            Err(JournalError::Mismatch(m)) => {
                // The message names the differing hash with both values and
                // stays silent about the parts that agree.
                assert!(m.contains("config"), "{m}");
                assert!(m.contains("00000000000000ab"), "found hash missing: {m}");
                assert!(m.contains("0000000000000099"), "expected hash missing: {m}");
                assert!(!m.contains("dataset"), "dataset agrees, not named: {m}");
                assert!(!m.contains("plan"), "plan agrees, not named: {m}");
            }
            other => panic!("expected mismatch, got {:?}", other.err()),
        }
        // The file was not harmed.
        assert_eq!(RunJournal::scan(&path).unwrap().records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_starts_fresh_but_foreign_file_errors() {
        let path = tmp_path("tornheader.fjr");
        std::fs::write(&path, "fracjournal 1\nconfig 00000000000000ab\n").unwrap();
        let (j, records) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert!(records.is_empty());
        drop(j);
        assert_eq!(RunJournal::scan(&path).unwrap().header, Some(header()));

        let foreign = tmp_path("foreign.txt");
        std::fs::write(&foreign, "definitely not a journal\n").unwrap();
        assert!(matches!(
            RunJournal::open_or_create(&foreign, &header()),
            Err(JournalError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&foreign).ok();
    }

    #[test]
    fn record_body_roundtrips_every_event_kind() {
        let rec = TargetRecord {
            target: 5,
            feature: None,
            health: vec![
                TargetOutcome::Sanitized { cells: 3 },
                TargetOutcome::Quarantined { reason: QuarantineReason::ZeroVariance },
                TargetOutcome::Quarantined {
                    reason: QuarantineReason::SingleClass { class: 2 },
                },
                TargetOutcome::Quarantined {
                    reason: QuarantineReason::NonFinite { cells: 9 },
                },
                TargetOutcome::Degraded {
                    member: 1,
                    fallback: FallbackKind::StrictSolver,
                    detail: "solver did not converge after 60 epochs".into(),
                },
                TargetOutcome::Degraded {
                    member: 0,
                    fallback: FallbackKind::Baseline,
                    detail: "panicked: multi\nline payload".into(),
                },
                TargetOutcome::MemberDropped { member: 2, detail: "baseline also failed".into() },
                TargetOutcome::Dropped { reason: "all 3 ensemble member fit(s) failed".into() },
            ],
            flops: 1,
            transient: 2,
            model_bytes: 3,
            n_models: 4,
        };
        let body = record_body(&rec.as_parts());
        let back = parse_record_body(&body).unwrap();
        assert_eq!(back.target, 5);
        assert_eq!(back.health.len(), rec.health.len());
        // The multi-line detail is flattened, everything else survives.
        match &back.health[5] {
            TargetOutcome::Degraded { detail, .. } => {
                assert_eq!(detail, "panicked: multi line payload")
            }
            other => panic!("wrong event kind: {other:?}"),
        }
        assert_eq!(back.health[..5], rec.health[..5]);
        assert_eq!(back.health[6..], rec.health[6..]);
        assert_eq!(
            (back.flops, back.transient, back.model_bytes, back.n_models),
            (1, 2, 3, 4)
        );
    }

    #[test]
    fn bit_flip_in_record_invalidates_only_the_tail() {
        let path = tmp_path("bitflip.fjr");
        std::fs::remove_file(&path).ok();
        let j = RunJournal::create(&path, &header()).unwrap();
        j.append(&dropped_record(0)).unwrap();
        j.append(&dropped_record(1)).unwrap();
        drop(j);
        let scan = RunJournal::scan(&path).unwrap();
        let second_start = scan.record_ends[0] as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt a byte inside the *second* record's body.
        let target = second_start + 30;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let rescan = RunJournal::scan(&path).unwrap();
        assert_eq!(rescan.records.len(), 1, "first record must survive");
        assert_eq!(rescan.valid_len, scan.record_ends[0]);
        std::fs::remove_file(&path).ok();
    }
}
