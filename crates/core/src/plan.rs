//! Training plans: which predictors get trained on which inputs.
//!
//! Every FRaC variant is, at training time, just a different answer to "for
//! each target feature, which other features feed its predictor(s)?" —
//! Figure 1 of the paper is exactly this picture. A [`TrainingPlan`]
//! materializes that answer so the model fitter ([`crate::model`]) is
//! variant-agnostic.

use frac_dataset::split::derive_seed;
use rand::prelude::*;
use rand::rngs::StdRng;

/// The plan for one target feature: one entry in `input_sets` per predictor
/// (Diverse FRaC may train several predictors per target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetPlan {
    /// Feature index (into the training data set) being predicted.
    pub target: usize,
    /// One input-feature-index set per predictor to train. An empty set is
    /// legal and yields a constant predictor.
    pub input_sets: Vec<Vec<usize>>,
}

/// The complete per-feature plan of a FRaC run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingPlan {
    /// One plan per target feature (in ascending target order).
    pub targets: Vec<TargetPlan>,
}

impl TrainingPlan {
    /// Ordinary FRaC: every feature is a target, predicted from all others.
    pub fn full(n_features: usize) -> Self {
        let targets = (0..n_features)
            .map(|t| TargetPlan {
                target: t,
                input_sets: vec![(0..n_features).filter(|&j| j != t).collect()],
            })
            .collect();
        TrainingPlan { targets }
    }

    /// Full filtering (§II-A): only `selected` features are targets, and
    /// predictors see only the selected features (minus the target). The
    /// unselected features are removed from the problem entirely.
    ///
    /// # Panics
    /// Panics if `selected` is empty.
    pub fn full_filtered(selected: &[usize]) -> Self {
        assert!(!selected.is_empty(), "full filtering needs ≥ 1 feature");
        let targets = selected
            .iter()
            .map(|&t| TargetPlan {
                target: t,
                input_sets: vec![selected.iter().copied().filter(|&j| j != t).collect()],
            })
            .collect();
        TrainingPlan { targets }
    }

    /// Partial filtering (§II-A): only `selected` features are targets, but
    /// predictors see *all* `n_features − 1` other features — slower, less
    /// lossy.
    ///
    /// # Panics
    /// Panics if `selected` is empty or any index is out of range.
    pub fn partial_filtered(selected: &[usize], n_features: usize) -> Self {
        assert!(!selected.is_empty(), "partial filtering needs ≥ 1 feature");
        assert!(
            selected.iter().all(|&t| t < n_features),
            "selected index out of range"
        );
        let targets = selected
            .iter()
            .map(|&t| TargetPlan {
                target: t,
                input_sets: vec![(0..n_features).filter(|&j| j != t).collect()],
            })
            .collect();
        TrainingPlan { targets }
    }

    /// Diverse FRaC (§II-B): every feature is a target; each of its
    /// `models_per_feature` predictors sees an independent Bernoulli(`p`)
    /// subset of the other features. Subsets are derived from
    /// `(seed, target, member)`, so the plan is schedule-independent.
    ///
    /// # Panics
    /// Panics unless `0 < p ≤ 1` and `models_per_feature ≥ 1`.
    pub fn diverse(n_features: usize, p: f64, models_per_feature: usize, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "selection probability must be in (0,1]");
        assert!(models_per_feature >= 1, "need at least one model per feature");
        let targets = (0..n_features)
            .map(|t| {
                let input_sets = (0..models_per_feature)
                    .map(|m| {
                        let s = derive_seed(seed, (t * models_per_feature + m) as u64);
                        let mut rng = StdRng::seed_from_u64(s);
                        (0..n_features)
                            .filter(|&j| j != t && rng.random::<f64>() < p)
                            .collect()
                    })
                    .collect();
                TargetPlan { target: t, input_sets }
            })
            .collect();
        TrainingPlan { targets }
    }

    /// Content fingerprint of the plan (targets and their input sets),
    /// used by the run journal to refuse resuming a different plan.
    pub fn content_hash(&self) -> u64 {
        let mut h = frac_dataset::crc::Fnv64::new();
        h.write_u64(self.targets.len() as u64);
        for tp in &self.targets {
            h.write_u64(tp.target as u64);
            h.write_u64(tp.input_sets.len() as u64);
            for set in &tp.input_sets {
                h.write_u64(set.len() as u64);
                for &j in set {
                    h.write_u64(j as u64);
                }
            }
        }
        h.finish()
    }

    /// Total number of predictors the plan will train (before CV
    /// multiplication).
    pub fn n_predictors(&self) -> usize {
        self.targets.iter().map(|t| t.input_sets.len()).sum()
    }

    /// Number of target features.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_excludes_self() {
        let p = TrainingPlan::full(4);
        assert_eq!(p.n_targets(), 4);
        assert_eq!(p.n_predictors(), 4);
        for tp in &p.targets {
            assert_eq!(tp.input_sets[0].len(), 3);
            assert!(!tp.input_sets[0].contains(&tp.target));
        }
    }

    #[test]
    fn full_filtered_restricts_both_sides() {
        let p = TrainingPlan::full_filtered(&[1, 3, 5]);
        assert_eq!(p.n_targets(), 3);
        let tp = &p.targets[1];
        assert_eq!(tp.target, 3);
        assert_eq!(tp.input_sets[0], vec![1, 5]);
    }

    #[test]
    fn partial_filtered_keeps_all_inputs() {
        let p = TrainingPlan::partial_filtered(&[1, 3], 6);
        let tp = &p.targets[0];
        assert_eq!(tp.target, 1);
        assert_eq!(tp.input_sets[0], vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn diverse_halves_problem_size_at_p_half() {
        let p = TrainingPlan::diverse(200, 0.5, 1, 7);
        let avg: f64 = p
            .targets
            .iter()
            .map(|t| t.input_sets[0].len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!((avg - 99.5).abs() < 5.0, "average subset size {avg}");
        for tp in &p.targets {
            assert!(!tp.input_sets[0].contains(&tp.target));
        }
    }

    #[test]
    fn diverse_members_use_different_subsets() {
        let p = TrainingPlan::diverse(50, 0.3, 3, 1);
        assert_eq!(p.n_predictors(), 150);
        let tp = &p.targets[0];
        assert_ne!(tp.input_sets[0], tp.input_sets[1]);
        assert_ne!(tp.input_sets[1], tp.input_sets[2]);
    }

    #[test]
    fn diverse_is_deterministic() {
        let a = TrainingPlan::diverse(30, 0.4, 2, 9);
        let b = TrainingPlan::diverse(30, 0.4, 2, 9);
        assert_eq!(a, b);
        let c = TrainingPlan::diverse(30, 0.4, 2, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn diverse_p_one_is_full() {
        let d = TrainingPlan::diverse(5, 1.0, 1, 3);
        let f = TrainingPlan::full(5);
        assert_eq!(d, f);
    }

    #[test]
    #[should_panic(expected = "needs ≥ 1 feature")]
    fn empty_filter_rejected() {
        TrainingPlan::full_filtered(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partial_filter_bounds_checked() {
        TrainingPlan::partial_filtered(&[9], 4);
    }
}
