//! A fault-tolerant, long-lived scoring daemon (`frac serve`).
//!
//! Precision-medicine scoring is interactive: a clinician submits one
//! expression profile and wants its normalized surprisal *now*, without
//! paying the model-load cost (CRC verification + text parse of hundreds of
//! per-target predictors) on every request. This module keeps one verified
//! [`FracModel`] resident and scores streams of records against it, built
//! around three robustness guarantees:
//!
//! 1. **Admission control, not OOM.** Requests land in a bounded queue
//!    ([`ServeConfig::queue_cap`]); when it is full the daemon answers
//!    `busy <seq>` immediately instead of buffering without limit. Each
//!    admitted request carries a [`RunBudget`] deadline
//!    ([`ServeConfig::request_timeout`]); requests that expire while queued
//!    are answered with a timeout error, never scored late silently.
//! 2. **Per-line quarantine.** A malformed record (bad cell, wrong width,
//!    oversized line, invalid UTF-8) earns an `err <seq> <reason>` reply
//!    naming the offending line; the connection, the surrounding batch, and
//!    the daemon all survive. Quarantine counts surface through
//!    [`ServeHealth`] and the telemetry counter layer.
//! 3. **Hot reload with rollback.** A reload (triggered by `SIGHUP` or the
//!    `cmd reload [PATH]` wire command) loads and validates the new file —
//!    CRC trailer, version, and schema compatibility via [`validate_model`]
//!    — entirely off the scoring path, then atomically swaps the model
//!    `Arc`. Any failure keeps the old model serving.
//!
//! Batches are scored through the same pooled encode + NS-accumulation path
//! as `frac score` ([`FracModel::score`]); scoring is row-independent, so
//! serve replies are bit-identical to one-shot scoring. A scoring panic
//! (e.g. a hostile model file that passed structural validation) is caught
//! per batch: the batch's requests get error replies and the daemon keeps
//! serving.
//!
//! ## Wire protocol
//!
//! Line-oriented, one request per line, over TCP or a stdin/stdout pipe:
//!
//! | input line | meaning |
//! |---|---|
//! | TSV cells (schema order, `?` = missing) | score one record |
//! | `{"gene": 1.5, ...}` (flat JSON object) | score one record by name |
//! | the schema header, or `# ...` | ignored (lets `cat file.tsv` work) |
//! | `cmd ping` | liveness probe |
//! | `cmd stats` | health counters + latency percentiles |
//! | `cmd reload [PATH]` | hot-swap the model (optionally from PATH) |
//! | `cmd stop` | graceful shutdown: drain, then exit |
//!
//! Replies carry the 1-based line number (`seq`) of the request on that
//! connection: `ns <seq> <score>` (scores formatted with `f64`'s shortest
//! round-trip `Display`, so re-parsing reproduces the exact bits),
//! `err <seq> <reason>`, `busy <seq>`, or `ok <seq> <detail>` for commands.

use crate::model::{FracModel, PredictorModel};
use frac_dataset::io as dio;
use frac_dataset::{Dataset, FeatureKind, Schema};
use frac_learn::telemetry::{self, Counter, Stage};
use frac_learn::RunBudget;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// How often the accept/pipe/scorer loops wake to poll control flags.
const POLL: Duration = Duration::from_millis(20);

/// At most this many per-request latency samples are retained (ring buffer),
/// bounding daemon memory over arbitrarily long uptimes.
const LATENCY_CAP: usize = 65_536;

/// Tuning knobs for one serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most records scored in one batch (one encode pool + NS pass).
    pub batch_max: usize,
    /// Bound on the admission queue; a full queue sheds with `busy`.
    pub queue_cap: usize,
    /// Per-request deadline: a request still queued this long after arrival
    /// is answered with a timeout error instead of being scored.
    pub request_timeout: Duration,
    /// Bound on the post-shutdown drain: queued requests still unscored this
    /// long after shutdown begins are answered with an error and dropped.
    pub drain_timeout: Duration,
    /// Longest accepted input line; longer lines are quarantined unscored.
    pub max_line_bytes: usize,
    /// Artificial delay injected before each batch is scored. Not reachable
    /// from the CLI; exists so overload and deadline tests are deterministic
    /// instead of racing the scorer.
    pub score_delay: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_max: 64,
            queue_cap: 1024,
            request_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
            max_line_bytes: 1 << 20,
            score_delay: None,
        }
    }
}

/// Monotonic health counters for one daemon, mirrored into the telemetry
/// counter layer ([`Counter::ServeRequests`] and friends) when a session is
/// active. All loads/stores are relaxed: the counters are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServeHealth {
    connections: AtomicU64,
    received: AtomicU64,
    scored: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    timed_out: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    score_panics: AtomicU64,
}

impl ServeHealth {
    fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeCounts {
        ServeCounts {
            connections: self.connections.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            scored: self.scored.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            score_panics: self.score_panics.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`ServeHealth`], in the spirit of `RunHealth`: every way a
/// request can leave the daemon is accounted for, so
/// `received == scored + timed_out + still-queued` at any quiescent point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounts {
    /// Connections accepted (a pipe session counts as one).
    pub connections: u64,
    /// Requests admitted to the queue.
    pub received: u64,
    /// Requests scored and answered with `ns`.
    pub scored: u64,
    /// Requests refused with `busy` because the queue was full.
    pub shed: u64,
    /// Lines quarantined (parse error, oversized, invalid UTF-8).
    pub quarantined: u64,
    /// Admitted requests that expired before scoring.
    pub timed_out: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Reloads rolled back (load, CRC, or compatibility failure).
    pub reload_failures: u64,
    /// Batches whose scoring panicked (isolated; daemon survived).
    pub score_panics: u64,
}

impl ServeCounts {
    /// One-line `key=value` rendering for logs, `cmd stats`, and telemetry.
    pub fn summary(&self) -> String {
        format!(
            "connections={} received={} scored={} shed={} quarantined={} \
             timeouts={} reloads={} reload_failures={} score_panics={}",
            self.connections,
            self.received,
            self.scored,
            self.shed,
            self.quarantined,
            self.timed_out,
            self.reloads,
            self.reload_failures,
            self.score_panics
        )
    }
}

/// Final report returned when a daemon exits.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final health counters.
    pub counts: ServeCounts,
    /// Median request latency (arrival to reply), microseconds; 0 if no
    /// request was scored.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Daemon wall time from start of serving to drain completion.
    pub wall: Duration,
}

impl ServeSummary {
    /// Scored requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.counts.scored as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line rendering for the daemon's exit log.
    pub fn render(&self) -> String {
        format!(
            "{} p50_us={} p99_us={} throughput_rps={:.1} wall_ms={}",
            self.counts.summary(),
            self.p50_us,
            self.p99_us,
            self.throughput_rps(),
            self.wall.as_millis()
        )
    }
}

/// Control handle for a running daemon; safe to use from a signal-watcher
/// thread. Cloning is cheap and every clone controls the same daemon.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Begin graceful shutdown: stop accepting input, drain queued requests
    /// (bounded by [`ServeConfig::drain_timeout`]), then return a summary.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Request a hot reload of the model from its current path (the `SIGHUP`
    /// action). Validation and swap happen off the scoring path; failures
    /// roll back and show up in [`ServeCounts::reload_failures`].
    pub fn request_reload(&self) {
        self.shared.reload.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// A snapshot of the daemon's health counters.
    pub fn counts(&self) -> ServeCounts {
        self.shared.health.snapshot()
    }
}

/// Per-request latency samples, ring-buffered to [`LATENCY_CAP`].
#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, us: u64) {
        if self.samples.len() < LATENCY_CAP {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
            self.next = (self.next + 1) % LATENCY_CAP;
        }
    }

    /// (p50, p99) over the retained samples; (0, 0) when empty.
    fn percentiles(&self) -> (u64, u64) {
        if self.samples.is_empty() {
            return (0, 0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pick = |p: usize| sorted[(sorted.len() - 1) * p / 100];
        (pick(50), pick(99))
    }
}

/// State shared between the accept loop, connection threads, the scorer, and
/// control handles.
struct Shared {
    cfg: ServeConfig,
    schema: Schema,
    /// The canonical TSV header for `schema`; input lines equal to it are
    /// ignored so a whole TSV file can be piped in unmodified.
    header: String,
    model: Mutex<Arc<FracModel>>,
    model_path: Mutex<PathBuf>,
    health: ServeHealth,
    shutdown: AtomicBool,
    reload: AtomicBool,
    latencies: Mutex<LatencyRing>,
}

/// Poison-tolerant lock: serve state stays usable even if a panicking thread
/// (already isolated by `catch_unwind`) held a guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Collapse a (possibly multi-line) error into one protocol-safe line.
fn one_line(msg: &str) -> String {
    msg.chars()
        .map(|c| if c == '\n' || c == '\r' || c == '\t' { ' ' } else { c })
        .collect()
}

/// One admitted scoring request.
struct Request {
    seq: u64,
    values: Vec<frac_dataset::Value>,
    budget: RunBudget,
    received: Instant,
    reply: Arc<ReplySink>,
}

/// Serialized reply channel for one connection. Writes are best-effort: a
/// client that disconnected mid-batch loses its replies, nothing else.
struct ReplySink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl ReplySink {
    fn new(out: Box<dyn Write + Send>) -> Self {
        ReplySink { out: Mutex::new(out) }
    }

    fn send(&self, line: &str) {
        let mut out = lock(&self.out);
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
}

/// Check that `model` can score records of `schema` without panicking in the
/// encode pool: every target index in range, every predictor's kind matching
/// the schema's kind at that index, and every design spec's input widths
/// consistent with the schema. This is the compatibility gate run before a
/// reloaded model is swapped in.
pub fn validate_model(model: &FracModel, schema: &Schema) -> Result<(), String> {
    for fm in &model.features {
        let t = fm.target;
        if t >= schema.len() {
            return Err(format!(
                "model target {t} out of range for a schema of {} features",
                schema.len()
            ));
        }
        let kind = schema.kind(t);
        let name = &schema.feature(t).name;
        for fp in &fm.predictors {
            let kind_ok = matches!(
                (&fp.model, kind),
                (PredictorModel::Real(_), FeatureKind::Real)
                    | (PredictorModel::Cat(_), FeatureKind::Categorical { .. })
            );
            if !kind_ok {
                let have = match fp.model {
                    PredictorModel::Real(_) => "a real",
                    PredictorModel::Cat(_) => "a categorical",
                };
                return Err(format!(
                    "target {t} (`{name}`): model predicts {have} feature but the schema says `{kind}`"
                ));
            }
            fp.spec
                .validate_against(schema)
                .map_err(|e| format!("target {t} (`{name}`): {e}"))?;
        }
    }
    Ok(())
}

/// A scoring daemon, constructed once and then driven by
/// [`Server::serve_listener`] (TCP) or [`Server::serve_pipe`] (stdin-style).
pub struct Server {
    shared: Arc<Shared>,
    tx: SyncSender<Request>,
    rx: Receiver<Request>,
}

impl Server {
    /// Build a daemon around an already-loaded model. Fails (without
    /// serving) if the model cannot score records of `schema` — the same
    /// compatibility gate later applied to hot reloads.
    pub fn new(
        model: FracModel,
        model_path: PathBuf,
        schema: Schema,
        cfg: ServeConfig,
    ) -> Result<Server, String> {
        validate_model(&model, &schema)?;
        let header = schema
            .iter()
            .map(|f| format!("{}:{}", f.name, f.kind))
            .collect::<Vec<_>>()
            .join("\t");
        let (tx, rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        Ok(Server {
            shared: Arc::new(Shared {
                cfg,
                schema,
                header,
                model: Mutex::new(Arc::new(model)),
                model_path: Mutex::new(model_path),
                health: ServeHealth::default(),
                shutdown: AtomicBool::new(false),
                reload: AtomicBool::new(false),
                latencies: Mutex::new(LatencyRing::default()),
            }),
            tx,
            rx,
        })
    }

    /// A control handle for shutdown/reload, usable from other threads.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve connections accepted from `listener` until shutdown is
    /// requested (handle, `SIGTERM` watcher, or `cmd stop`), then drain and
    /// report. Each connection gets its own thread; all feed one bounded
    /// queue and one scorer.
    pub fn serve_listener(self, listener: TcpListener) -> std::io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        let Server { shared, tx, rx } = self;
        let start = Instant::now();
        let scorer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("frac-serve-scorer".into())
                .spawn(move || scorer_loop(&shared, &rx))?
        };
        while !shared.shutdown.load(Ordering::Relaxed) {
            if shared.reload.swap(false, Ordering::Relaxed) {
                spawn_reload(&shared);
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    ServeHealth::bump(&shared.health.connections, 1);
                    let shared = Arc::clone(&shared);
                    let tx = tx.clone();
                    // A failed spawn drops the stream (client sees EOF); the
                    // daemon itself keeps serving.
                    let _ = thread::Builder::new().name("frac-serve-conn".into()).spawn(
                        move || {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            // A client that cannot absorb replies within the
                            // request timeout forfeits them rather than
                            // wedging the scorer behind a blocked write.
                            let _ = stream.set_write_timeout(Some(shared.cfg.request_timeout));
                            if let Ok(writer) = stream.try_clone() {
                                let reply = Arc::new(ReplySink::new(Box::new(writer)));
                                connection_loop(&shared, &tx, BufReader::new(stream), &reply);
                            }
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => thread::sleep(POLL),
            }
        }
        drop(tx);
        let _ = scorer.join();
        Ok(finish(&shared, start))
    }

    /// Serve a single `reader`/`writer` pair (the stdin/stdout pipe mode).
    /// Returns when the reader reaches EOF or shutdown is requested, after
    /// draining. The reader runs on its own thread so a `SIGTERM`-driven
    /// shutdown is honored even while a read is blocked.
    pub fn serve_pipe<R, W>(self, reader: R, writer: W) -> std::io::Result<ServeSummary>
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let Server { shared, tx, rx } = self;
        let start = Instant::now();
        let scorer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("frac-serve-scorer".into())
                .spawn(move || scorer_loop(&shared, &rx))?
        };
        ServeHealth::bump(&shared.health.connections, 1);
        let conn = {
            let shared = Arc::clone(&shared);
            let reply = Arc::new(ReplySink::new(Box::new(writer)));
            thread::Builder::new()
                .name("frac-serve-pipe".into())
                .spawn(move || connection_loop(&shared, &tx, BufReader::new(reader), &reply))?
        };
        loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            if shared.reload.swap(false, Ordering::Relaxed) {
                spawn_reload(&shared);
            }
            if conn.is_finished() {
                // EOF on input: everything readable has been enqueued;
                // switch the scorer to drain mode.
                shared.shutdown.store(true, Ordering::Relaxed);
                break;
            }
            thread::sleep(POLL);
        }
        // The scorer drains the queue (bounded by `drain_timeout`) once the
        // shutdown flag is up. The reader thread may still be blocked on a
        // quiet input; it holds only a queue sender and dies with the
        // process, so it is deliberately not joined.
        let _ = scorer.join();
        Ok(finish(&shared, start))
    }
}

fn finish(shared: &Shared, start: Instant) -> ServeSummary {
    let (p50_us, p99_us) = lock(&shared.latencies).percentiles();
    ServeSummary {
        counts: shared.health.snapshot(),
        p50_us,
        p99_us,
        wall: start.elapsed(),
    }
}

/// Run a validated reload off every hot path; failures roll back (the old
/// `Arc` stays in place) and are only visible in the counters.
fn spawn_reload(shared: &Arc<Shared>) {
    let worker = Arc::clone(shared);
    let spawned = thread::Builder::new().name("frac-serve-reload".into()).spawn(move || {
        match reload_model(&worker, None) {
            Ok(_) => ServeHealth::bump(&worker.health.reloads, 1),
            Err(_) => ServeHealth::bump(&worker.health.reload_failures, 1),
        }
    });
    if spawned.is_err() {
        ServeHealth::bump(&shared.health.reload_failures, 1);
    }
}

/// Load + validate a candidate model, then atomically swap it in. Any error
/// leaves the serving model untouched (rollback). `path` overrides the
/// remembered model path and becomes the new reload source on success.
fn reload_model(shared: &Shared, path: Option<PathBuf>) -> Result<String, String> {
    let path = match path {
        Some(p) => p,
        None => lock(&shared.model_path).clone(),
    };
    let candidate = FracModel::load(&path).map_err(|e| e.to_string())?;
    validate_model(&candidate, &shared.schema)?;
    let detail = format!(
        "reloaded {} ({} of {} planned targets)",
        path.display(),
        candidate.n_targets(),
        candidate.planned_targets()
    );
    *lock(&shared.model) = Arc::new(candidate);
    *lock(&shared.model_path) = path;
    Ok(detail)
}

/// The single scoring thread: pull one request (with a poll timeout so
/// control flags stay live), widen to a batch, score, repeat; on shutdown,
/// drain what is queued within the drain budget.
fn scorer_loop(shared: &Shared, rx: &Receiver<Request>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv_timeout(POLL) {
            Ok(first) => {
                let mut batch = vec![first];
                while batch.len() < shared.cfg.batch_max {
                    match rx.try_recv() {
                        Ok(r) => batch.push(r),
                        Err(_) => break,
                    }
                }
                score_batch(shared, batch);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Drain: everything already admitted deserves an answer, but shutdown
    // must complete within the drain budget even under a backlog.
    let drain = RunBudget::with_deadline(shared.cfg.drain_timeout);
    loop {
        let mut batch = Vec::new();
        while batch.len() < shared.cfg.batch_max {
            match rx.try_recv() {
                Ok(r) => batch.push(r),
                Err(_) => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        if drain.is_expired() {
            for r in batch {
                ServeHealth::bump(&shared.health.timed_out, 1);
                telemetry::counter_add(Counter::ServeTimeouts, 1);
                r.reply.send(&format!("err {} dropped at shutdown: drain timeout exceeded", r.seq));
            }
            continue;
        }
        score_batch(shared, batch);
    }
}

/// Score one admitted batch. Requests whose deadline passed while queued are
/// answered with a timeout error; the rest are scored in one pooled pass. A
/// panic inside scoring is confined to this batch.
fn score_batch(shared: &Shared, batch: Vec<Request>) {
    let mut live = Vec::with_capacity(batch.len());
    for r in batch {
        if r.budget.is_expired() {
            ServeHealth::bump(&shared.health.timed_out, 1);
            telemetry::counter_add(Counter::ServeTimeouts, 1);
            r.reply.send(&format!("err {} request timed out in the admission queue", r.seq));
        } else {
            live.push(r);
        }
    }
    if live.is_empty() {
        return;
    }
    if let Some(delay) = shared.cfg.score_delay {
        thread::sleep(delay);
    }
    let model = Arc::clone(&lock(&shared.model));
    let mut batch_ds = Dataset::empty(shared.schema.clone());
    for r in &live {
        batch_ds.push_row(&r.values);
    }
    let _span = telemetry::span(Stage::ServeBatch);
    match catch_unwind(AssertUnwindSafe(|| model.score(&batch_ds))) {
        Ok(scores) => {
            for (r, s) in live.iter().zip(&scores) {
                // `{}` on f64 is the shortest string that re-parses to the
                // exact bits — serve replies stay bit-identical to
                // `frac score` output on the same record.
                r.reply.send(&format!("ns {} {}", r.seq, s));
            }
            ServeHealth::bump(&shared.health.scored, live.len() as u64);
            let mut ring = lock(&shared.latencies);
            for r in &live {
                ring.record(r.received.elapsed().as_micros() as u64);
            }
        }
        Err(_) => {
            ServeHealth::bump(&shared.health.score_panics, 1);
            for r in &live {
                r.reply.send(&format!(
                    "err {} internal scoring error; batch isolated, daemon still serving",
                    r.seq
                ));
            }
        }
    }
}

/// Read lines from one connection, parse, and admit or quarantine each.
fn connection_loop<R: BufRead>(
    shared: &Shared,
    tx: &SyncSender<Request>,
    mut reader: R,
    reply: &Arc<ReplySink>,
) {
    let mut seq: u64 = 0;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match read_line_capped(&mut reader, &mut buf, shared.cfg.max_line_bytes) {
            Ok(Some(overflow)) => {
                seq += 1;
                handle_line(shared, tx, reply, seq, &buf, overflow);
            }
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return, // mid-record disconnect, reset, etc.
        }
    }
}

/// Read one `\n`-terminated line into `buf`, never holding more than `cap`
/// bytes: past the cap the rest of the line is consumed and discarded and
/// the line is flagged as overflowed. `Ok(None)` is clean EOF.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<Option<bool>> {
    buf.clear();
    let mut overflow = false;
    let mut saw_any = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if saw_any { Some(overflow) } else { None });
        }
        saw_any = true;
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !overflow {
                if buf.len() + pos > cap {
                    overflow = true;
                    buf.clear();
                } else {
                    buf.extend_from_slice(&chunk[..pos]);
                }
            }
            reader.consume(pos + 1);
            return Ok(Some(overflow));
        }
        let n = chunk.len();
        if !overflow {
            if buf.len() + n > cap {
                overflow = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        reader.consume(n);
    }
}

/// Classify and dispatch one input line: comment/header noise, a command,
/// or a record to admit. All failure modes reply and return; nothing here
/// can take the connection down.
fn handle_line(
    shared: &Shared,
    tx: &SyncSender<Request>,
    reply: &Arc<ReplySink>,
    seq: u64,
    raw: &[u8],
    overflow: bool,
) {
    if overflow {
        quarantine(shared, reply, seq, &format!(
            "line exceeds the {}-byte limit and was dropped",
            shared.cfg.max_line_bytes
        ));
        return;
    }
    let line = match std::str::from_utf8(raw) {
        Ok(s) => s.trim_end_matches('\r'),
        Err(_) => {
            quarantine(shared, reply, seq, "line is not valid UTF-8");
            return;
        }
    };
    if line.trim().is_empty() || line.starts_with('#') || line == shared.header {
        return;
    }
    if let Some(rest) = line.strip_prefix("cmd") {
        if rest.is_empty() || rest.starts_with(' ') || rest.starts_with('\t') {
            handle_command(shared, reply, seq, rest.trim());
            return;
        }
    }
    let parsed = if line.trim_start().starts_with('{') {
        dio::parse_json_record(&shared.schema, line, seq as usize)
    } else {
        dio::parse_record(&shared.schema, line, seq as usize)
    };
    let values = match parsed {
        Ok(v) => v,
        Err(e) => {
            quarantine(shared, reply, seq, &e.to_string());
            return;
        }
    };
    let request = Request {
        seq,
        values,
        budget: RunBudget::with_deadline(shared.cfg.request_timeout),
        received: Instant::now(),
        reply: Arc::clone(reply),
    };
    match tx.try_send(request) {
        Ok(()) => {
            ServeHealth::bump(&shared.health.received, 1);
            telemetry::counter_add(Counter::ServeRequests, 1);
        }
        Err(TrySendError::Full(r)) => {
            ServeHealth::bump(&shared.health.shed, 1);
            telemetry::counter_add(Counter::ServeShed, 1);
            r.reply.send(&format!("busy {}", r.seq));
        }
        Err(TrySendError::Disconnected(r)) => {
            r.reply.send(&format!("err {} daemon is shutting down", r.seq));
        }
    }
}

fn quarantine(shared: &Shared, reply: &Arc<ReplySink>, seq: u64, reason: &str) {
    ServeHealth::bump(&shared.health.quarantined, 1);
    telemetry::counter_add(Counter::ServeQuarantined, 1);
    reply.send(&format!("err {seq} {}", one_line(reason)));
}

fn handle_command(shared: &Shared, reply: &Arc<ReplySink>, seq: u64, cmd: &str) {
    if cmd == "ping" {
        reply.send(&format!("ok {seq} pong"));
    } else if cmd == "stats" {
        let (p50, p99) = lock(&shared.latencies).percentiles();
        reply.send(&format!(
            "ok {seq} {} p50_us={p50} p99_us={p99}",
            shared.health.snapshot().summary()
        ));
    } else if cmd == "stop" {
        reply.send(&format!("ok {seq} draining"));
        shared.shutdown.store(true, Ordering::Relaxed);
    } else if cmd == "reload" || cmd.starts_with("reload ") {
        let path = cmd.strip_prefix("reload").map(str::trim).filter(|p| !p.is_empty());
        // Runs on the connection thread: already off the scoring path, and
        // the client gets the verdict on the same connection.
        match reload_model(shared, path.map(PathBuf::from)) {
            Ok(detail) => {
                ServeHealth::bump(&shared.health.reloads, 1);
                reply.send(&format!("ok {seq} {detail}"));
            }
            Err(e) => {
                ServeHealth::bump(&shared.health.reload_failures, 1);
                reply.send(&format!(
                    "err {seq} reload failed, keeping the serving model: {}",
                    one_line(&e)
                ));
            }
        }
    } else {
        reply.send(&format!(
            "err {seq} unknown command `{}` (expected ping, stats, reload [PATH], stop)",
            one_line(cmd)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn capped_reader_splits_lines_and_flags_overflow() {
        let data = b"short\nthis line is much longer than the cap\nok\n";
        let mut r = BufReader::with_capacity(7, Cursor::new(&data[..]));
        let mut buf = Vec::new();
        assert_eq!(read_line_capped(&mut r, &mut buf, 16).unwrap(), Some(false));
        assert_eq!(buf, b"short");
        assert_eq!(read_line_capped(&mut r, &mut buf, 16).unwrap(), Some(true));
        assert!(buf.is_empty(), "overflowed line must not retain bytes");
        assert_eq!(read_line_capped(&mut r, &mut buf, 16).unwrap(), Some(false));
        assert_eq!(buf, b"ok");
        assert_eq!(read_line_capped(&mut r, &mut buf, 16).unwrap(), None);
    }

    #[test]
    fn capped_reader_handles_unterminated_final_line() {
        let mut r = BufReader::new(Cursor::new(&b"no newline"[..]));
        let mut buf = Vec::new();
        assert_eq!(read_line_capped(&mut r, &mut buf, 64).unwrap(), Some(false));
        assert_eq!(buf, b"no newline");
        assert_eq!(read_line_capped(&mut r, &mut buf, 64).unwrap(), None);
    }

    #[test]
    fn latency_ring_percentiles_and_cap() {
        let mut ring = LatencyRing::default();
        assert_eq!(ring.percentiles(), (0, 0));
        for us in 1..=100 {
            ring.record(us);
        }
        let (p50, p99) = ring.percentiles();
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
        for us in 0..(LATENCY_CAP as u64 + 10) {
            ring.record(us);
        }
        assert_eq!(ring.samples.len(), LATENCY_CAP);
    }

    #[test]
    fn one_line_flattens_control_characters() {
        assert_eq!(one_line("a\nb\tc\rd"), "a b c d");
    }

    #[test]
    fn counts_summary_mentions_every_counter() {
        let s = ServeCounts::default().summary();
        for key in [
            "connections=", "received=", "scored=", "shed=", "quarantined=",
            "timeouts=", "reloads=", "reload_failures=", "score_panics=",
        ] {
            assert!(s.contains(key), "summary missing {key}: {s}");
        }
    }
}
