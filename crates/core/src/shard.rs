//! Sharded multi-process training: supervisor, workers, and bit-identical
//! journal merge (DESIGN.md §14).
//!
//! The write-ahead journal ([`crate::journal`]) makes a completed target a
//! durable unit of work, so scaling the per-feature fleet across *processes*
//! reduces to bookkeeping: partition the training plan into N deterministic
//! shards ([`shard_plan`]), give each worker process its own journal
//! ([`shard_journal_path`]), and reassemble. Because per-member seeds derive
//! only from `(config, target, member)` — never from schedule — a model
//! assembled from N shard journals is bit-identical to a single-process run
//! by construction; the merge is one pooled `FracModel` fit over the full
//! plan with every shard record preloaded, the same path a single-process
//! resume takes.
//!
//! The hard part is surviving worker death, and that is the supervisor's
//! job ([`train_sharded`]): it watches workers through exit codes and
//! journal-growth heartbeats, restarts the dead and the stalled with capped
//! exponential backoff (each restart *resumes* from the shard journal, so a
//! completed target is never refit), and when a shard's retry budget is
//! exhausted it reclaims the remaining targets in-process under the
//! baseline-rescue ladder. The run therefore always ends with a scored
//! model and honest [`RunHealth`] accounting, no matter how workers die.
//!
//! Process-level fault injection (crash-looping workers, aborts at record
//! boundaries) rides on [`crate::fault::FaultPlan`]; workers enact it via
//! [`apply_worker_faults_from_env`].

use crate::config::FracConfig;
use crate::health::RunHealth;
use crate::journal::{self, JournalError, RunJournal, TargetRecord};
use crate::model::{FracModel, JournaledFit};
use crate::plan::TrainingPlan;
use crate::resources::ResourceReport;
use frac_dataset::Dataset;
use frac_learn::RunBudget;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::time::{Duration, Instant};

/// Supervisor tuning knobs. The defaults suit real worker processes; tests
/// shrink every interval to keep fault scenarios fast.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Restarts allowed per shard before its remaining targets are
    /// reclaimed in-process.
    pub retry_budget: usize,
    /// A worker whose shard journal has not grown for this long is
    /// presumed wedged, killed, and restarted. Must comfortably exceed the
    /// slowest single-target fit, or healthy workers get shot.
    pub heartbeat_timeout: Duration,
    /// Supervisor poll cadence (child status + journal length).
    pub poll_interval: Duration,
    /// First restart delay; doubles per restart.
    pub backoff_base: Duration,
    /// Upper bound on the restart delay.
    pub backoff_cap: Duration,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            retry_budget: 3,
            heartbeat_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// What went wrong in a sharded run, with the shard pinned so a message
/// like "shard 2 of 4" points at the offending journal file.
#[derive(Debug)]
pub enum ShardError {
    /// A shard's journal could not be opened, scanned, or appended. Wraps
    /// the underlying [`JournalError`] — including the named-hash
    /// `Mismatch` detail for foreign journals.
    Journal {
        /// Shard index.
        shard: usize,
        /// The shard journal involved.
        path: PathBuf,
        /// The journal-level failure.
        source: JournalError,
    },
    /// The journals handed to a multi-journal resume do not form one
    /// coherent shard set (mixed shard counts, different base names, a
    /// non-shard file among shard journals, …).
    BadShardSet(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Journal { shard, path, source } => {
                write!(f, "shard {shard} ({}): {source}", path.display())
            }
            ShardError::BadShardSet(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Supervisor lifecycle notifications, delivered to the caller's event
/// callback in deterministic order per shard. The CLI prints them; tests
/// assert on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardEvent {
    /// A worker process was (re)started. `attempt` 0 is the first spawn.
    Spawned {
        /// Shard index.
        shard: usize,
        /// 0 for the first spawn, k for the k-th restart.
        attempt: usize,
    },
    /// A worker exited. `complete` means its journal now covers every
    /// target of its shard; an incomplete exit 0 (deadline-limited worker)
    /// is not a failure — the remainder goes to reclaim.
    Exited {
        /// Shard index.
        shard: usize,
        /// Process exit code; `None` when killed by a signal.
        code: Option<i32>,
        /// Whether the shard journal covers all the shard's targets.
        complete: bool,
    },
    /// A worker's journal stopped growing past the heartbeat timeout; the
    /// worker was killed and will be restarted.
    Stalled {
        /// Shard index.
        shard: usize,
    },
    /// Restart scheduled after `delay` (capped exponential backoff).
    Backoff {
        /// Shard index.
        shard: usize,
        /// How long the supervisor waits before respawning.
        delay: Duration,
    },
    /// The retry budget is spent; no more workers for this shard.
    Exhausted {
        /// Shard index.
        shard: usize,
    },
    /// The supervisor is finishing `remaining` targets of this shard
    /// in-process under the baseline-rescue ladder.
    Reclaiming {
        /// Shard index.
        shard: usize,
        /// Targets not yet covered by the shard journal.
        remaining: usize,
    },
}

impl std::fmt::Display for ShardEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardEvent::Spawned { shard, attempt: 0 } => {
                write!(f, "shard {shard}: worker started")
            }
            ShardEvent::Spawned { shard, attempt } => {
                write!(f, "shard {shard}: worker restarted (attempt {attempt})")
            }
            ShardEvent::Exited { shard, code, complete: true } => {
                write!(f, "shard {shard}: worker finished (exit {})", code_str(*code))
            }
            ShardEvent::Exited { shard, code, complete: false } => {
                write!(
                    f,
                    "shard {shard}: worker exited incomplete (exit {})",
                    code_str(*code)
                )
            }
            ShardEvent::Stalled { shard } => {
                write!(f, "shard {shard}: worker stalled (no journal growth); killed")
            }
            ShardEvent::Backoff { shard, delay } => {
                write!(f, "shard {shard}: restarting in {delay:?}")
            }
            ShardEvent::Exhausted { shard } => {
                write!(f, "shard {shard}: retry budget exhausted")
            }
            ShardEvent::Reclaiming { shard, remaining } => {
                write!(f, "shard {shard}: reclaiming {remaining} target(s) in-process")
            }
        }
    }
}

fn code_str(code: Option<i32>) -> String {
    code.map_or_else(|| "signal".to_string(), |c| c.to_string())
}

/// Per-shard outcome accounting of a sharded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Targets this shard was responsible for.
    pub planned: usize,
    /// Worker restarts (0 = the first spawn sufficed).
    pub restarts: usize,
    /// Targets covered by the shard journal when the worker phase ended.
    pub worker_records: usize,
    /// Targets the supervisor finished in-process after the worker phase.
    pub reclaimed: usize,
}

/// The outcome of [`train_sharded`] / [`resume_shards`]: the merged model
/// plus per-shard accounting.
pub struct ShardRun {
    /// The merged model, bit-identical to a single-process run.
    pub model: FracModel,
    /// Resource/health report of the merged fit (authoritative health).
    pub report: ResourceReport,
    /// Per-shard accounting, indexed by shard.
    pub stats: Vec<ShardStat>,
    /// Health as recorded in the shard journals, merged across shards via
    /// [`RunHealth::merge`] — the worker-phase view, before any
    /// deadline-degraded in-process completions.
    pub journal_health: RunHealth,
}

/// Partition `plan` into `n_shards` deterministic sub-plans, round-robin by
/// plan position (position `i` goes to shard `i % n_shards`) so shards are
/// load-balanced even when a plan orders targets by cost. The union of the
/// sub-plans is exactly `plan`, orders preserved; when `n_shards` exceeds
/// the target count the tail shards are empty.
///
/// # Panics
/// Panics if `n_shards` is zero.
pub fn shard_plan(plan: &TrainingPlan, n_shards: usize) -> Vec<TrainingPlan> {
    assert!(n_shards >= 1, "a sharded run needs at least one shard");
    let mut shards = vec![TrainingPlan { targets: Vec::new() }; n_shards];
    for (i, tp) in plan.targets.iter().enumerate() {
        shards[i % n_shards].targets.push(tp.clone());
    }
    shards
}

/// The journal path of shard `shard` of `n_shards`, derived from the base
/// journal path: `run.frj` → `run.frj.s2-4`. The suffix is parseable
/// ([`parse_shard_suffix`]) so a directory of shard journals can be
/// resumed without knowing the original command line.
pub fn shard_journal_path(base: &Path, shard: usize, n_shards: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".s{shard}-{n_shards}"));
    PathBuf::from(name)
}

/// Recover `(base, shard, n_shards)` from a shard journal path produced by
/// [`shard_journal_path`]; `None` for paths without a well-formed
/// `.s<k>-<n>` suffix (including `k >= n`).
pub fn parse_shard_suffix(path: &Path) -> Option<(PathBuf, usize, usize)> {
    let name = path.file_name()?.to_str()?;
    let dot = name.rfind(".s")?;
    let (k, n) = name[dot + 2..].split_once('-')?;
    if k.is_empty() || n.is_empty() || !k.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (k, n) = (k.parse::<usize>().ok()?, n.parse::<usize>().ok()?);
    if k >= n {
        return None;
    }
    Some((path.with_file_name(&name[..dot]), k, n))
}

/// Expand the `--journal` arguments of a resume: a directory expands to
/// the shard journals inside it (sorted by shard index), a plain file
/// passes through. Produces the flat path list [`shard_set`] validates.
pub fn expand_journal_paths(paths: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut found: Vec<(usize, PathBuf)> = Vec::new();
            for entry in std::fs::read_dir(p)? {
                let path = entry?.path();
                if let Some((_, k, _)) = parse_shard_suffix(&path) {
                    found.push((k, path));
                }
            }
            found.sort();
            out.extend(found.into_iter().map(|(_, path)| path));
        } else {
            out.push(p.clone());
        }
    }
    Ok(out)
}

/// Interpret a list of journal paths as one coherent shard set: every path
/// must carry a `.s<k>-<n>` suffix, agree on the base name and on `n`.
/// Returns `(base, n_shards)`. `Ok(None)` when *no* path has a shard
/// suffix (the caller's single-journal case); a mixed or contradictory set
/// is a [`ShardError::BadShardSet`].
pub fn shard_set(paths: &[PathBuf]) -> Result<Option<(PathBuf, usize)>, ShardError> {
    let mut set: Option<(PathBuf, usize)> = None;
    let mut plain = 0usize;
    for p in paths {
        match parse_shard_suffix(p) {
            None => plain += 1,
            Some((base, _, n)) => match &set {
                None => set = Some((base, n)),
                Some((b, m)) => {
                    if *b != base || *m != n {
                        return Err(ShardError::BadShardSet(format!(
                            "{} belongs to a different shard set than {} \
                             (expected {} journals of base {})",
                            p.display(),
                            shard_journal_path(b, 0, *m).display(),
                            m,
                            b.display(),
                        )));
                    }
                }
            },
        }
    }
    match (&set, plain) {
        (None, _) => Ok(None),
        (Some(_), 0) => Ok(set),
        (Some((base, _)), _) => Err(ShardError::BadShardSet(format!(
            "cannot mix shard journals of base {} with plain journals",
            base.display()
        ))),
    }
}

/// Restart delay before attempt `attempt` (1-based for restarts): capped
/// exponential backoff `min(base · 2^(attempt−1), cap)`.
pub fn backoff_delay(attempt: usize, base: Duration, cap: Duration) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(20) as u32;
    base.saturating_mul(factor).min(cap)
}

/// Run one worker's share of a sharded fit: shard `shard` of `n_shards` of
/// `plan`, journaled into [`shard_journal_path`]`(base_journal, ..)`.
/// Resumes from an existing shard journal (foreign journals are refused
/// with the named-hash mismatch detail) and fits the missing targets under
/// the usual budget and fallback ladder.
///
/// Both the `--shard-worker` CLI mode and the supervisor's in-process
/// reclaim path run exactly this, so a reclaimed shard journals its
/// targets the same way a healthy worker would.
///
/// # Panics
/// Panics if `shard >= n_shards` or `n_shards` is zero.
pub fn worker_run(
    train: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    budget: &RunBudget,
    base_journal: &Path,
    shard: usize,
    n_shards: usize,
) -> Result<JournaledFit, ShardError> {
    assert!(shard < n_shards, "shard index out of range");
    let sub = shard_plan(plan, n_shards).swap_remove(shard);
    let path = shard_journal_path(base_journal, shard, n_shards);
    FracModel::fit_journaled(train, &sub, config, budget, &path)
        .map_err(|source| ShardError::Journal { shard, path, source })
}

/// Enact process-level injected faults in a worker process, per the
/// environment protocol of [`crate::fault::FaultPlan::worker_env`]:
///
/// - [`crate::fault::ENV_SHARD_CRASHLOOP`] set → exit immediately with
///   [`crate::fault::CRASHLOOP_EXIT_CODE`] (a crash-looping worker).
/// - [`crate::fault::ENV_SHARD_ABORT_AFTER`]` = n` → arm an abort budget
///   consumed by the journal write path: the process aborts (as SIGKILL
///   would) at the exact record boundary that brings the worker's shard
///   journal to ≥ n records. Deterministic — a worker cannot outrun it no
///   matter how fast its fits finish.
///
/// Call once at worker startup with the worker's shard journal path. A
/// no-op when neither variable is set.
pub fn apply_worker_faults_from_env(shard_journal: &Path) {
    if std::env::var_os(crate::fault::ENV_SHARD_CRASHLOOP).is_some() {
        std::process::exit(crate::fault::CRASHLOOP_EXIT_CODE);
    }
    let after = std::env::var(crate::fault::ENV_SHARD_ABORT_AFTER)
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    if let Some(n) = after {
        let existing = RunJournal::scan(shard_journal).map_or(0, |scan| scan.records.len());
        crate::fault::arm_abort_after_records(n.saturating_sub(existing));
    }
}

/// Worker process lifecycle, from the supervisor's point of view.
enum WorkerState {
    /// Ready to (re)spawn; `attempt` counts prior failures.
    Idle { attempt: usize },
    /// A live child, with the journal-growth heartbeat watermark.
    Running { child: Child, attempt: usize, last_len: u64, last_growth: Instant },
    /// Waiting out the restart backoff.
    Backoff { until: Instant, attempt: usize },
    /// No further worker activity (finished, or retries exhausted).
    Settled,
}

/// The targets a shard journal already covers. A missing file is an empty
/// set (the worker never got that far); anything else unreadable is a
/// shard-scoped error.
fn done_targets(path: &Path, shard: usize) -> Result<BTreeSet<usize>, ShardError> {
    match RunJournal::scan(path) {
        Ok(scan) => Ok(scan.records.iter().map(|r| r.target).collect()),
        Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok(BTreeSet::new())
        }
        Err(source) => {
            Err(ShardError::Journal { shard, path: path.to_path_buf(), source })
        }
    }
}

/// Train `plan` across `n_shards` worker processes with supervision, then
/// merge the shard journals into one model bit-identical to a
/// single-process run.
///
/// `spawn` starts the worker for a shard — the CLI re-invokes its own
/// binary in `--shard-worker` mode; tests substitute scripted processes.
/// Its second argument is the remaining wall-clock budget to forward
/// (deadlines don't cross process boundaries as instants, but a duration
/// re-anchored at worker startup does). `on_event` observes the
/// supervisor's decisions; see [`ShardEvent`].
///
/// Worker failures (nonzero exit, death by signal, a stalled heartbeat, a
/// failed spawn) are retried with capped exponential backoff up to
/// `opts.retry_budget` restarts per shard; each restart resumes from the
/// shard journal, so completed targets are never refit. A shard whose
/// retries are exhausted — and any targets a deadline-limited worker left
/// behind — is finished in-process under the baseline-rescue ladder before
/// the merge, so the run always yields a complete scored model.
///
/// # Panics
/// Panics if `n_shards` is zero.
#[allow(clippy::too_many_arguments)]
pub fn train_sharded(
    train: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    budget: &RunBudget,
    base_journal: &Path,
    n_shards: usize,
    opts: &ShardOptions,
    spawn: &mut dyn FnMut(usize, Option<Duration>) -> std::io::Result<Child>,
    on_event: &mut dyn FnMut(&ShardEvent),
) -> Result<ShardRun, ShardError> {
    let subs = shard_plan(plan, n_shards);
    let paths: Vec<PathBuf> =
        (0..n_shards).map(|k| shard_journal_path(base_journal, k, n_shards)).collect();
    let targets: Vec<BTreeSet<usize>> = subs
        .iter()
        .map(|s| s.targets.iter().map(|tp| tp.target).collect())
        .collect();
    let mut stats: Vec<ShardStat> = subs
        .iter()
        .map(|s| ShardStat { planned: s.n_targets(), ..ShardStat::default() })
        .collect();
    let mut states: Vec<WorkerState> =
        (0..n_shards).map(|_| WorkerState::Idle { attempt: 0 }).collect();

    // One failure transition for every way a worker dies: count the
    // attempt, back off, or give the shard up to the reclaim phase.
    let fail = |k: usize,
                attempt: usize,
                stats: &mut [ShardStat],
                on_event: &mut dyn FnMut(&ShardEvent)|
     -> WorkerState {
        let next = attempt + 1;
        if next > opts.retry_budget {
            on_event(&ShardEvent::Exhausted { shard: k });
            WorkerState::Settled
        } else {
            let delay = backoff_delay(next, opts.backoff_base, opts.backoff_cap);
            stats[k].restarts = next;
            on_event(&ShardEvent::Backoff { shard: k, delay });
            WorkerState::Backoff { until: Instant::now() + delay, attempt: next }
        }
    };

    let mut fatal: Option<ShardError> = None;
    'supervise: loop {
        let mut any_pending = false;
        for k in 0..n_shards {
            let state = std::mem::replace(&mut states[k], WorkerState::Settled);
            states[k] = match state {
                WorkerState::Idle { attempt } => {
                    let done = match done_targets(&paths[k], k) {
                        Ok(done) => done,
                        Err(e) => {
                            fatal = Some(e);
                            break 'supervise;
                        }
                    };
                    if targets[k].is_subset(&done) {
                        // Nothing left for a worker to do (empty shard, or
                        // a completed journal from a previous run).
                        WorkerState::Settled
                    } else if budget.is_expired() {
                        // No wall clock left to supervise with; hand the
                        // remainder straight to the reclaim phase.
                        WorkerState::Settled
                    } else {
                        match spawn(k, budget.remaining()) {
                            Ok(child) => {
                                on_event(&ShardEvent::Spawned { shard: k, attempt });
                                WorkerState::Running {
                                    child,
                                    attempt,
                                    last_len: journal_len(&paths[k]),
                                    last_growth: Instant::now(),
                                }
                            }
                            // A failed exec is a worker failure like any
                            // other: back off and retry, and if the binary
                            // never comes back the reclaim phase still
                            // finishes the run in-process.
                            Err(_) => fail(k, attempt, &mut stats, on_event),
                        }
                    }
                }
                WorkerState::Running { mut child, attempt, last_len, last_growth } => {
                    match child.try_wait() {
                        Ok(Some(status)) => {
                            let done = match done_targets(&paths[k], k) {
                                Ok(done) => done,
                                Err(e) => {
                                    fatal = Some(e);
                                    break 'supervise;
                                }
                            };
                            let complete = targets[k].is_subset(&done);
                            on_event(&ShardEvent::Exited {
                                shard: k,
                                code: status.code(),
                                complete,
                            });
                            if complete || status.success() {
                                // An incomplete exit 0 is a deadline-limited
                                // worker, not a failure; reclaim finishes it.
                                WorkerState::Settled
                            } else {
                                fail(k, attempt, &mut stats, on_event)
                            }
                        }
                        Ok(None) => {
                            let len = journal_len(&paths[k]);
                            if len > last_len {
                                WorkerState::Running {
                                    child,
                                    attempt,
                                    last_len: len,
                                    last_growth: Instant::now(),
                                }
                            } else if last_growth.elapsed() >= opts.heartbeat_timeout {
                                let _ = child.kill();
                                let _ = child.wait();
                                on_event(&ShardEvent::Stalled { shard: k });
                                fail(k, attempt, &mut stats, on_event)
                            } else {
                                WorkerState::Running { child, attempt, last_len, last_growth }
                            }
                        }
                        Err(_) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            fail(k, attempt, &mut stats, on_event)
                        }
                    }
                }
                WorkerState::Backoff { until, attempt } => {
                    if Instant::now() >= until {
                        WorkerState::Idle { attempt }
                    } else {
                        WorkerState::Backoff { until, attempt }
                    }
                }
                WorkerState::Settled => WorkerState::Settled,
            };
            if !matches!(states[k], WorkerState::Settled) {
                any_pending = true;
            }
        }
        if !any_pending {
            break;
        }
        std::thread::sleep(opts.poll_interval);
    }
    // Reap anything still running (only on the fatal path).
    for state in &mut states {
        if let WorkerState::Running { child, .. } = state {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    if let Some(e) = fatal {
        return Err(e);
    }

    finish_and_merge(train, plan, config, budget, base_journal, n_shards, stats, on_event)
}

/// Resume a sharded run entirely in-process: complete every shard journal
/// of `base_journal` (shards `0..n_shards`), then merge. This is `frac
/// resume` pointed at a directory of per-shard journals — no workers are
/// spawned; missing or partial shards are finished under the ladder, and
/// foreign journals are refused per shard with the named-hash detail.
pub fn resume_shards(
    train: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    budget: &RunBudget,
    base_journal: &Path,
    n_shards: usize,
    on_event: &mut dyn FnMut(&ShardEvent),
) -> Result<ShardRun, ShardError> {
    let stats: Vec<ShardStat> = shard_plan(plan, n_shards)
        .iter()
        .map(|s| ShardStat { planned: s.n_targets(), ..ShardStat::default() })
        .collect();
    finish_and_merge(train, plan, config, budget, base_journal, n_shards, stats, on_event)
}

/// Shared tail of [`train_sharded`] and [`resume_shards`]: finish every
/// incomplete shard in-process (journaled, so the work is durable), then
/// assemble the full-plan model from all shard records. With every target
/// present the pooled fit refits nothing — the assembly, health, and
/// report are those of a single-process run over the same journal records.
#[allow(clippy::too_many_arguments)]
fn finish_and_merge(
    train: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    budget: &RunBudget,
    base_journal: &Path,
    n_shards: usize,
    mut stats: Vec<ShardStat>,
    on_event: &mut dyn FnMut(&ShardEvent),
) -> Result<ShardRun, ShardError> {
    let subs = shard_plan(plan, n_shards);
    for (k, sub) in subs.iter().enumerate() {
        let path = shard_journal_path(base_journal, k, n_shards);
        let done = done_targets(&path, k)?;
        let shard_targets: BTreeSet<usize> =
            sub.targets.iter().map(|tp| tp.target).collect();
        stats[k].worker_records = done.iter().filter(|t| shard_targets.contains(t)).count();
        let remaining = shard_targets.difference(&done).count();
        if remaining > 0 {
            on_event(&ShardEvent::Reclaiming { shard: k, remaining });
            worker_run(train, plan, config, budget, base_journal, k, n_shards)?;
            stats[k].reclaimed = remaining;
        }
    }

    let mut journal_health = RunHealth::default();
    let mut records: Vec<TargetRecord> = Vec::new();
    for (k, sub) in subs.iter().enumerate() {
        let path = shard_journal_path(base_journal, k, n_shards);
        let scan = match RunJournal::scan(&path) {
            Ok(scan) => scan,
            Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                continue; // empty shard: no journal was ever needed
            }
            Err(source) => return Err(ShardError::Journal { shard: k, path, source }),
        };
        // A complete foreign journal skips the reclaim phase (whose
        // `fit_journaled` would have refused it), so its records must not
        // reach the merge unverified.
        let expected = crate::journal::JournalHeader {
            config_hash: config.content_hash(),
            dataset_fingerprint: train.fingerprint(),
            plan_hash: sub.content_hash(),
            planned: sub.n_targets(),
        };
        if let Some(found) = &scan.header {
            if *found != expected {
                return Err(ShardError::Journal {
                    shard: k,
                    path,
                    source: JournalError::Mismatch(journal::mismatch_detail(
                        found, &expected,
                    )),
                });
            }
        }
        let mut health = RunHealth {
            targets_planned: sub.n_targets(),
            ..RunHealth::default()
        };
        for rec in &scan.records {
            if rec.feature.is_some() {
                health.targets_survived += 1;
            }
            health.events.extend(journal::record_health(rec));
        }
        journal_health.merge(&health);
        records.extend(scan.records);
    }

    let (mut model, report) =
        FracModel::fit_pooled(train, plan, config, None, None, budget, None, records);
    model.shard_restarts = stats.iter().map(|s| s.restarts).collect();
    Ok(ShardRun { model, report, stats, journal_health })
}

fn journal_len(path: &Path) -> u64 {
    std::fs::metadata(path).map_or(0, |m| m.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::dataset::DatasetBuilder;
    use std::process::{Command, Stdio};

    fn data() -> Dataset {
        let n = 14usize;
        DatasetBuilder::new()
            .real("a", (0..n).map(|i| i as f64).collect())
            .real("b", (0..n).map(|i| i as f64 * 1.5 + 0.5).collect())
            .real("c", (0..n).map(|i| (i % 5) as f64).collect())
            .real("d", (0..n).map(|i| 3.0 - i as f64 * 0.25).collect())
            .real("e", (0..n).map(|i| (i * i % 7) as f64).collect())
            .build()
    }

    fn temp_base(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("frac-shard-unit-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("run.frj")
    }

    fn fast_opts() -> ShardOptions {
        ShardOptions {
            retry_budget: 2,
            heartbeat_timeout: Duration::from_millis(80),
            poll_interval: Duration::from_millis(5),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    fn sh(script: &str) -> std::io::Result<Child> {
        Command::new("sh")
            .args(["-c", script])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(450);
        assert_eq!(backoff_delay(1, base, cap), Duration::from_millis(100));
        assert_eq!(backoff_delay(2, base, cap), Duration::from_millis(200));
        assert_eq!(backoff_delay(3, base, cap), Duration::from_millis(400));
        assert_eq!(backoff_delay(4, base, cap), cap);
        assert_eq!(backoff_delay(60, base, cap), cap, "huge attempts saturate");
    }

    #[test]
    fn shard_plan_round_robins_and_preserves_the_union() {
        let plan = TrainingPlan::full(7);
        let shards = shard_plan(&plan, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards.iter().map(|s| s.n_targets()).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        assert_eq!(
            shards[0].targets.iter().map(|t| t.target).collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
        // Union (re-sorted by target) is exactly the original plan.
        let mut all: Vec<_> =
            shards.iter().flat_map(|s| s.targets.iter().cloned()).collect();
        all.sort_by_key(|t| t.target);
        assert_eq!(all, plan.targets);
        // Sub-plan hashes are all distinct from each other and the full plan.
        let mut hashes: Vec<u64> = shards.iter().map(|s| s.content_hash()).collect();
        hashes.push(plan.content_hash());
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 4);
        // More shards than targets leaves the tail empty but well-formed.
        let wide = shard_plan(&plan, 10);
        assert_eq!(wide.iter().filter(|s| s.n_targets() == 0).count(), 3);
    }

    #[test]
    fn shard_journal_paths_roundtrip() {
        let base = PathBuf::from("/tmp/runs/cohort.frj");
        let p = shard_journal_path(&base, 2, 4);
        assert_eq!(p, PathBuf::from("/tmp/runs/cohort.frj.s2-4"));
        assert_eq!(parse_shard_suffix(&p), Some((base.clone(), 2, 4)));
        // Non-shard names don't parse.
        for bad in ["cohort.frj", "cohort.frj.s4-4", "x.s-3", "x.s1-", "x.sA-2"] {
            assert_eq!(parse_shard_suffix(Path::new(bad)), None, "{bad}");
        }
    }

    #[test]
    fn expand_and_validate_a_shard_directory() {
        let base = temp_base("expand");
        let dir = base.parent().unwrap().to_path_buf();
        for k in [2usize, 0, 1] {
            std::fs::write(shard_journal_path(&base, k, 3), "x").unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "y").unwrap();
        let paths = expand_journal_paths(&[dir.clone()]).unwrap();
        assert_eq!(
            paths,
            (0..3).map(|k| shard_journal_path(&base, k, 3)).collect::<Vec<_>>()
        );
        assert_eq!(shard_set(&paths).unwrap(), Some((base.clone(), 3)));
        // A plain file list with no suffixes is "not a shard set".
        assert_eq!(shard_set(&[dir.join("notes.txt")]).unwrap(), None);
        // Mixed shard counts are rejected, as is mixing plain journals in.
        let foreign = shard_journal_path(&base, 0, 5);
        let mut mixed = paths.clone();
        mixed.push(foreign);
        assert!(matches!(shard_set(&mixed), Err(ShardError::BadShardSet(_))));
        let mut with_plain = paths;
        with_plain.push(dir.join("notes.txt"));
        assert!(matches!(shard_set(&with_plain), Err(ShardError::BadShardSet(_))));
    }

    /// Retry/backoff → exhaustion → reclaim, deterministically: every
    /// "worker" exits 7 instantly without touching its journal, so the
    /// supervisor must walk the full ladder and still deliver a model
    /// bitwise-identical to the single-process fit.
    #[test]
    fn crash_looping_workers_exhaust_retries_and_reclaim_in_process() {
        let train = data();
        let plan = TrainingPlan::full(train.n_features());
        let cfg = FracConfig::default().with_seed(3);
        let base = temp_base("crashloop");
        let (reference, _) = FracModel::fit(&train, &plan, &cfg);

        let mut events = Vec::new();
        let run = train_sharded(
            &train,
            &plan,
            &cfg,
            &RunBudget::unlimited(),
            &base,
            2,
            &fast_opts(),
            &mut |_, _| sh("exit 7"),
            &mut |e| events.push(e.clone()),
        )
        .unwrap();

        // Every target came from reclaim; both shards burned their retries.
        for (k, stat) in run.stats.iter().enumerate() {
            assert_eq!(stat.restarts, 2, "shard {k} restarts: {stat:?}");
            assert_eq!(stat.worker_records, 0);
            assert_eq!(stat.reclaimed, stat.planned);
        }
        assert_eq!(run.model.shard_restarts(), &[2, 2]);
        let spawns =
            events.iter().filter(|e| matches!(e, ShardEvent::Spawned { .. })).count();
        assert_eq!(spawns, 6, "1 spawn + 2 restarts per shard: {events:?}");
        for needle in [
            &ShardEvent::Backoff { shard: 0, delay: Duration::from_millis(1) },
            &ShardEvent::Backoff { shard: 0, delay: Duration::from_millis(2) },
            &ShardEvent::Exhausted { shard: 1 },
            &ShardEvent::Reclaiming { shard: 1, remaining: 2 },
        ] {
            assert!(events.contains(needle), "missing {needle:?} in {events:?}");
        }
        assert!(run.report.health.is_clean(), "{}", run.report.health.summary());

        // The merged model is the single-process model, bit for bit.
        let (a, b) = (reference.score(&train), run.model.score(&train));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Heartbeat path: a worker that never writes its journal is stalled,
    /// killed, and restarted; when retries run out the shard is reclaimed.
    #[test]
    fn stalled_workers_are_killed_restarted_and_finally_reclaimed() {
        let train = data();
        let plan = TrainingPlan::full(train.n_features());
        let cfg = FracConfig::default().with_seed(5);
        let base = temp_base("stall");

        let mut events = Vec::new();
        let opts = ShardOptions { retry_budget: 1, ..fast_opts() };
        let run = train_sharded(
            &train,
            &plan,
            &cfg,
            &RunBudget::unlimited(),
            &base,
            1,
            &opts,
            &mut |_, _| sh("sleep 30"),
            &mut |e| events.push(e.clone()),
        )
        .unwrap();

        let stalls =
            events.iter().filter(|e| matches!(e, ShardEvent::Stalled { .. })).count();
        assert_eq!(stalls, 2, "first spawn + one restart, both stall: {events:?}");
        assert!(events.contains(&ShardEvent::Exhausted { shard: 0 }));
        assert_eq!(run.stats[0].restarts, 1);
        assert_eq!(run.stats[0].reclaimed, plan.n_targets());
        assert_eq!(run.model.n_targets(), plan.n_targets());
    }

    /// An expired budget skips workers entirely: the reclaim phase
    /// baseline-degrades every target (honest health) without a single
    /// spawn, and nothing provisional is journaled.
    #[test]
    fn expired_budget_goes_straight_to_reclaim() {
        let train = data();
        let plan = TrainingPlan::full(train.n_features());
        let cfg = FracConfig::default().with_seed(9);
        let base = temp_base("expired");

        let mut spawns = 0usize;
        let run = train_sharded(
            &train,
            &plan,
            &cfg,
            &RunBudget::with_deadline(Duration::ZERO),
            &base,
            3,
            &fast_opts(),
            &mut |_, _| {
                spawns += 1;
                sh("exit 0")
            },
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(spawns, 0, "no wall clock left — no workers");
        assert_eq!(run.report.health.targets_survived, plan.n_targets());
        assert!(run.report.health.n_degraded() >= plan.n_targets());
        for k in 0..3 {
            let path = shard_journal_path(&base, k, 3);
            let n = RunJournal::scan(&path).map_or(0, |s| s.records.len());
            assert_eq!(n, 0, "deadline-degraded targets must not be checkpointed");
        }
    }
}
