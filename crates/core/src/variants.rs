//! The scalable FRaC variants (paper §II) and their shared runner.
//!
//! [`run_variant`] takes a training set (all-normal samples), a test set, a
//! [`Variant`] description, and a [`FracConfig`]; it returns NS scores,
//! per-feature contributions, and a deterministic resource report. Every
//! variant reduces to: derive a feature selection / training plan /
//! projection, fit a [`FracModel`], score.

use crate::config::FracConfig;
use crate::model::{ContributionMatrix, DualCache, FracModel};
use crate::plan::TrainingPlan;
use crate::resources::ResourceReport;
use crate::selector::FeatureSelector;
use frac_dataset::stats::median;
use frac_dataset::split::derive_seed;
use frac_dataset::Dataset;
use frac_projection::{JlMatrixKind, JlTransform};
use std::collections::BTreeMap;
use std::time::Instant;

/// A FRaC variant to run.
#[derive(Debug, Clone)]
pub enum Variant {
    /// The original algorithm: every feature predicted from all others.
    Full,
    /// Full filtering (§II-A): keep `⌈p·f⌉` features by `selector`; both
    /// targets and inputs are restricted to the kept features.
    FullFilter {
        /// How to choose kept features.
        selector: FeatureSelector,
        /// Fraction kept (paper uses 0.05).
        p: f64,
    },
    /// Partial filtering (§II-A): only kept features get predictive models,
    /// but every predictor still sees all other features.
    PartialFilter {
        /// How to choose kept features.
        selector: FeatureSelector,
        /// Fraction kept.
        p: f64,
    },
    /// Diverse FRaC (§II-B): every feature is a target; each of its
    /// predictors sees an independent Bernoulli(`p`) feature subset.
    Diverse {
        /// Per-feature inclusion probability (paper uses ½, and 1/20 inside
        /// ensembles).
        p: f64,
        /// Predictors per target feature.
        models_per_feature: usize,
    },
    /// Ensemble (§II-C): run `members` independent copies of `base`
    /// (different derived seeds); per-feature scores are combined by median,
    /// then summed.
    Ensemble {
        /// The variant each member runs.
        base: Box<Variant>,
        /// Number of members (paper uses 10).
        members: usize,
    },
    /// JL pre-projection (§II-D): one-hot + concatenate + random-project to
    /// `dim` components, then ordinary FRaC in the projected space.
    JlProject {
        /// Projected dimension (paper uses 1024/2048/4096).
        dim: usize,
        /// Projection-matrix entry distribution.
        kind: JlMatrixKind,
    },
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Full => write!(f, "full"),
            Variant::FullFilter { selector, p } => write!(f, "{selector:?}-filter(p={p})"),
            Variant::PartialFilter { selector, p } => {
                write!(f, "{selector:?}-partial(p={p})")
            }
            Variant::Diverse { p, models_per_feature } => {
                write!(f, "diverse(p={p},m={models_per_feature})")
            }
            Variant::Ensemble { base, members } => write!(f, "ensemble({members}x {base})"),
            Variant::JlProject { dim, kind } => write!(f, "jl(d={dim},{kind:?})"),
        }
    }
}

/// The result of one variant run.
#[derive(Debug)]
pub struct VariantOutcome {
    /// NS anomaly score per test row (higher = more anomalous).
    pub ns: Vec<f64>,
    /// Per-feature contributions. For [`Variant::JlProject`] the feature ids
    /// index the *projected* space — the interpretability loss the paper
    /// discusses.
    pub contributions: ContributionMatrix,
    /// `(feature, cross-validated predictive strength)` of the fitted models
    /// (union over ensemble members, strength averaged).
    pub feature_strengths: Vec<(usize, f64)>,
    /// Features kept by a filtering variant (`None` otherwise).
    pub selected_features: Option<Vec<usize>>,
    /// Deterministic resource accounting for the run.
    pub resources: ResourceReport,
}

/// Run `variant` trained on `train` and scored on `test`.
///
/// `train` and `test` must share a schema. All randomness (selection,
/// diverse subsets, JL matrix, ensemble members) derives from `config.seed`.
pub fn run_variant(
    train: &Dataset,
    test: &Dataset,
    variant: &Variant,
    config: &FracConfig,
) -> VariantOutcome {
    run_variant_cached(train, test, variant, config, None)
}

/// [`run_variant`] with an optional [`DualCache`] threaded through the
/// variants whose members re-fit the same `(dataset, feature id)` problems
/// (full, partial filtering, diverse). Feature-re-indexing variants (full
/// filtering) and data-transforming variants (JL) skip the cache — their
/// per-member problems are not row/target-aligned across calls.
fn run_variant_cached(
    train: &Dataset,
    test: &Dataset,
    variant: &Variant,
    config: &FracConfig,
    cache: Option<&mut DualCache>,
) -> VariantOutcome {
    assert_eq!(
        train.schema(),
        test.schema(),
        "train and test must share a schema"
    );
    let t0 = Instant::now();
    let mut outcome = match variant {
        Variant::Full => {
            let plan = TrainingPlan::full(train.n_features());
            fit_and_score(train, test, &plan, config, None, cache)
        }
        Variant::FullFilter { selector, p } => {
            let sel_seed = derive_seed(config.seed, 0x5E1);
            let selected = selector.select(train, *p, sel_seed);
            let train_sub = train.select_features(&selected);
            let test_sub = test.select_features(&selected);
            let plan = TrainingPlan::full(selected.len());
            // Local target ids remap per selection, so no dual reuse here.
            let mut out = fit_and_score(&train_sub, &test_sub, &plan, config, None, None);
            out.resources.flops += selector.selection_flops(train);
            // Map contribution/strength ids back into the original space.
            remap_feature_ids(&mut out, &selected);
            out.selected_features = Some(selected);
            out
        }
        Variant::PartialFilter { selector, p } => {
            let sel_seed = derive_seed(config.seed, 0x5E1);
            let selected = selector.select(train, *p, sel_seed);
            let plan = TrainingPlan::partial_filtered(&selected, train.n_features());
            let mut out = fit_and_score(train, test, &plan, config, None, cache);
            out.resources.flops += selector.selection_flops(train);
            out.selected_features = Some(selected);
            out
        }
        Variant::Diverse { p, models_per_feature } => {
            let plan_seed = derive_seed(config.seed, 0xD1F);
            let plan =
                TrainingPlan::diverse(train.n_features(), *p, *models_per_feature, plan_seed);
            fit_and_score(train, test, &plan, config, None, cache)
        }
        Variant::Ensemble { base, members } => run_ensemble(train, test, base, *members, config),
        Variant::JlProject { dim, kind } => {
            let jl = JlTransform::new(*dim, *kind, derive_seed(config.seed, 0x11));
            let train_p = jl.project_dataset(train);
            let test_p = jl.project_dataset(test);
            let plan = TrainingPlan::full(*dim);
            let mut out = fit_and_score(&train_p, &test_p, &plan, config, None, None);
            // Projection cost: (rows × one-hot width × k) multiply-adds.
            let d_onehot = train.schema().one_hot_width() as u64;
            let rows = (train.n_rows() + test.n_rows()) as u64;
            out.resources.flops += 2 * rows * d_onehot * (*dim as u64);
            // Both the source and projected data are live during projection.
            out.resources.dataset_bytes =
                train.approx_bytes() as u64 + train_p.approx_bytes() as u64;
            out
        }
    };
    outcome.resources.wall = t0.elapsed();
    outcome
}

/// Common fit-then-score path.
fn fit_and_score(
    train: &Dataset,
    test: &Dataset,
    plan: &TrainingPlan,
    config: &FracConfig,
    selected: Option<Vec<usize>>,
    cache: Option<&mut DualCache>,
) -> VariantOutcome {
    let (model, resources) = match cache {
        Some(cache) => FracModel::fit_cached(train, plan, config, cache),
        None => FracModel::fit(train, plan, config),
    };
    let contributions = model.contributions(test);
    let ns = contributions.ns_scores();
    VariantOutcome {
        ns,
        feature_strengths: model.feature_strengths(),
        contributions,
        selected_features: selected,
        resources,
    }
}

/// Rewrite contribution/strength feature ids through a selection map
/// (`local index → original feature index`).
fn remap_feature_ids(out: &mut VariantOutcome, selected: &[usize]) {
    for id in &mut out.contributions.feature_ids {
        *id = selected[*id];
    }
    for (id, _) in &mut out.feature_strengths {
        *id = selected[*id];
    }
}

/// §II-C ensembles: independent members, per-feature median combination.
fn run_ensemble(
    train: &Dataset,
    test: &Dataset,
    base: &Variant,
    members: usize,
    config: &FracConfig,
) -> VariantOutcome {
    assert!(members >= 1, "ensemble needs at least one member");
    let n_rows = test.n_rows();
    // feature id → (per-member contribution columns, strengths)
    let mut columns: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
    let mut strengths: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut resources = ResourceReport::default();
    let mut selected_union: Vec<usize> = Vec::new();
    // Ensemble members re-fit the same per-feature problems under different
    // seeds/input sets; each member's SVM solves warm-start from the
    // previous member's duals through this cache.
    let mut dual_cache = DualCache::default();

    for m in 0..members {
        let member_cfg = FracConfig {
            seed: derive_seed(config.seed, 0xE45_0000 + m as u64),
            ..*config
        };
        let out = run_variant_cached(train, test, base, &member_cfg, Some(&mut dual_cache));
        if m == 0 {
            resources = out.resources;
        } else {
            resources.merge_sequential(&out.resources);
        }
        for (idx, fid) in out.contributions.feature_ids.iter().enumerate() {
            columns
                .entry(*fid)
                .or_default()
                .push(out.contributions.values[idx].clone());
        }
        for (fid, s) in out.feature_strengths {
            strengths.entry(fid).or_default().push(s);
        }
        if let Some(sel) = out.selected_features {
            selected_union.extend(sel);
        }
    }

    // Per-feature median across the members that scored it (paper §II-C).
    let mut feature_ids = Vec::with_capacity(columns.len());
    let mut values = Vec::with_capacity(columns.len());
    for (fid, member_cols) in columns {
        let mut combined = vec![0.0f64; n_rows];
        let mut buf = Vec::with_capacity(member_cols.len());
        for (r, slot) in combined.iter_mut().enumerate() {
            buf.clear();
            buf.extend(member_cols.iter().map(|c| c[r]));
            *slot = median(&buf).unwrap_or(0.0);
        }
        feature_ids.push(fid);
        values.push(combined);
    }
    // The median combines per-feature columns across members; any target a
    // member dropped simply contributes no column, so no renorm is applied
    // at the ensemble level.
    let contributions = ContributionMatrix { feature_ids, values, n_rows, renorm: 1.0 };
    let ns = contributions.ns_scores();
    let feature_strengths = strengths
        .into_iter()
        .map(|(fid, ss)| (fid, ss.iter().sum::<f64>() / ss.len() as f64))
        .collect();

    selected_union.sort_unstable();
    selected_union.dedup();
    VariantOutcome {
        ns,
        contributions,
        feature_strengths,
        selected_features: if selected_union.is_empty() {
            None
        } else {
            Some(selected_union)
        },
        resources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_synth::{ExpressionConfig, ExpressionGenerator};

    fn expr_split() -> (Dataset, Dataset, Vec<bool>) {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 30,
            n_modules: 5,
            relevant_fraction: 0.9,
            anomaly_modules: 2,
            anomaly_shift: 3.0,
            noise_sd: 0.5,
            structure_seed: 21,
            ..ExpressionConfig::default()
        });
        let (data, labels) = g.generate(36, 8, 3);
        let train = data.select_rows(&(0..24).collect::<Vec<_>>());
        let test_rows: Vec<usize> = (24..44).collect();
        let test = data.select_rows(&test_rows);
        let test_labels: Vec<bool> = test_rows.iter().map(|&r| labels[r]).collect();
        (train, test, test_labels)
    }

    fn separates(ns: &[f64], labels: &[bool]) -> bool {
        let mean = |anom: bool| -> f64 {
            let v: Vec<f64> = ns
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == anom)
                .map(|(&s, _)| s)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        mean(true) > mean(false)
    }

    #[test]
    fn all_variants_run_and_separate() {
        let (train, test, labels) = expr_split();
        let cfg = FracConfig::default();
        let variants: Vec<Variant> = vec![
            Variant::Full,
            Variant::FullFilter { selector: FeatureSelector::Random, p: 0.5 },
            Variant::PartialFilter { selector: FeatureSelector::Entropy, p: 0.5 },
            Variant::Diverse { p: 0.5, models_per_feature: 1 },
            Variant::JlProject { dim: 16, kind: JlMatrixKind::Gaussian },
            Variant::Ensemble {
                base: Box::new(Variant::FullFilter {
                    selector: FeatureSelector::Random,
                    p: 0.3,
                }),
                members: 3,
            },
        ];
        for v in &variants {
            let out = run_variant(&train, &test, v, &cfg);
            assert_eq!(out.ns.len(), test.n_rows(), "{v}");
            assert!(out.ns.iter().all(|s| s.is_finite()), "{v}");
            assert!(separates(&out.ns, &labels), "{v} failed to separate");
            assert!(out.resources.flops > 0, "{v}");
            assert!(out.resources.models_trained > 0, "{v}");
        }
    }

    #[test]
    fn filtering_reduces_cost_quadratically() {
        let (train, test, _) = expr_split();
        let cfg = FracConfig::default();
        let full = run_variant(&train, &test, &Variant::Full, &cfg);
        let filtered = run_variant(
            &train,
            &test,
            &Variant::FullFilter { selector: FeatureSelector::Random, p: 0.2 },
            &cfg,
        );
        let frac = filtered.resources.flops_fraction_of(&full.resources);
        // p = 0.2 → models × inputs both shrink: ≈ p² = 0.04 of full, with
        // generous tolerance for per-model convergence variation.
        assert!(frac < 0.2, "flops fraction {frac}");
        let mem = filtered.resources.mem_fraction_of(&full.resources);
        assert!(mem < 0.5, "memory fraction {mem}");
    }

    #[test]
    fn partial_filter_costs_more_than_full_filter() {
        let (train, test, _) = expr_split();
        let cfg = FracConfig::default();
        let full_f = run_variant(
            &train,
            &test,
            &Variant::FullFilter { selector: FeatureSelector::Random, p: 0.3 },
            &cfg,
        );
        let partial = run_variant(
            &train,
            &test,
            &Variant::PartialFilter { selector: FeatureSelector::Random, p: 0.3 },
            &cfg,
        );
        // Same number of targets, but partial's inputs are the whole feature
        // space — strictly more work per model (paper: "consistently worse…
        // in time [and] space").
        assert!(partial.resources.flops > full_f.resources.flops);
    }

    #[test]
    fn ensemble_is_deterministic_and_members_differ() {
        let (train, test, _) = expr_split();
        let cfg = FracConfig::default();
        let ens = Variant::Ensemble {
            base: Box::new(Variant::FullFilter {
                selector: FeatureSelector::Random,
                p: 0.3,
            }),
            members: 3,
        };
        let a = run_variant(&train, &test, &ens, &cfg);
        let b = run_variant(&train, &test, &ens, &cfg);
        assert_eq!(a.ns, b.ns);
        // Members selected different subsets, so the union exceeds one
        // member's selection size.
        let union = a.selected_features.unwrap();
        assert!(union.len() > 9, "union of member selections: {}", union.len());
    }

    #[test]
    fn ensemble_median_bounds_by_member_range() {
        // For a single-member "ensemble", median = the member itself.
        let (train, test, _) = expr_split();
        let cfg = FracConfig::default();
        let base = Variant::Diverse { p: 0.5, models_per_feature: 1 };
        let single = run_variant(
            &train,
            &test,
            &Variant::Ensemble { base: Box::new(base.clone()), members: 1 },
            &cfg,
        );
        let member_cfg = FracConfig {
            seed: derive_seed(cfg.seed, 0xE45_0000),
            ..cfg
        };
        let direct = run_variant(&train, &test, &base, &member_cfg);
        for (a, b) in single.ns.iter().zip(&direct.ns) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn jl_feature_ids_live_in_projected_space() {
        let (train, test, _) = expr_split();
        let out = run_variant(
            &train,
            &test,
            &Variant::JlProject { dim: 8, kind: JlMatrixKind::AchlioptasSparse },
            &FracConfig::default(),
        );
        assert_eq!(out.contributions.feature_ids, (0..8).collect::<Vec<_>>());
        assert_eq!(out.feature_strengths.len(), 8);
    }

    #[test]
    fn filter_outcome_reports_original_feature_ids() {
        let (train, test, _) = expr_split();
        let out = run_variant(
            &train,
            &test,
            &Variant::FullFilter { selector: FeatureSelector::Random, p: 0.3 },
            &FracConfig::default(),
        );
        let selected = out.selected_features.unwrap();
        assert_eq!(out.contributions.feature_ids, selected);
        assert!(selected.iter().all(|&f| f < train.n_features()));
    }

    #[test]
    fn variant_display_names() {
        assert_eq!(Variant::Full.to_string(), "full");
        let v = Variant::Ensemble {
            base: Box::new(Variant::FullFilter {
                selector: FeatureSelector::Random,
                p: 0.05,
            }),
            members: 10,
        };
        assert_eq!(v.to_string(), "ensemble(10x Random-filter(p=0.05))");
    }

    #[test]
    #[should_panic(expected = "share a schema")]
    fn schema_mismatch_rejected() {
        let (train, _, _) = expr_split();
        let other = Dataset::from_real_rows(&[vec![1.0]]);
        run_variant(&train, &other, &Variant::Full, &FracConfig::default());
    }
}
