//! Deterministic fault injection for the fit/score pipeline.
//!
//! The fault-isolation guarantees of [`crate::FracModel`] — no panic escapes
//! `fit`/`score`, NS scores stay finite, every degradation lands in
//! [`crate::RunHealth`] — are only guarantees if they are exercised. A
//! [`FaultPlan`] is a seeded injector that (a) poisons dataset cells with
//! NaN/±Inf, (b) forces solver non-convergence at chosen targets, and
//! (c) triggers panics at chosen targets, all deterministically, so the
//! fault-injection test suite replays the exact same disaster every run.
//!
//! An empty plan ([`FaultPlan::none`]) injects nothing and leaves the fit
//! pipeline on its bit-identical clean path.

use frac_dataset::dataset::MISSING_CODE;
use frac_dataset::split::derive_seed;
use frac_dataset::{Column, Dataset};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// A deterministic plan of injected faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for cell poisoning; all randomness derives from it.
    pub seed: u64,
    /// Fraction of cells [`FaultPlan::poison`] corrupts (0 disables).
    pub poison_fraction: f64,
    /// Targets whose first fit attempt is forced to report non-convergence,
    /// exercising the strict-solver retry rung.
    pub diverge_targets: BTreeSet<usize>,
    /// Targets whose fit attempt is forced to panic, exercising the
    /// `catch_unwind` + baseline-substitution rung.
    pub panic_targets: BTreeSet<usize>,
    /// Shards whose worker process exits nonzero immediately at startup,
    /// every attempt — a crash-looping worker. Exercises the supervisor's
    /// retry/backoff and shard-reclaim paths (see [`crate::shard`]).
    pub crashloop_shards: BTreeSet<usize>,
    /// Per-shard record budgets: the worker for shard `k` aborts (as if
    /// SIGKILLed) once its shard journal holds at least `abort_after[k]`
    /// records. Exercises mid-run worker death at a record boundary.
    pub abort_after_records: std::collections::BTreeMap<usize, usize>,
}

/// The panic payload used for injected panics, so tests (and humans reading
/// a health report) can tell an injected panic from a real one.
pub const INJECTED_PANIC: &str = "injected fault: trainer panic";

/// Environment variable that makes a shard worker exit nonzero at startup
/// (crash-loop injection). Set per worker by the supervisor's fault harness;
/// honored by [`crate::shard::apply_worker_faults_from_env`].
pub const ENV_SHARD_CRASHLOOP: &str = "FRAC_SHARD_CRASHLOOP";

/// Environment variable holding a record count after which a shard worker
/// aborts (simulated SIGKILL at a record boundary). Set per worker by the
/// supervisor's fault harness; honored by
/// [`crate::shard::apply_worker_faults_from_env`].
pub const ENV_SHARD_ABORT_AFTER: &str = "FRAC_SHARD_ABORT_AFTER";

/// Process-global abort-after state: whether a budget is armed, and how
/// many more journal records this process may append before it aborts.
/// Armed once at worker startup by
/// [`crate::shard::apply_worker_faults_from_env`], consumed by the journal
/// write path, so the injected death lands deterministically at a record
/// boundary. (An earlier timer-based watcher lost the race against a
/// worker fast enough to finish its whole sub-plan between polls.)
static ABORT_ARMED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);
static ABORT_REMAINING: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Arm the abort-after fault: the process aborts — `abort()`, not
/// `exit()`: no atexit handlers, no unwinding, the closest in-process
/// stand-in for SIGKILL — at the record boundary that brings its journal
/// to the configured count. `remaining` is how many more records may be
/// appended; 0 aborts on the spot (the journal already holds enough).
pub(crate) fn arm_abort_after_records(remaining: usize) {
    use std::sync::atomic::Ordering;
    if remaining == 0 {
        std::process::abort();
    }
    ABORT_REMAINING.store(remaining, Ordering::SeqCst);
    ABORT_ARMED.store(true, Ordering::SeqCst);
}

/// Journal hook for the armed abort-after fault: `n` records were just
/// written. Aborts once the armed budget is consumed; a no-op (one relaxed
/// load) in every process that never armed a fault.
pub(crate) fn note_journal_records_appended(n: usize) {
    use std::sync::atomic::Ordering;
    if n == 0 || !ABORT_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let update = ABORT_REMAINING
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v.saturating_sub(n)));
    if let Ok(prev) = update {
        if prev <= n {
            std::process::abort();
        }
    }
}

/// The exit code of a crash-looping worker, distinct from ordinary failures
/// so supervisor tests can assert on the injected cause.
pub const CRASHLOOP_EXIT_CODE: i32 = 101;

impl FaultPlan {
    /// The empty plan: injects nothing; `fit` stays on the clean path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given seed and no faults yet (builder style).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Poison this fraction of cells in [`FaultPlan::poison`].
    pub fn with_poison(mut self, fraction: f64) -> Self {
        self.poison_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Force non-convergence of the first fit attempt at these targets.
    pub fn with_diverge_at(mut self, targets: impl IntoIterator<Item = usize>) -> Self {
        self.diverge_targets.extend(targets);
        self
    }

    /// Force a panic inside the fit attempt at these targets.
    pub fn with_panic_at(mut self, targets: impl IntoIterator<Item = usize>) -> Self {
        self.panic_targets.extend(targets);
        self
    }

    /// Make the worker for these shards crash-loop (exit nonzero at startup
    /// on every attempt).
    pub fn with_crashloop_at(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.crashloop_shards.extend(shards);
        self
    }

    /// Make the worker for `shard` abort once its journal holds `records`
    /// completed records — a simulated SIGKILL at that record boundary.
    pub fn with_abort_after(mut self, shard: usize, records: usize) -> Self {
        self.abort_after_records.insert(shard, records);
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.poison_fraction == 0.0
            && self.diverge_targets.is_empty()
            && self.panic_targets.is_empty()
            && self.crashloop_shards.is_empty()
            && self.abort_after_records.is_empty()
    }

    /// The environment variables the supervisor must set on the worker for
    /// `shard` so the worker enacts this plan's process-level faults
    /// (crash-loop / abort-after). Empty when the shard is unaffected.
    pub fn worker_env(&self, shard: usize) -> Vec<(&'static str, String)> {
        let mut env = Vec::new();
        if self.crashloop_shards.contains(&shard) {
            env.push((ENV_SHARD_CRASHLOOP, "1".to_string()));
        }
        if let Some(&n) = self.abort_after_records.get(&shard) {
            env.push((ENV_SHARD_ABORT_AFTER, n.to_string()));
        }
        env
    }

    /// Does this plan force the first fit attempt at `target` to diverge?
    pub fn forces_diverge(&self, target: usize) -> bool {
        self.diverge_targets.contains(&target)
    }

    /// Does this plan force a panic while fitting `target`?
    pub fn forces_panic(&self, target: usize) -> bool {
        self.panic_targets.contains(&target)
    }

    /// A copy of `data` with `poison_fraction` of its cells corrupted:
    /// real cells become NaN / `+Inf` / `−Inf` (cycling), categorical cells
    /// become missing. Deterministic in `(seed, data shape)`.
    pub fn poison(&self, data: &Dataset) -> Dataset {
        if self.poison_fraction <= 0.0 {
            return data.clone();
        }
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, 0xBAD));
        let mut n_poisoned = 0usize;
        let columns = (0..data.n_features())
            .map(|j| match data.column(j) {
                Column::Real(v) => Column::Real(
                    v.iter()
                        .map(|&x| {
                            if rng.random::<f64>() < self.poison_fraction {
                                n_poisoned += 1;
                                match n_poisoned % 3 {
                                    0 => f64::NAN,
                                    1 => f64::INFINITY,
                                    _ => f64::NEG_INFINITY,
                                }
                            } else {
                                x
                            }
                        })
                        .collect(),
                ),
                Column::Categorical { arity, codes } => Column::Categorical {
                    arity: *arity,
                    codes: codes
                        .iter()
                        .map(|&c| {
                            if rng.random::<f64>() < self.poison_fraction {
                                MISSING_CODE
                            } else {
                                c
                            }
                        })
                        .collect(),
                },
            })
            .collect();
        Dataset::new(data.schema().clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::dataset::DatasetBuilder;

    fn data() -> Dataset {
        DatasetBuilder::new()
            .real("a", (0..200).map(|i| i as f64).collect())
            .categorical("b", 3, (0..200).map(|i| (i % 3) as u32).collect())
            .build()
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.forces_diverge(0));
        assert!(!p.forces_panic(0));
        assert_eq!(p.poison(&data()), data());
    }

    #[test]
    fn builders_register_targets() {
        let p = FaultPlan::seeded(7).with_diverge_at([1, 3]).with_panic_at([2]);
        assert!(!p.is_empty());
        assert!(p.forces_diverge(1) && p.forces_diverge(3) && !p.forces_diverge(2));
        assert!(p.forces_panic(2) && !p.forces_panic(1));
    }

    #[test]
    fn process_faults_register_and_encode_as_worker_env() {
        let p = FaultPlan::none().with_crashloop_at([1]).with_abort_after(0, 3);
        assert!(!p.is_empty());
        assert_eq!(p.worker_env(1), vec![(ENV_SHARD_CRASHLOOP, "1".to_string())]);
        assert_eq!(p.worker_env(0), vec![(ENV_SHARD_ABORT_AFTER, "3".to_string())]);
        assert!(p.worker_env(2).is_empty());
    }

    #[test]
    fn poison_is_deterministic_and_hits_roughly_the_fraction() {
        let p = FaultPlan::seeded(42).with_poison(0.2);
        let a = p.poison(&data());
        let b = p.poison(&data());
        // NaN != NaN, so determinism is checked on bit patterns.
        let bits = |d: &Dataset| -> Vec<u64> {
            d.column(0).as_real().unwrap().iter().map(|x| x.to_bits()).collect()
        };
        assert_eq!(bits(&a), bits(&b), "same seed must poison identically");
        assert_eq!(a.column(1), b.column(1));

        let real = a.column(0).as_real().unwrap();
        let bad = real.iter().filter(|x| !x.is_finite()).count();
        assert!((20..=60).contains(&bad), "poisoned {bad}/200 real cells");
        let codes = a.column(1).as_categorical().unwrap();
        let missing = codes.iter().filter(|&&c| c == MISSING_CODE).count();
        assert!((20..=60).contains(&missing), "poisoned {missing}/200 codes");
    }

    #[test]
    fn different_seeds_poison_differently() {
        let d = data();
        let a = FaultPlan::seeded(1).with_poison(0.3).poison(&d);
        let b = FaultPlan::seeded(2).with_poison(0.3).poison(&d);
        let bits = |d: &Dataset| -> Vec<u64> {
            d.column(0).as_real().unwrap().iter().map(|x| x.to_bits()).collect()
        };
        assert_ne!(bits(&a), bits(&b));
    }

    #[test]
    fn poison_cycles_all_three_poisons() {
        let d = data();
        let a = FaultPlan::seeded(9).with_poison(0.5).poison(&d);
        let real = a.column(0).as_real().unwrap();
        assert!(real.iter().any(|x| x.is_nan()));
        assert!(real.iter().any(|&x| x == f64::INFINITY));
        assert!(real.iter().any(|&x| x == f64::NEG_INFINITY));
    }
}
