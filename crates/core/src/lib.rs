//! # frac-core
//!
//! The FRaC anomaly detector and its scalable variants (Cousins, Pietras,
//! Slonim — *Scalable FRaC Variants: Anomaly Detection for Precision
//! Medicine*, IPPS 2017).
//!
//! FRaC (Feature Regression and Classification) trains, for every feature of
//! a data set, a supervised model predicting that feature from (a subset of)
//! the others, plus a cross-validated *error model* of its prediction errors.
//! A test sample's anomaly score is its **normalized surprisal**:
//!
//! ```text
//!   NS(x) = Σ_i Σ_j [ −log P(x_i | p_ij(x_{−i})) − H(f_i) ]
//! ```
//!
//! summed over features `i` and predictors `j`, with missing features
//! contributing zero. High NS = the sample's features are collectively
//! improbable given each other = anomalous.
//!
//! The crate implements the original algorithm and every scalable variant of
//! the paper's §II:
//!
//! | Variant | Paper | Entry point |
//! |---|---|---|
//! | full FRaC | §I-A-1 | [`Variant::Full`] |
//! | full filtering (random/entropy) | §II-A | [`Variant::FullFilter`] |
//! | partial filtering | §II-A | [`Variant::PartialFilter`] |
//! | Diverse FRaC | §II-B | [`Variant::Diverse`] |
//! | ensembles (per-feature median) | §II-C | [`Variant::Ensemble`] |
//! | JL pre-projection | §II-D | [`Variant::JlProject`] |
//! | CSAX characterization | ref. 7 (context) | [`csax::characterize`] |
//!
//! Everything is driven through [`run_variant`], which returns NS scores for
//! a test set together with a deterministic [`ResourceReport`] (model count,
//! flops, peak bytes, wall time) — the raw material for the paper's time and
//! memory columns. Per-feature training is rayon-parallel with per-feature
//! seeds, so results are bit-identical at any thread count.

#![deny(missing_docs)]
// Fault isolation is a core guarantee of this crate: library code must
// degrade per target, never panic on an Option/Result shortcut. Test code
// is exempt — asserting via unwrap is exactly what tests are for.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod csax;
pub mod fault;
pub mod health;
pub mod journal;
pub mod model;
pub mod persist;
pub mod plan;
pub mod resources;
pub mod selector;
pub mod serve;
pub mod shard;
pub mod variants;

pub use config::{CatModel, FracConfig, RealModel};
pub use frac_learn::telemetry;
pub use frac_learn::solver::describe_strategy_mask;
pub use frac_learn::{CancelHandle, RunBudget, SolverMode, SolverStrategy, TargetBudget};
pub use csax::{characterize, CsaxConfig, GeneSet, SampleCharacterization};
pub use fault::FaultPlan;
pub use health::{FallbackKind, RunHealth, TargetHealth, TargetOutcome};
pub use journal::{JournalError, JournalHeader, JournalScan, RunJournal, TargetRecord};
pub use model::{ContributionMatrix, DualCache, FracModel, JournaledFit};
pub use plan::{TargetPlan, TrainingPlan};
pub use resources::ResourceReport;
pub use selector::FeatureSelector;
pub use serve::{validate_model, ServeConfig, ServeCounts, ServeHandle, ServeSummary, Server};
pub use shard::{ShardError, ShardEvent, ShardOptions, ShardRun, ShardStat};
pub use variants::{run_variant, Variant, VariantOutcome};
