//! Deterministic resource accounting.
//!
//! The paper's Tables II–V report CPU time (hours) and memory (GB); its
//! scalability claims are entirely about the *ratios* of these quantities
//! between variants. At our reduced scale, wall-clock and RSS sampling are
//! dominated by constant overheads and allocator noise, so the primary
//! metric is analytic:
//!
//! * **flops** — every model training reports its floating-point work
//!   (epochs × samples × dimensions for the SVMs, node-sweep costs for the
//!   trees), summed over CV folds, features, and ensemble members.
//! * **peak_bytes** — the data set, all *retained* model state (FRaC keeps
//!   every feature's model for scoring — the reason the paper's full runs
//!   needed ~200 GB), plus the largest transient training working set.
//!
//! Wall time is also measured and reported; at full scale the analytic and
//! measured ratios converge, and our benches print both.

use crate::health::RunHealth;
use frac_learn::telemetry::TelemetryReport;
use std::time::Duration;

/// Resource usage of one FRaC run (training + scoring).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceReport {
    /// Number of predictor trainings performed (CV folds included).
    pub models_trained: u64,
    /// Approximate floating-point operations.
    pub flops: u64,
    /// Bytes of the training data resident during the run.
    pub dataset_bytes: u64,
    /// Bytes of the shared encoded-feature pool: every used feature is
    /// encoded once per run and all per-target design matrices are served
    /// as views over it, so this is charged once — not per target.
    pub pool_bytes: u64,
    /// Bytes of retained model state (predictors + error models).
    pub model_bytes: u64,
    /// Largest transient working set of any single model training
    /// (view overhead + solver state).
    pub transient_bytes: u64,
    /// Measured wall-clock time.
    pub wall: Duration,
    /// Per-target degradation accounting: quarantines, fallbacks, drops.
    /// Clean runs carry an empty (but fully counted) report.
    pub health: RunHealth,
    /// Span-level trace of the run when a
    /// [`TelemetrySession`](frac_learn::telemetry::TelemetrySession) was
    /// active around it (the CLI's `--telemetry` flag attaches it here);
    /// `None` otherwise.
    pub telemetry: Option<TelemetryReport>,
}

impl ResourceReport {
    /// Total peak bytes: data + shared pool + retained models + worst
    /// transient.
    pub fn peak_bytes(&self) -> u64 {
        self.dataset_bytes + self.pool_bytes + self.model_bytes + self.transient_bytes
    }

    /// Merge a report for work executed *after* `other` (sequential
    /// composition): flops/models add, transients max, retained model bytes
    /// add, dataset bytes max (the same data set is shared).
    pub fn merge_sequential(&mut self, other: &ResourceReport) {
        self.models_trained += other.models_trained;
        self.flops += other.flops;
        self.dataset_bytes = self.dataset_bytes.max(other.dataset_bytes);
        // Sequential runs build their pools one at a time; only the largest
        // is ever resident.
        self.pool_bytes = self.pool_bytes.max(other.pool_bytes);
        self.model_bytes += other.model_bytes;
        self.transient_bytes = self.transient_bytes.max(other.transient_bytes);
        self.wall += other.wall;
        self.health.merge_sequential(&other.health);
        // A telemetry session traces one run; a merged report keeps the
        // first run's trace (if any) rather than inventing a combined one.
        if self.telemetry.is_none() {
            self.telemetry = other.telemetry.clone();
        }
    }

    /// Fraction of another (baseline) report's flops — the paper's "Time %".
    pub fn flops_fraction_of(&self, baseline: &ResourceReport) -> f64 {
        if baseline.flops == 0 {
            return f64::NAN;
        }
        self.flops as f64 / baseline.flops as f64
    }

    /// Fraction of another report's peak bytes — the paper's "Mem %".
    pub fn mem_fraction_of(&self, baseline: &ResourceReport) -> f64 {
        if baseline.peak_bytes() == 0 {
            return f64::NAN;
        }
        self.peak_bytes() as f64 / baseline.peak_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(models: u64, flops: u64, data: u64, model: u64, transient: u64) -> ResourceReport {
        ResourceReport {
            models_trained: models,
            flops,
            dataset_bytes: data,
            pool_bytes: 10,
            model_bytes: model,
            transient_bytes: transient,
            wall: Duration::from_millis(10),
            ..ResourceReport::default()
        }
    }

    #[test]
    fn peak_is_data_plus_pool_plus_models_plus_transient() {
        let r = report(1, 100, 1000, 500, 200);
        assert_eq!(r.peak_bytes(), 1710);
    }

    #[test]
    fn sequential_merge_semantics() {
        let mut a = report(2, 100, 1000, 500, 200);
        let mut b = report(3, 50, 800, 300, 400);
        b.pool_bytes = 25;
        a.merge_sequential(&b);
        assert_eq!(a.models_trained, 5);
        assert_eq!(a.flops, 150);
        assert_eq!(a.dataset_bytes, 1000); // shared data: max
        assert_eq!(a.pool_bytes, 25); // one pool resident at a time: max
        assert_eq!(a.model_bytes, 800); // retained: add
        assert_eq!(a.transient_bytes, 400); // transient: max
        assert_eq!(a.wall, Duration::from_millis(20));
    }

    #[test]
    fn fractions_against_baseline() {
        let full = report(10, 1000, 100, 900, 0);
        let reduced = report(1, 50, 100, 9, 0);
        assert!((reduced.flops_fraction_of(&full) - 0.05).abs() < 1e-12);
        assert!((reduced.mem_fraction_of(&full) - 119.0 / 1010.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_yields_nan() {
        let z = ResourceReport::default();
        assert!(z.flops_fraction_of(&z).is_nan());
        assert!(z.mem_fraction_of(&z).is_nan());
    }
}
