//! Fitting and scoring of FRaC models.
//!
//! [`FracModel::fit`] executes a [`TrainingPlan`]: per target feature it
//! fits the configured predictor(s) plus a cross-validated error model and
//! records the training-set entropy `H(f_i)`. [`FracModel::contributions`]
//! then scores a test set, returning each feature's normalized-surprisal
//! contribution separately (the paper's interpretability analyses — "two of
//! the top 20 predictive SNP models" — need per-feature scores, and
//! ensembles combine members per-feature by median).
//!
//! Per-feature work runs under rayon with seeds derived from
//! `(config.seed, target, member)`, so results are identical at any thread
//! count.
//!
//! The fit loop is **fault-isolated**: the training set is screened and
//! sanitized by [`frac_dataset::quarantine`] before anything reaches a
//! solver, each member fit runs behind `catch_unwind` with a fallback
//! ladder (configured model → strict solver → baseline predictor → drop),
//! and every degradation is recorded in the run's
//! [`RunHealth`]. On a clean dataset none of this
//! machinery fires and the fitted model is bit-identical to the plain path.

use crate::config::{CatModel, FracConfig, RealModel};
use crate::fault::{FaultPlan, INJECTED_PANIC};
use crate::health::{FallbackKind, RunHealth, TargetHealth, TargetOutcome};
use crate::journal::{self, JournalError, JournalHeader, RunJournal, TargetRecord};
use crate::plan::{TargetPlan, TrainingPlan};
use crate::resources::ResourceReport;
use frac_dataset::design::{DesignSpec, PoolSpec};
use frac_dataset::entropy::column_entropy;
use frac_dataset::quarantine::{self, QuarantineReason, ScreenReport};
use frac_dataset::split::{derive_seed, k_fold, Fold};
use frac_dataset::{Column, Dataset, DesignMatrix, DesignView, EncodedPool, PoolView, RowSubset};
use frac_learn::baseline::{ConstantRegressorTrainer, MajorityClassifierTrainer};
use frac_learn::cv::{
    cv_classification_folds, cv_classification_folds_budgeted, cv_regression_folds,
    cv_regression_folds_budgeted,
};
use frac_learn::svc::SvcTrainer;
use frac_learn::svr::SvrTrainer;
use frac_learn::telemetry;
use frac_learn::tree::{ClassificationTreeTrainer, RegressionTreeTrainer};
use frac_learn::{
    Classifier, ClassificationTree, ConfusionErrorModel, ConstantRegressor, GaussianErrorModel,
    LinearSvc, LinearSvr, MajorityClassifier, RegressionTree, Regressor, RunBudget, TargetBudget,
    TrainError, TrainingCost,
};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Process-wide fit counter: every [`FracModel::fit`]-family call takes a
/// fresh nonce that scopes the thread-local solver pack cache
/// ([`frac_learn::solver::pack_cache`]), so a design gathered for one fit
/// can never be mistaken for the same-shaped design of a later fit over
/// different data.
static FIT_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Pack-cache scope key for one fitted predictor problem: ensemble members
/// differ by input set (different design columns at identical shapes), so
/// the scope hashes the fit nonce, target, and the exact input list.
fn pack_scope(fit_nonce: u64, target: usize, inputs: &[usize]) -> u64 {
    let mut buf = Vec::with_capacity((2 + inputs.len()) * 8);
    buf.extend_from_slice(&fit_nonce.to_le_bytes());
    buf.extend_from_slice(&(target as u64).to_le_bytes());
    for &i in inputs {
        buf.extend_from_slice(&(i as u64).to_le_bytes());
    }
    frac_dataset::crc::fnv64(&buf)
}

/// A fitted real-target predictor: a closed enum (rather than a trait
/// object) so models can be persisted and reloaded exactly.
pub(crate) enum RealPredictor {
    Svr(LinearSvr),
    Tree(RegressionTree),
    Constant(ConstantRegressor),
}

impl RealPredictor {
    pub(crate) fn predict(&self, x: &[f64]) -> f64 {
        match self {
            RealPredictor::Svr(m) => m.predict(x),
            RealPredictor::Tree(m) => m.predict(x),
            RealPredictor::Constant(m) => m.predict(x),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            RealPredictor::Svr(m) => m.approx_bytes(),
            RealPredictor::Tree(m) => m.approx_bytes(),
            RealPredictor::Constant(m) => m.approx_bytes(),
        }
    }
}

/// A fitted categorical-target predictor (closed enum, see
/// [`RealPredictor`]).
pub(crate) enum CatPredictor {
    Tree(ClassificationTree),
    Svc(LinearSvc),
    Majority(MajorityClassifier),
}

impl CatPredictor {
    pub(crate) fn predict(&self, x: &[f64]) -> u32 {
        match self {
            CatPredictor::Tree(m) => m.predict(x),
            CatPredictor::Svc(m) => m.predict(x),
            CatPredictor::Majority(m) => m.predict(x),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            CatPredictor::Tree(m) => m.approx_bytes(),
            CatPredictor::Svc(m) => m.approx_bytes(),
            CatPredictor::Majority(m) => m.approx_bytes(),
        }
    }
}

/// A fitted predictor for one target feature.
pub(crate) enum PredictorModel {
    Real(RealPredictor),
    Cat(CatPredictor),
}

impl PredictorModel {
    fn approx_bytes(&self) -> usize {
        match self {
            PredictorModel::Real(m) => m.approx_bytes(),
            PredictorModel::Cat(m) => m.approx_bytes(),
        }
    }
}

/// The error model paired with a predictor.
pub(crate) enum ErrorModel {
    Gaussian(GaussianErrorModel),
    Confusion(ConfusionErrorModel),
}

impl ErrorModel {
    fn approx_bytes(&self) -> usize {
        match self {
            ErrorModel::Gaussian(m) => m.approx_bytes(),
            ErrorModel::Confusion(m) => m.approx_bytes(),
        }
    }
}

/// One (spec, predictor, error model) triple — a `p_ij` of the NS formula.
pub(crate) struct FeaturePredictor {
    pub(crate) spec: DesignSpec,
    pub(crate) model: PredictorModel,
    pub(crate) error: ErrorModel,
}

/// Everything fitted for one target feature.
pub(crate) struct FeatureModel {
    pub(crate) target: usize,
    pub(crate) entropy: f64,
    /// Cross-validated predictive strength in `[0, 1]`: R²-like for real
    /// targets, holdout accuracy for categorical ones.
    pub(crate) strength: f64,
    pub(crate) predictors: Vec<FeaturePredictor>,
}

/// A complete fitted FRaC model.
pub struct FracModel {
    pub(crate) features: Vec<FeatureModel>,
    /// Targets the training plan asked for; when some were dropped, NS
    /// scores are renormalized by `planned / survived` so score magnitudes
    /// stay comparable across degraded and healthy runs.
    pub(crate) planned_targets: usize,
    /// Worker restart counts per shard when the model came out of a sharded
    /// run (`frac train --shards N`); empty for single-process fits. Carried
    /// through persistence so `frac score` can report the run's provenance.
    pub(crate) shard_restarts: Vec<usize>,
}

/// Per-target output of the parallel fit loop. `feature` is `None` when the
/// target was dropped (quarantined all-missing, or every member fit failed).
struct TargetFit {
    feature: Option<FeatureModel>,
    health: Vec<TargetHealth>,
    flops: u64,
    transient: u64,
    model_bytes: u64,
    n_models: u64,
    duals: Vec<(usize, PredictorDuals)>,
    /// Whether any fit attempt for this target tripped the run's
    /// wall-clock budget. A budget-degraded result is honest (baseline
    /// substituted, recorded in health) but *provisional*: it is never
    /// journaled, so a later resume with more time refits it properly.
    deadline_hit: bool,
}

/// Per-feature NS contributions for a scored test set.
///
/// `values[c][r]` is the contribution of target feature `feature_ids[c]` to
/// test row `r`'s NS score; the row's NS is the sum over columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ContributionMatrix {
    /// Target feature index (into the scored data set) per column.
    pub feature_ids: Vec<usize>,
    /// `values[column][row]` contribution.
    pub values: Vec<Vec<f64>>,
    /// Number of scored rows.
    pub n_rows: usize,
    /// NS renormalization factor: `planned / survived` targets when the
    /// fitted model dropped targets, exactly `1.0` otherwise. Applied by
    /// [`ContributionMatrix::ns_scores`], never to per-feature values.
    pub renorm: f64,
}

impl ContributionMatrix {
    /// NS score per row: the sum of all feature contributions, scaled by
    /// [`ContributionMatrix::renorm`] when targets were dropped (the sum
    /// over fewer surviving targets is stretched back to the planned
    /// magnitude). A factor of exactly `1.0` applies no arithmetic, keeping
    /// the healthy path bit-identical.
    pub fn ns_scores(&self) -> Vec<f64> {
        let mut ns = vec![0.0f64; self.n_rows];
        for col in &self.values {
            for (acc, v) in ns.iter_mut().zip(col) {
                *acc += v;
            }
        }
        if self.renorm != 1.0 {
            for v in &mut ns {
                *v *= self.renorm;
            }
        }
        ns
    }
}

/// The final-fit dual variables of one SVM predictor, indexed by
/// present-row position for its target. Trainers without a dual
/// formulation (trees, baselines) never produce one.
pub(crate) enum PredictorDuals {
    /// SVR duals: one `β` per training row.
    Real(Vec<f64>),
    /// SVC duals: one `α` vector per one-vs-rest class.
    Cat(Vec<Vec<f64>>),
}

impl PredictorDuals {
    fn approx_bytes(&self) -> usize {
        match self {
            PredictorDuals::Real(b) => std::mem::size_of_val(b.as_slice()),
            PredictorDuals::Cat(a) => {
                a.iter().map(|v| std::mem::size_of_val(v.as_slice())).sum()
            }
        }
    }
}

/// Warm-start duals carried across repeated fits of the same targets —
/// ensemble members and partial-filter replicates re-solve near-identical
/// problems, so each member's solves seed from the previous member's
/// solution instead of zero.
///
/// Keys are `(target feature id, input-set index)`; duals live in row space
/// (present rows of the target), so they stay valid even when the member's
/// *input* set changes (Diverse FRaC) — the solver clamps them into its
/// feasible box and they only move the starting point, never the fixed
/// point. Reuse requires the members to share the training dataset and
/// feature ids; variants that re-index features per member (full filtering)
/// or re-project the data (JL) must not share a cache.
#[derive(Default)]
pub struct DualCache {
    entries: std::collections::BTreeMap<(usize, usize), PredictorDuals>,
}

impl DualCache {
    fn get(&self, target: usize, member: usize) -> Option<&PredictorDuals> {
        self.entries.get(&(target, member))
    }

    fn insert(&mut self, target: usize, member: usize, duals: PredictorDuals) {
        self.entries.insert((target, member), duals);
    }

    /// Number of cached dual vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty (no prior member has run).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes of all cached duals.
    pub fn approx_bytes(&self) -> usize {
        self.entries.values().map(|d| d.approx_bytes()).sum()
    }
}

/// Kernel tier bitmask for the run's `kernel_tier` telemetry counter
/// (decoded by [`frac_dataset::kernels::describe_mask`]). Each SVM family
/// contributes the tier its solves actually use — a strict family pins the
/// exact sequential kernels, a fast one rides the dispatched blocked tier
/// — so a mixed config (strict SVR + fast SVC) records both bits instead
/// of mislabeling the fast solves as sequential-strict. A config with no
/// SVM family records the dispatched tier alone: that is what any blocked
/// kernel the fit touches would resolve to, and it keeps bench snapshots
/// comparable across machines.
fn kernel_tier_code(config: &FracConfig) -> u64 {
    let family_bit = |mode: frac_learn::SolverMode| {
        if mode == frac_learn::SolverMode::Strict {
            frac_dataset::kernels::SEQUENTIAL_STRICT_CODE
        } else {
            frac_dataset::kernels::active_tier().code()
        }
    };
    let mut mask = 0;
    if let RealModel::Svr(c) = config.real_model {
        mask |= family_bit(c.mode);
    }
    if let CatModel::Svc(c) = config.cat_model {
        mask |= family_bit(c.mode);
    }
    if mask == 0 {
        mask = frac_dataset::kernels::active_tier().code();
    }
    mask
}

/// Restrict the run-wide fold plan to one target's present rows.
///
/// The shared plan partitions global row indices; a target trains only on
/// rows where it is present, as *positions* into its `RowSubset`. When
/// nothing is missing the positions coincide with the rows and the plan is
/// reused as-is. Otherwise each fold is filtered to present rows; in the
/// pathological case where filtering empties some fold's training side (a
/// feature missing in almost every row), we fall back to a per-target
/// k-fold over the present rows so no holdout is ever predicted by an
/// untrained model.
fn folds_for_present(
    shared: &[Fold],
    present: &[usize],
    n_rows: usize,
    k: usize,
    member_seed: u64,
) -> Vec<Fold> {
    if present.len() == n_rows {
        return shared.to_vec();
    }
    let mut pos = vec![usize::MAX; n_rows];
    for (p, &r) in present.iter().enumerate() {
        pos[r] = p;
    }
    let restrict = |rows: &[usize]| -> Vec<usize> {
        rows.iter().map(|&r| pos[r]).filter(|&p| p != usize::MAX).collect()
    };
    let restricted: Vec<Fold> = shared
        .iter()
        .map(|f| Fold { train: restrict(&f.train), holdout: restrict(&f.holdout) })
        .collect();
    if restricted.iter().any(|f| f.train.is_empty() && !f.holdout.is_empty()) {
        return k_fold(present.len(), k, derive_seed(member_seed, 1));
    }
    restricted
}

/// One successfully fitted ensemble member: the predictor with its
/// cross-validated strength, training cost, and (for SVM families) the
/// final-fit duals for [`DualCache`] reuse.
type MemberFit = (FeaturePredictor, f64, TrainingCost, Option<PredictorDuals>);

/// Fit a single predictor + error model; returns it with its training cost
/// and (for SVM families) the final-fit duals for [`DualCache`] reuse.
/// Degenerate problems and non-converged (non-finite) solves come back as
/// [`TrainError`] instead of panicking or poisoning the model.
///
/// With `pool`, the per-target design matrix is a zero-copy view over the
/// shared encoded pool and the spec is assembled from pooled encoders
/// (identical parameters — same fitting code path). Without it, the legacy
/// owned path fits and encodes a fresh matrix for this predictor alone.
#[allow(clippy::too_many_arguments)]
fn fit_predictor(
    train: &Dataset,
    target: usize,
    inputs: &[usize],
    config: &FracConfig,
    member_seed: u64,
    fit_nonce: u64,
    pool: Option<&EncodedPool>,
    shared_folds: &[Fold],
    init_duals: Option<&PredictorDuals>,
    budget: &TargetBudget,
) -> Result<MemberFit, TrainError> {
    // Scope the thread-local solver pack cache to this exact predictor
    // problem: the CV drivers and final fits below then declare their train
    // rows per slot, letting repeated gathers of the same (rows, columns)
    // design — and its Gram matrix — be reused instead of rebuilt.
    frac_learn::solver::pack_cache::begin_scope(pack_scope(fit_nonce, target, inputs));
    let owned: DesignMatrix;
    let pooled: PoolView<'_>;
    let spec: DesignSpec;
    let x_all: &dyn DesignView = match pool {
        Some(p) => {
            spec = p.spec().spec_for(inputs);
            pooled = p.view(inputs);
            &pooled
        }
        None => {
            spec = DesignSpec::fit(train, inputs, config.standardize);
            owned = spec.encode(train);
            &owned
        }
    };
    // Per-target design bytes beyond shared storage: the whole encoded
    // matrix on the legacy path, only view bookkeeping on the pooled path
    // (the pool itself is charged once, in the run's ResourceReport).
    let design_bytes = match pool {
        Some(_) => x_all.view_overhead_bytes() as u64,
        None => (x_all.n_rows() * x_all.n_cols() * std::mem::size_of::<f64>()) as u64,
    };

    match train.column(target) {
        Column::Real(values) => {
            // Train only on rows where the target is present.
            let present: Vec<usize> =
                (0..train.n_rows()).filter(|&r| !values[r].is_nan()).collect();
            let x = RowSubset::new(x_all, &present);
            let y: Vec<f64> = present.iter().map(|&r| values[r]).collect();
            let folds = folds_for_present(
                shared_folds,
                &present,
                train.n_rows(),
                config.cv_folds,
                member_seed,
            );
            // A cached dual vector is usable only if it matches this
            // target's present-row count (same dataset ⇒ always true).
            let init = match init_duals {
                Some(PredictorDuals::Real(d)) if d.len() == present.len() => {
                    Some(d.as_slice())
                }
                _ => None,
            };

            let (model, fit_cost, error, strength, cv_cost, duals) =
                (match &config.real_model {
                    RealModel::Svr(cfg) => {
                        let mut cfg = *cfg;
                        cfg.seed = derive_seed(member_seed, 2);
                        run_real(
                            &SvrTrainer::new(cfg),
                            RealPredictor::Svr,
                            &x,
                            &y,
                            &folds,
                            init,
                            budget,
                        )
                    }
                    RealModel::Tree(cfg) => run_real(
                        &RegressionTreeTrainer::new(*cfg),
                        RealPredictor::Tree,
                        &x,
                        &y,
                        &folds,
                        init,
                        budget,
                    ),
                    RealModel::Constant => run_real(
                        &ConstantRegressorTrainer,
                        RealPredictor::Constant,
                        &x,
                        &y,
                        &folds,
                        init,
                        budget,
                    ),
                })?;
            let total = TrainingCost {
                flops: cv_cost.flops + fit_cost.flops,
                peak_bytes: cv_cost
                    .peak_bytes
                    .max(fit_cost.peak_bytes)
                    .max(design_bytes + x.view_overhead_bytes() as u64),
            };
            Ok((
                FeaturePredictor {
                    spec,
                    model: PredictorModel::Real(model),
                    error: ErrorModel::Gaussian(error),
                },
                strength,
                total,
                duals.map(PredictorDuals::Real),
            ))
        }
        Column::Categorical { arity, codes } => {
            let present: Vec<usize> = (0..train.n_rows())
                .filter(|&r| codes[r] != frac_dataset::dataset::MISSING_CODE)
                .collect();
            let x = RowSubset::new(x_all, &present);
            let y: Vec<u32> = present.iter().map(|&r| codes[r]).collect();
            let folds = folds_for_present(
                shared_folds,
                &present,
                train.n_rows(),
                config.cv_folds,
                member_seed,
            );
            let init = match init_duals {
                Some(PredictorDuals::Cat(d))
                    if d.len() == *arity as usize
                        && d.iter().all(|v| v.len() == present.len()) =>
                {
                    Some(d.as_slice())
                }
                _ => None,
            };

            let (model, fit_cost, error, strength, cv_cost, duals) =
                (match &config.cat_model {
                    CatModel::Tree(cfg) => run_cat(
                        &ClassificationTreeTrainer::new(*cfg),
                        CatPredictor::Tree,
                        &x,
                        &y,
                        *arity,
                        &folds,
                        init,
                        budget,
                    ),
                    CatModel::Svc(cfg) => {
                        let mut cfg = *cfg;
                        cfg.seed = derive_seed(member_seed, 2);
                        run_cat(
                            &SvcTrainer::new(cfg),
                            CatPredictor::Svc,
                            &x,
                            &y,
                            *arity,
                            &folds,
                            init,
                            budget,
                        )
                    }
                    CatModel::Majority => run_cat(
                        &MajorityClassifierTrainer,
                        CatPredictor::Majority,
                        &x,
                        &y,
                        *arity,
                        &folds,
                        init,
                        budget,
                    ),
                })?;
            let total = TrainingCost {
                flops: cv_cost.flops + fit_cost.flops,
                peak_bytes: cv_cost
                    .peak_bytes
                    .max(fit_cost.peak_bytes)
                    .max(design_bytes + x.view_overhead_bytes() as u64),
            };
            Ok((
                FeaturePredictor {
                    spec,
                    model: PredictorModel::Cat(model),
                    error: ErrorModel::Confusion(error),
                },
                strength,
                total,
                duals.map(PredictorDuals::Cat),
            ))
        }
    }
}

/// Cross-validate + final-fit one real-target trainer, wrapping its model
/// into the closed [`RealPredictor`] enum. Duals thread fold → fold → final
/// fit (see [`cv_regression_folds`]); the final fit's duals are returned
/// for cross-member reuse.
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn run_real<T: frac_learn::RegressorTrainer>(
    trainer: &T,
    wrap: impl Fn(T::Model) -> RealPredictor,
    x: &dyn DesignView,
    y: &[f64],
    folds: &[Fold],
    init_duals: Option<&[f64]>,
    budget: &TargetBudget,
) -> Result<
    (RealPredictor, TrainingCost, GaussianErrorModel, f64, TrainingCost, Option<Vec<f64>>),
    TrainError,
> {
    // The unlimited path keeps the original infallible CV (which tolerates
    // a diverged fold) and stays bit-identical; only a limited budget pays
    // for the fallible, cancellable variants.
    let (oof, cv_cost, cv_duals) = if budget.is_limited() {
        cv_regression_folds_budgeted(trainer, x, y, folds, init_duals, budget)?
    } else {
        cv_regression_folds(trainer, x, y, folds, init_duals)
    };
    let error_span = telemetry::span(telemetry::Stage::ErrorModel);
    let pairs: Vec<(f64, f64)> = y.iter().copied().zip(oof.iter().copied()).collect();
    let error = GaussianErrorModel::fit(&pairs);
    let strength = r2_strength(y, &oof);
    drop(error_span);
    let _final_span = telemetry::span(telemetry::Stage::FinalTrain);
    // Slot 0 of the pack-cache scope is the final fit over every present
    // row (the CV folds took slots 1..); a repeat fit of the same problem
    // (strict-ladder siblings, members sharing an input set) reuses the
    // gather.
    let all_rows: Vec<usize> = (0..x.n_rows()).collect();
    frac_learn::solver::pack_cache::set_rows(0, &all_rows);
    let final_fit = if budget.is_limited() {
        trainer.try_train_view_budgeted(x, y, cv_duals.as_deref(), budget)
    } else {
        trainer.try_train_view_warm(x, y, cv_duals.as_deref())
    };
    frac_learn::solver::pack_cache::clear_rows();
    let (trained, final_duals) = final_fit?;
    Ok((wrap(trained.model), trained.cost, error, strength, cv_cost, final_duals))
}

/// Cross-validate + final-fit one categorical-target trainer, wrapping its
/// model into the closed [`CatPredictor`] enum; see [`run_real`].
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn run_cat<T: frac_learn::ClassifierTrainer>(
    trainer: &T,
    wrap: impl Fn(T::Model) -> CatPredictor,
    x: &dyn DesignView,
    y: &[u32],
    arity: u32,
    folds: &[Fold],
    init_duals: Option<&[Vec<f64>]>,
    budget: &TargetBudget,
) -> Result<
    (CatPredictor, TrainingCost, ConfusionErrorModel, f64, TrainingCost, Option<Vec<Vec<f64>>>),
    TrainError,
> {
    let (oof, cv_cost, cv_duals) = if budget.is_limited() {
        cv_classification_folds_budgeted(trainer, x, y, arity, folds, init_duals, budget)?
    } else {
        cv_classification_folds(trainer, x, y, arity, folds, init_duals)
    };
    let error_span = telemetry::span(telemetry::Stage::ErrorModel);
    let pairs: Vec<(u32, u32)> = y.iter().copied().zip(oof.iter().copied()).collect();
    let error = ConfusionErrorModel::fit(&pairs, arity);
    let strength = accuracy_strength(y, &oof);
    drop(error_span);
    let _final_span = telemetry::span(telemetry::Stage::FinalTrain);
    let all_rows: Vec<usize> = (0..x.n_rows()).collect();
    frac_learn::solver::pack_cache::set_rows(0, &all_rows);
    let final_fit = if budget.is_limited() {
        trainer.try_train_view_budgeted(x, y, arity, cv_duals.as_deref(), budget)
    } else {
        trainer.try_train_view_warm(x, y, arity, cv_duals.as_deref())
    };
    frac_learn::solver::pack_cache::clear_rows();
    let (trained, final_duals) = final_fit?;
    Ok((wrap(trained.model), trained.cost, error, strength, cv_cost, final_duals))
}

/// R²-like strength: 1 − MSE/Var, clamped to `[0, 1]`.
fn r2_strength(y: &[f64], pred: &[f64]) -> f64 {
    if y.len() < 2 {
        return 0.0;
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let var: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let mse: f64 = y
        .iter()
        .zip(pred)
        .map(|(t, p)| if !p.is_finite() { (t - mean) * (t - mean) } else { (t - p) * (t - p) })
        .sum();
    (1.0 - mse / var).clamp(0.0, 1.0)
}

/// Holdout accuracy.
fn accuracy_strength(y: &[u32], pred: &[u32]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    y.iter().zip(pred).filter(|(t, p)| t == p).count() as f64 / y.len() as f64
}

/// Injected failure mode for one member fit, resolved from a [`FaultPlan`].
#[derive(Clone, Copy)]
enum MemberFault {
    None,
    Diverge,
    Panic,
}

/// How one guarded fit attempt failed.
enum AttemptFailure {
    Train(TrainError),
    Panic(String),
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptFailure::Train(e) => write!(f, "{e}"),
            AttemptFailure::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Best-effort string form of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One guarded fit attempt: panics unwind only to here, and injected panics
/// fire *inside* the guard so they take the exact path a real trainer panic
/// would.
#[allow(clippy::too_many_arguments)]
fn guarded_attempt(
    inject_panic: bool,
    train: &Dataset,
    target: usize,
    inputs: &[usize],
    config: &FracConfig,
    member_seed: u64,
    fit_nonce: u64,
    pool: Option<&EncodedPool>,
    shared_folds: &[Fold],
    init: Option<&PredictorDuals>,
    budget: &TargetBudget,
) -> Result<MemberFit, AttemptFailure> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("{}", INJECTED_PANIC);
        }
        fit_predictor(
            train, target, inputs, config, member_seed, fit_nonce, pool, shared_folds, init,
            budget,
        )
    }));
    match outcome {
        Ok(Ok(fit)) => Ok(fit),
        Ok(Err(e)) => Err(AttemptFailure::Train(e)),
        Err(payload) => Err(AttemptFailure::Panic(panic_message(payload))),
    }
}

/// Whether a failed attempt was cut short by the run's wall-clock budget
/// (as opposed to a numerical or data problem).
fn is_deadline(f: &AttemptFailure) -> bool {
    matches!(f, AttemptFailure::Train(TrainError::DeadlineExceeded))
}

/// Whether an attempt ran the full CV + final training (for model-count
/// accounting): successes did, and so did non-converged solves — they burn
/// the training budget before their output is rejected as non-finite.
fn attempt_ran_training(result: &Result<MemberFit, AttemptFailure>) -> bool {
    matches!(
        result,
        Ok(_) | Err(AttemptFailure::Train(TrainError::NonConvergence { .. }))
    )
}

/// Fit one ensemble member behind the fallback ladder:
/// configured model → strict solver (retryable failures only) → baseline
/// predictor → member dropped. Fallbacks are recorded in `events`; `Err`
/// carries the final failure when even the baseline cannot fit. Also
/// returns how many attempts actually ran training, and whether any
/// attempt was cut short by the wall-clock budget (the baseline rescue
/// rung always runs unbudgeted — substituting a constant/majority model is
/// cheaper than checking the clock, and it is exactly what a run out of
/// time needs to finish accounting for every target).
#[allow(clippy::too_many_arguments)]
fn fit_member(
    train: &Dataset,
    target: usize,
    member: usize,
    inputs: &[usize],
    config: &FracConfig,
    member_seed: u64,
    fit_nonce: u64,
    pool: Option<&EncodedPool>,
    shared_folds: &[Fold],
    init: Option<&PredictorDuals>,
    budget: &TargetBudget,
    fault: MemberFault,
    events: &mut Vec<TargetHealth>,
) -> (Result<MemberFit, String>, u64, bool) {
    let mut attempts_trained = 0u64;
    let mut deadline_hit = false;
    let first = match fault {
        MemberFault::Panic => guarded_attempt(
            true, train, target, inputs, config, member_seed, fit_nonce, pool, shared_folds,
            init, budget,
        ),
        MemberFault::Diverge => {
            Err(AttemptFailure::Train(TrainError::NonConvergence { epochs: 0 }))
        }
        MemberFault::None => guarded_attempt(
            false, train, target, inputs, config, member_seed, fit_nonce, pool, shared_folds,
            init, budget,
        ),
    };
    if !matches!(fault, MemberFault::Diverge) && attempt_ran_training(&first) {
        attempts_trained += 1;
    }
    let failure = match first {
        Ok(fit) => return (Ok(fit), attempts_trained, false),
        Err(f) => f,
    };
    deadline_hit |= is_deadline(&failure);

    // A non-converged fast solve gets one shot on the strict reference
    // solver before we give up on the configured model family. A deadline
    // failure is not retryable — retrying on a slower solver with no time
    // left would only burn more of it.
    if matches!(&failure, AttemptFailure::Train(e) if e.is_retryable()) {
        let strict = config.with_solver_mode(frac_learn::SolverMode::Strict);
        let retry = guarded_attempt(
            false, train, target, inputs, &strict, member_seed, fit_nonce, pool, shared_folds,
            init, budget,
        );
        if attempt_ran_training(&retry) {
            attempts_trained += 1;
        }
        match retry {
            Ok(fit) => {
                events.push(TargetHealth {
                    target,
                    outcome: TargetOutcome::Degraded {
                        member,
                        fallback: FallbackKind::StrictSolver,
                        detail: failure.to_string(),
                    },
                });
                return (Ok(fit), attempts_trained, deadline_hit);
            }
            Err(f) => deadline_hit |= is_deadline(&f),
        }
    }

    // Last rung: the baseline predictor (constant mean / majority class)
    // keeps the target alive with an honest, if weak, error model.
    let baseline =
        FracConfig { real_model: RealModel::Constant, cat_model: CatModel::Majority, ..*config };
    let rescue = guarded_attempt(
        false,
        train,
        target,
        inputs,
        &baseline,
        member_seed,
        fit_nonce,
        pool,
        shared_folds,
        None,
        &TargetBudget::unlimited(),
    );
    if attempt_ran_training(&rescue) {
        attempts_trained += 1;
    }
    match rescue {
        Ok(fit) => {
            events.push(TargetHealth {
                target,
                outcome: TargetOutcome::Degraded {
                    member,
                    fallback: FallbackKind::Baseline,
                    detail: failure.to_string(),
                },
            });
            (Ok(fit), attempts_trained, deadline_hit)
        }
        Err(last) => {
            deadline_hit |= is_deadline(&last);
            (
                Err(format!("{failure}; baseline also failed: {last}")),
                attempts_trained,
                deadline_hit,
            )
        }
    }
}

/// Fit everything for one target of the plan: quarantine verdicts, then
/// every ensemble member behind the fallback ladder, under the target's
/// slice of the run budget.
#[allow(clippy::too_many_arguments)]
fn fit_one_target(
    train: &Dataset,
    tp: &TargetPlan,
    config: &FracConfig,
    fit_nonce: u64,
    pool: Option<&EncodedPool>,
    cache_read: Option<&DualCache>,
    screen: &ScreenReport,
    faults: Option<&FaultPlan>,
    shared_folds: &[Fold],
    budget: &RunBudget,
) -> TargetFit {
    let tbudget = budget.start_target();
    let _target_guard = telemetry::target_guard(tp.target);
    let mut health: Vec<TargetHealth> = Vec::new();
    // Quarantine verdicts first: an all-missing target is dropped before
    // any entropy or solver work; a degenerate (constant / single-class)
    // target skips the solver and takes the baseline predictor; a
    // sanitized target trains normally on what remains.
    let mut effective = *config;
    match screen.reason_for(tp.target) {
        Some(QuarantineReason::AllMissing) => {
            health.push(TargetHealth {
                target: tp.target,
                outcome: TargetOutcome::Dropped {
                    reason: QuarantineReason::AllMissing.to_string(),
                },
            });
            return TargetFit {
                feature: None,
                health,
                flops: 0,
                transient: 0,
                model_bytes: 0,
                n_models: 0,
                duals: Vec::new(),
                deadline_hit: false,
            };
        }
        Some(reason) if reason.degrades_target() => {
            health.push(TargetHealth {
                target: tp.target,
                outcome: TargetOutcome::Quarantined { reason },
            });
            effective = FracConfig {
                real_model: RealModel::Constant,
                cat_model: CatModel::Majority,
                ..*config
            };
        }
        Some(QuarantineReason::NonFinite { cells }) => {
            health.push(TargetHealth {
                target: tp.target,
                outcome: TargetOutcome::Sanitized { cells },
            });
        }
        _ => {}
    }
    let config = &effective;
    let entropy_span = telemetry::span(telemetry::Stage::Entropy);
    let entropy = column_entropy(train.column(tp.target));
    drop(entropy_span);
    let mut predictors = Vec::with_capacity(tp.input_sets.len());
    let mut flops = 0u64;
    let mut transient = 0u64;
    let mut model_bytes = 0u64;
    let mut n_models = 0u64;
    let mut strength_acc = 0.0f64;
    let mut deadline_hit = false;
    let mut duals_out: Vec<(usize, PredictorDuals)> = Vec::new();
    for (m, inputs) in tp.input_sets.iter().enumerate() {
        let member_seed = derive_seed(config.seed, (tp.target as u64) << 20 | m as u64);
        let init = cache_read.and_then(|c| c.get(tp.target, m));
        let fault = match faults {
            Some(f) if f.forces_panic(tp.target) => MemberFault::Panic,
            Some(f) if f.forces_diverge(tp.target) => MemberFault::Diverge,
            _ => MemberFault::None,
        };
        let (fit, attempts, member_deadline) = fit_member(
            train,
            tp.target,
            m,
            inputs,
            config,
            member_seed,
            fit_nonce,
            pool,
            shared_folds,
            init,
            &tbudget,
            fault,
            &mut health,
        );
        deadline_hit |= member_deadline;
        n_models += attempts * (config.cv_folds.max(1) + 1) as u64;
        match fit {
            Ok((fp, strength, cost, duals)) => {
                flops += cost.flops;
                transient = transient.max(cost.peak_bytes);
                model_bytes += (fp.model.approx_bytes()
                    + fp.error.approx_bytes()
                    + std::mem::size_of_val(fp.spec.input_features()))
                    as u64;
                strength_acc += strength;
                predictors.push(fp);
                if let Some(d) = duals {
                    duals_out.push((m, d));
                }
            }
            Err(detail) => {
                health.push(TargetHealth {
                    target: tp.target,
                    outcome: TargetOutcome::MemberDropped { member: m, detail },
                });
            }
        }
    }
    if predictors.is_empty() && !tp.input_sets.is_empty() {
        health.push(TargetHealth {
            target: tp.target,
            outcome: TargetOutcome::Dropped {
                reason: format!("all {} ensemble member fit(s) failed", tp.input_sets.len()),
            },
        });
        return TargetFit {
            feature: None,
            health,
            flops,
            transient,
            model_bytes,
            n_models,
            duals: Vec::new(),
            deadline_hit,
        };
    }
    let strength = strength_acc / predictors.len().max(1) as f64;
    TargetFit {
        feature: Some(FeatureModel { target: tp.target, entropy, strength, predictors }),
        health,
        flops,
        transient,
        model_bytes,
        n_models,
        duals: duals_out,
        deadline_hit,
    }
}

/// Rehydrate a journaled record into the fit loop's per-target slot.
/// Reloaded targets carry no warm-start duals (not journaled) and were by
/// construction not deadline-degraded (those are never journaled).
fn record_to_fit(rec: TargetRecord) -> TargetFit {
    let health = journal::record_health(&rec);
    TargetFit {
        feature: rec.feature,
        health,
        flops: rec.flops,
        transient: rec.transient,
        model_bytes: rec.model_bytes,
        n_models: rec.n_models,
        duals: Vec::new(),
        deadline_hit: false,
    }
}

/// Outcome of a journaled (crash-safe) fit: the model and report, plus how
/// much of the run was recovered from the journal instead of refitted.
pub struct JournaledFit {
    /// The fitted model, identical to an uninterrupted run's.
    pub model: FracModel,
    /// Resource and health accounting over the *whole* run — journaled
    /// targets contribute the counters recorded when they originally
    /// fitted, so flops/model bytes are cumulative across crashes.
    pub report: ResourceReport,
    /// Targets reloaded from the journal rather than refitted.
    pub resumed: usize,
    /// Whether any journal append failed mid-run (the model is still
    /// complete; only checkpoint durability was lost).
    pub journal_broken: bool,
}

impl FracModel {
    /// Execute a training plan over `train`.
    ///
    /// Every feature used as an input anywhere in the plan is encoded once
    /// into a shared [`EncodedPool`]; per-target design matrices are served
    /// as zero-copy views over it. Returns the fitted model plus a
    /// [`ResourceReport`] whose flops sum over every CV-fold and final
    /// training, whose `model_bytes` cover all retained predictor/error-model
    /// state, whose `pool_bytes` charge the shared pool once, and whose
    /// `transient_bytes` is the worst single-predictor working set.
    pub fn fit(train: &Dataset, plan: &TrainingPlan, config: &FracConfig) -> (FracModel, ResourceReport) {
        Self::fit_pooled(train, plan, config, None, None, &RunBudget::unlimited(), None, Vec::new())
    }

    /// [`FracModel::fit`] with a [`DualCache`] carried across calls:
    /// repeated fits of the same targets on the same training set (ensemble
    /// members, partial-filter replicates) warm-start every SVM solve from
    /// the previous call's duals. The cache is read before the run and
    /// updated with this run's final duals afterwards.
    pub fn fit_cached(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        cache: &mut DualCache,
    ) -> (FracModel, ResourceReport) {
        Self::fit_pooled(train, plan, config, Some(cache), None, &RunBudget::unlimited(), None, Vec::new())
    }

    /// [`FracModel::fit`] under a deterministic [`FaultPlan`]: forced
    /// non-convergence and forced panics fire at the plan's targets, so the
    /// fault-injection suite can exercise the fallback ladder end to end.
    /// (Cell poisoning is applied by the caller via [`FaultPlan::poison`]
    /// before fitting.) An empty plan is exactly [`FracModel::fit`].
    pub fn fit_with_faults(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        faults: &FaultPlan,
    ) -> (FracModel, ResourceReport) {
        Self::fit_pooled(train, plan, config, None, Some(faults), &RunBudget::unlimited(), None, Vec::new())
    }

    /// [`FracModel::fit`] under a wall-clock / cancellation [`RunBudget`].
    ///
    /// Solvers and tree growers poll the budget cooperatively (once per
    /// coordinate-descent epoch / every few node expansions). When a
    /// target's slice of the budget expires mid-fit, the attempt fails
    /// with [`TrainError::DeadlineExceeded`] and the fallback ladder
    /// substitutes the (unbudgeted, effectively free) baseline predictor,
    /// recording a `Degraded` health event — so the run still returns a
    /// scored model that accounts for every planned target, within one
    /// budget-check interval of the deadline. With
    /// [`RunBudget::unlimited`] this is exactly [`FracModel::fit`],
    /// bit for bit.
    pub fn fit_budgeted(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        budget: &RunBudget,
    ) -> (FracModel, ResourceReport) {
        Self::fit_pooled(train, plan, config, None, None, budget, None, Vec::new())
    }

    /// Crash-safe fit: like [`FracModel::fit_budgeted`], but every
    /// completed target is appended to a write-ahead journal at
    /// `journal_path` (created if absent, resumed if present) before the
    /// run moves on. If the process dies at *any* byte of the run, calling
    /// this again with the same data, plan, and config reloads the
    /// completed targets and fits only the rest — and the assembled model
    /// is bit-identical (in [`frac_learn::SolverMode::Strict`] mode) to an
    /// uninterrupted run, because per-target results depend only on
    /// `(data, config)`, never on schedule or solve history.
    ///
    /// Budget-degraded targets are deliberately *not* journaled, so a
    /// resume with more time refits them properly.
    ///
    /// Errors only on journal problems the caller must decide about: a
    /// journal written by a different run ([`JournalError::Mismatch`]), a
    /// file that is not a journal, or I/O failure opening it. Append
    /// failures mid-run do not abort the fit; they surface as
    /// [`JournaledFit::journal_broken`].
    pub fn fit_journaled(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        budget: &RunBudget,
        journal_path: impl AsRef<std::path::Path>,
    ) -> Result<JournaledFit, JournalError> {
        let header = JournalHeader {
            config_hash: config.content_hash(),
            dataset_fingerprint: train.fingerprint(),
            plan_hash: plan.content_hash(),
            planned: plan.targets.len(),
        };
        let (journal, records) = RunJournal::open_or_create(journal_path, &header)?;
        let resumed = records.len();
        let (model, report) = Self::fit_pooled(
            train,
            plan,
            config,
            None,
            None,
            budget,
            Some(&journal),
            records,
        );
        Ok(JournaledFit { model, report, resumed, journal_broken: journal.is_broken() })
    }

    /// Resume a crashed journaled run. Identical to
    /// [`FracModel::fit_journaled`] except that a *missing* journal is an
    /// error — resuming implies there is something to resume; silently
    /// starting a fresh multi-hour run from a typo'd path is not helpful.
    pub fn resume(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        budget: &RunBudget,
        journal_path: impl AsRef<std::path::Path>,
    ) -> Result<JournaledFit, JournalError> {
        let path = journal_path.as_ref();
        if !path.exists() {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no journal at {} to resume from", path.display()),
            )));
        }
        Self::fit_journaled(train, plan, config, budget, path)
    }

    // `pub(crate)` for the shard supervisor: merging per-shard journals is
    // a pooled fit of the full plan with every record preloaded — the same
    // assembly path a single-process resume takes, which is what makes the
    // merge bit-identical by construction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fit_pooled(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        cache: Option<&mut DualCache>,
        faults: Option<&FaultPlan>,
        budget: &RunBudget,
        journal: Option<&RunJournal>,
        preloaded: Vec<TargetRecord>,
    ) -> (FracModel, ResourceReport) {
        // Screen before anything reaches an encoder or solver; when the
        // data carries no ±Inf poison, `sanitize` returns `None` and the
        // original dataset flows through untouched (bit-identical path).
        let quarantine_span = telemetry::span(telemetry::Stage::Quarantine);
        let screen = quarantine::screen(train);
        let sanitized = if screen.needs_sanitize() { quarantine::sanitize(train) } else { None };
        let train = sanitized.as_ref().unwrap_or(train);
        drop(quarantine_span);
        let mut used = vec![false; train.n_features()];
        for tp in &plan.targets {
            for inputs in &tp.input_sets {
                for &j in inputs {
                    used[j] = true;
                }
            }
        }
        let features: Vec<usize> = (0..used.len()).filter(|&j| used[j]).collect();
        let encode_span = telemetry::span(telemetry::Stage::Encode);
        let pool = PoolSpec::fit(train, &features, config.standardize).encode(train);
        telemetry::counter_add(telemetry::Counter::EncodedCells, pool.n_cells() as u64);
        drop(encode_span);
        Self::fit_inner(
            train,
            plan,
            config,
            Some(&pool),
            cache,
            &screen,
            faults,
            budget,
            journal,
            preloaded,
        )
    }

    /// Legacy fit path: every predictor fits and encodes its own design
    /// matrix (`O(f² · n)` encode work on a full plan). Kept for regression
    /// tests and benchmarks against the pooled path; produces bit-identical
    /// models because both paths share one encoder implementation.
    pub fn fit_unpooled(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
    ) -> (FracModel, ResourceReport) {
        let screen = quarantine::screen(train);
        let sanitized = if screen.needs_sanitize() { quarantine::sanitize(train) } else { None };
        let train = sanitized.as_ref().unwrap_or(train);
        Self::fit_inner(
            train,
            plan,
            config,
            None,
            None,
            &screen,
            None,
            &RunBudget::unlimited(),
            None,
            Vec::new(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn fit_inner(
        train: &Dataset,
        plan: &TrainingPlan,
        config: &FracConfig,
        pool: Option<&EncodedPool>,
        cache: Option<&mut DualCache>,
        screen: &ScreenReport,
        faults: Option<&FaultPlan>,
        budget: &RunBudget,
        journal: Option<&RunJournal>,
        preloaded: Vec<TargetRecord>,
    ) -> (FracModel, ResourceReport) {
        let t0 = Instant::now();
        let fit_nonce = FIT_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        telemetry::counter_add(telemetry::Counter::KernelTier, kernel_tier_code(config));
        // One k-fold plan for the whole run: the shuffle is derived once
        // from the master seed, and each target restricts it to its present
        // rows instead of re-deriving a per-target partition.
        let shared_folds =
            k_fold(train.n_rows(), config.cv_folds, derive_seed(config.seed, 0xF01D));
        let cache_read: Option<&DualCache> = cache.as_deref();

        // Slot per planned target, in plan order. Journal records fill
        // their slots up front (first record wins on a duplicate); the
        // parallel loop fits only the empty ones. Because per-member seeds
        // derive from (config.seed, target, member), a model assembled
        // from a mix of reloaded and freshly fitted targets is
        // bit-identical to one fitted in a single uninterrupted run.
        let mut slots: Vec<Option<TargetFit>> = Vec::new();
        slots.resize_with(plan.targets.len(), || None);
        if !preloaded.is_empty() {
            let mut by_target = std::collections::BTreeMap::new();
            for rec in preloaded {
                by_target.entry(rec.target).or_insert(rec);
            }
            for (i, tp) in plan.targets.iter().enumerate() {
                if let Some(rec) = by_target.remove(&tp.target) {
                    slots[i] = Some(record_to_fit(rec));
                }
            }
        }
        let todo: Vec<usize> =
            (0..plan.targets.len()).filter(|&i| slots[i].is_none()).collect();
        let fit_index = |i: usize, tx: Option<&std::sync::mpsc::Sender<String>>| {
            let tp = &plan.targets[i];
            let tf = fit_one_target(
                train,
                tp,
                config,
                fit_nonce,
                pool,
                cache_read,
                screen,
                faults,
                &shared_folds,
                budget,
            );
            if let Some(tx) = tx {
                if !tf.deadline_hit {
                    // Serialize here (cheap), but leave framing, checksum,
                    // write, and fsync to the journal's writer thread so
                    // disk latency never stalls a solver thread. A send to
                    // a finished writer only happens if the writer died,
                    // which already marked the journal broken.
                    let _append_target = telemetry::target_guard(tp.target);
                    let _append_span = telemetry::span(telemetry::Stage::JournalAppend);
                    let body = journal::record_body(&journal::RecordParts {
                        target: tp.target,
                        feature: tf.feature.as_ref(),
                        outcomes: tf.health.iter().map(|e| &e.outcome).collect(),
                        flops: tf.flops,
                        transient: tf.transient,
                        model_bytes: tf.model_bytes,
                        n_models: tf.n_models,
                    });
                    telemetry::counter_add(
                        telemetry::Counter::JournalBytes,
                        body.len() as u64,
                    );
                    let _ = tx.send(body);
                }
            }
            (i, tf)
        };
        let fitted: Vec<(usize, TargetFit)> = match journal {
            None => todo.par_iter().map(|&i| fit_index(i, None)).collect(),
            Some(j) => std::thread::scope(|s| {
                let (tx, rx) = std::sync::mpsc::channel::<String>();
                let writer = s.spawn(move || j.write_loop(rx));
                let fitted =
                    todo.par_iter().map(|&i| fit_index(i, Some(&tx))).collect();
                // Joining the writer before returning makes every record
                // handed over above durable by the time the fit completes;
                // a crash before this point loses only the in-flight tail,
                // which resume treats as any other torn record.
                drop(tx);
                let _ = writer.join();
                fitted
            }),
        };
        for (i, tf) in fitted {
            slots[i] = Some(tf);
        }

        let mut report = ResourceReport {
            dataset_bytes: train.approx_bytes() as u64,
            pool_bytes: pool.map_or(0, |p| p.approx_bytes() as u64),
            ..ResourceReport::default()
        };
        let mut health = RunHealth {
            targets_planned: plan.targets.len(),
            targets_survived: 0,
            sanitized_cells: screen.n_nonfinite_cells,
            events: Vec::new(),
        };
        let mut features = Vec::with_capacity(slots.len());
        let mut cache = cache;
        for tf in slots.into_iter().flatten() {
            report.flops += tf.flops;
            report.transient_bytes = report.transient_bytes.max(tf.transient);
            report.model_bytes += tf.model_bytes;
            report.models_trained += tf.n_models;
            health.events.extend(tf.health);
            if let Some(feature) = tf.feature {
                if let Some(cache) = cache.as_deref_mut() {
                    for (m, d) in tf.duals {
                        cache.insert(feature.target, m, d);
                    }
                }
                health.targets_survived += 1;
                features.push(feature);
            }
        }
        report.health = health;
        report.wall = t0.elapsed();
        (
            FracModel {
                features,
                planned_targets: plan.targets.len(),
                shard_restarts: Vec::new(),
            },
            report,
        )
    }

    /// Number of target features with fitted models (survivors).
    pub fn n_targets(&self) -> usize {
        self.features.len()
    }

    /// Targets the training plan asked for, including dropped ones.
    pub fn planned_targets(&self) -> usize {
        self.planned_targets
    }

    /// Worker restart counts per shard for a model trained with
    /// `--shards N` (index = shard, value = restarts); empty for
    /// single-process fits.
    pub fn shard_restarts(&self) -> &[usize] {
        &self.shard_restarts
    }

    /// NS renormalization factor `planned / survived`, exactly `1.0` when
    /// every planned target survived (or when nothing survived — an empty
    /// sum cannot be rescaled into meaning).
    pub fn ns_renorm_factor(&self) -> f64 {
        let survived = self.features.len();
        if survived > 0 && survived < self.planned_targets {
            self.planned_targets as f64 / survived as f64
        } else {
            1.0
        }
    }

    /// Cross-validated strength of one target's model, `0.0` when the
    /// target has no fitted model — a quarantined or dropped target must
    /// answer harmlessly, not panic a strengths lookup.
    pub fn strength_for(&self, target: usize) -> f64 {
        self.features.iter().find(|f| f.target == target).map_or(0.0, |f| f.strength)
    }

    /// `(target feature, cross-validated predictive strength)` pairs, the
    /// basis of the paper's "most predictive gene/SNP models" analyses.
    pub fn feature_strengths(&self) -> Vec<(usize, f64)> {
        self.features.iter().map(|f| (f.target, f.strength)).collect()
    }

    /// Score a test set, returning per-feature NS contributions.
    ///
    /// `test` must share the training schema. Missing test values contribute
    /// zero, per the NS definition. The test set is encoded once into a
    /// shared pool rebuilt from the persisted specs; each predictor reads
    /// its inputs through a zero-copy view.
    pub fn contributions(&self, test: &Dataset) -> ContributionMatrix {
        // Poisoned (±Inf) test cells become missing — they contribute zero
        // surprisal instead of a non-finite NS; clean data is untouched.
        let sanitized = quarantine::sanitize(test);
        let test = sanitized.as_ref().unwrap_or(test);
        let specs = self.features.iter().flat_map(|fm| fm.predictors.iter().map(|fp| &fp.spec));
        let pool = PoolSpec::from_specs(test.n_features(), specs).encode(test);
        self.contributions_inner(test, Some(&pool))
    }

    /// Legacy scoring path: every predictor re-encodes the test set from its
    /// own spec. Kept for regression tests against the pooled path.
    pub fn contributions_unpooled(&self, test: &Dataset) -> ContributionMatrix {
        let sanitized = quarantine::sanitize(test);
        let test = sanitized.as_ref().unwrap_or(test);
        self.contributions_inner(test, None)
    }

    fn contributions_inner(&self, test: &Dataset, pool: Option<&EncodedPool>) -> ContributionMatrix {
        let n_rows = test.n_rows();
        let values: Vec<Vec<f64>> = self
            .features
            .par_iter()
            .map(|fm| {
                let _target_guard = telemetry::target_guard(fm.target);
                let _score_span = telemetry::span(telemetry::Stage::Score);
                let mut col = vec![0.0f64; n_rows];
                for fp in &fm.predictors {
                    let owned: DesignMatrix;
                    let pooled: PoolView<'_>;
                    let x: &dyn DesignView = match pool {
                        Some(p) => {
                            pooled = p.view(fp.spec.input_features());
                            &pooled
                        }
                        None => {
                            owned = fp.spec.encode(test);
                            &owned
                        }
                    };
                    let mut row_buf = vec![0.0f64; x.n_cols()];
                    match (&fp.model, &fp.error, test.column(fm.target)) {
                        (
                            PredictorModel::Real(model),
                            ErrorModel::Gaussian(err),
                            Column::Real(truth),
                        ) => {
                            for r in 0..n_rows {
                                let t = truth[r];
                                if t.is_nan() {
                                    continue;
                                }
                                x.copy_row_into(r, &mut row_buf);
                                let pred = model.predict(&row_buf);
                                col[r] += err.surprisal(t, pred) - fm.entropy;
                            }
                        }
                        (
                            PredictorModel::Cat(model),
                            ErrorModel::Confusion(err),
                            Column::Categorical { codes, .. },
                        ) => {
                            for r in 0..n_rows {
                                let t = codes[r];
                                if t == frac_dataset::dataset::MISSING_CODE {
                                    continue;
                                }
                                x.copy_row_into(r, &mut row_buf);
                                let pred = model.predict(&row_buf);
                                col[r] += err.surprisal(t, pred) - fm.entropy;
                            }
                        }
                        _ => unreachable!(
                            "model/error/column kinds are constructed consistently"
                        ),
                    }
                }
                col
            })
            .collect();
        ContributionMatrix {
            feature_ids: self.features.iter().map(|f| f.target).collect(),
            values,
            n_rows,
            renorm: self.ns_renorm_factor(),
        }
    }

    /// NS anomaly score per test row (sum of all feature contributions).
    pub fn score(&self, test: &Dataset) -> Vec<f64> {
        self.contributions(test).ns_scores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frac_dataset::dataset::{DatasetBuilder, MISSING_CODE};
    use frac_synth::{ExpressionConfig, ExpressionGenerator};

    fn expr_data(n_normal: usize, n_anomaly: usize) -> (Dataset, Vec<bool>) {
        ExpressionGenerator::new(ExpressionConfig {
            n_features: 24,
            n_modules: 4,
            relevant_fraction: 0.9,
            anomaly_modules: 2,
            anomaly_shift: 3.0,
            noise_sd: 0.5,
            structure_seed: 77,
            ..ExpressionConfig::default()
        })
        .generate(n_normal, n_anomaly, 7)
    }

    #[test]
    fn anomalies_score_higher_than_normals() {
        let (data, labels) = expr_data(40, 8);
        let normal_rows: Vec<usize> =
            (0..30).filter(|&r| !labels[r]).collect();
        let train = data.select_rows(&normal_rows);
        let test_rows: Vec<usize> = (30..48).collect();
        let test = data.select_rows(&test_rows);

        let plan = TrainingPlan::full(train.n_features());
        let (model, report) = FracModel::fit(&train, &plan, &FracConfig::default());
        let ns = model.score(&test);

        let mean = |rows: Vec<usize>| -> f64 {
            let v: Vec<f64> = rows.iter().map(|&i| ns[i]).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let normal_mean = mean(
            (0..test_rows.len()).filter(|&i| !labels[test_rows[i]]).collect(),
        );
        let anomaly_mean = mean(
            (0..test_rows.len()).filter(|&i| labels[test_rows[i]]).collect(),
        );
        assert!(
            anomaly_mean > normal_mean,
            "anomalies must be more surprising: {anomaly_mean} vs {normal_mean}"
        );
        assert!(report.models_trained > 0);
        assert!(report.flops > 0);
        assert!(report.model_bytes > 0);
    }

    #[test]
    fn contributions_sum_to_scores() {
        let (data, _) = expr_data(20, 4);
        let train = data.select_rows(&(0..16).collect::<Vec<_>>());
        let test = data.select_rows(&(16..24).collect::<Vec<_>>());
        let plan = TrainingPlan::full(train.n_features());
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        let contrib = model.contributions(&test);
        let ns = model.score(&test);
        for r in 0..test.n_rows() {
            let sum: f64 = contrib.values.iter().map(|c| c[r]).sum();
            assert!((sum - ns[r]).abs() < 1e-9);
        }
        assert_eq!(contrib.feature_ids.len(), train.n_features());
    }

    #[test]
    fn deterministic_across_runs() {
        let (data, _) = expr_data(20, 4);
        let train = data.select_rows(&(0..16).collect::<Vec<_>>());
        let test = data.select_rows(&(16..24).collect::<Vec<_>>());
        let plan = TrainingPlan::full(train.n_features());
        let cfg = FracConfig::default();
        let (m1, _) = FracModel::fit(&train, &plan, &cfg);
        let (m2, _) = FracModel::fit(&train, &plan, &cfg);
        assert_eq!(m1.score(&test), m2.score(&test));
    }

    #[test]
    fn missing_test_values_contribute_zero() {
        let train = DatasetBuilder::new()
            .real("a", (0..20).map(|i| i as f64).collect())
            .real("b", (0..20).map(|i| 2.0 * i as f64).collect())
            .build();
        let plan = TrainingPlan::full(2);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        let test_full = DatasetBuilder::new()
            .real("a", vec![5.0])
            .real("b", vec![10.0])
            .build();
        let test_missing = DatasetBuilder::new()
            .real("a", vec![f64::NAN])
            .real("b", vec![10.0])
            .build();
        let c_full = model.contributions(&test_full);
        let c_miss = model.contributions(&test_missing);
        // Feature a's contribution vanishes when a is missing.
        assert_ne!(c_full.values[0][0], 0.0);
        assert_eq!(c_miss.values[0][0], 0.0);
    }

    #[test]
    fn categorical_targets_use_confusion_models() {
        // Deterministic relationship between two ternary SNPs.
        let codes: Vec<u32> = (0..30).map(|i| (i % 3) as u32).collect();
        let train = DatasetBuilder::new()
            .categorical("s1", 3, codes.clone())
            .categorical("s2", 3, codes.clone())
            .build();
        let plan = TrainingPlan::full(2);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::snp());
        // Consistent row scores low; violated relationship scores high.
        let consistent = DatasetBuilder::new()
            .categorical("s1", 3, vec![1])
            .categorical("s2", 3, vec![1])
            .build();
        let violated = DatasetBuilder::new()
            .categorical("s1", 3, vec![1])
            .categorical("s2", 3, vec![2])
            .build();
        let ns_ok = model.score(&consistent)[0];
        let ns_bad = model.score(&violated)[0];
        assert!(ns_bad > ns_ok, "violation must surprise: {ns_bad} vs {ns_ok}");
    }

    #[test]
    fn missing_training_targets_are_dropped_not_crashing() {
        let train = DatasetBuilder::new()
            .real("a", vec![1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0])
            .categorical("b", 3, vec![0, 1, 2, MISSING_CODE, 1, 0])
            .build();
        let plan = TrainingPlan::full(2);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        assert_eq!(model.n_targets(), 2);
        let ns = model.score(&train);
        assert!(ns.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn strengths_reflect_learnability() {
        // Feature pair (a,b) perfectly linearly related; c is pure noise.
        let a: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        let c: Vec<f64> = (0..30)
            .map(|i| ((i * 2654435761usize) % 97) as f64 / 97.0)
            .collect();
        let train = DatasetBuilder::new()
            .real("a", a)
            .real("b", b)
            .real("c", c)
            .build();
        let plan = TrainingPlan::full(3);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        let get = |t: usize| model.strength_for(t);
        assert!(get(0) > 0.8, "a is perfectly predictable: {}", get(0));
        assert!(get(2) < 0.5, "c is noise: {}", get(2));
        // A target with no fitted model answers 0.0 instead of panicking.
        assert_eq!(model.strength_for(99), 0.0);
    }

    #[test]
    fn empty_input_set_learns_a_constant() {
        let train = DatasetBuilder::new()
            .real("a", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .build();
        let plan = TrainingPlan {
            targets: vec![crate::plan::TargetPlan { target: 0, input_sets: vec![vec![]] }],
        };
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        let ns = model.score(&train);
        assert!(ns.iter().all(|s| s.is_finite()));
    }
}
