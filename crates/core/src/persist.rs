//! Model persistence: save a fitted [`FracModel`] to a text file and reload
//! it for later scoring.
//!
//! FRaC's operational pattern in a clinic is train-once / screen-forever:
//! the reference cohort changes rarely, new patients arrive continuously,
//! and the full-run training is the expensive half (Table II). The format
//! is the plain line-oriented text of [`frac_dataset::textio`]: versioned,
//! dependency-free, human-inspectable, and bit-exact for floats — a
//! reloaded model produces *identical* NS scores (tested).

use crate::model::{
    CatPredictor, ErrorModel, FeatureModel, FeaturePredictor, FracModel, PredictorModel,
    RealPredictor,
};
use frac_dataset::crc::crc32;
use frac_dataset::design::DesignSpec;
use frac_dataset::textio::{TextError, TextReader, TextWriter};

/// Format version tag; bump on breaking layout changes.
/// Version 2 added the `planned` line (targets the training plan asked
/// for, including ones dropped by fault isolation); version 3 added the
/// `crc` trailer (CRC-32 of everything through the `end` line, verified on
/// load); version 4 added the optional `shards` line (per-shard worker
/// restart counts of a `--shards N` run, written only when the model came
/// out of a sharded fit). Version 1–3 files are still read — v1 defaults
/// `planned` to the surviving feature count, v1/v2 load without a checksum,
/// and a missing `shards` line means a single-process fit.
const MAGIC: &str = "fracmodel";
const VERSION: u32 = 4;

/// Serialize one per-target feature section (the unit shared by the model
/// file and the run journal's per-target records).
pub(crate) fn write_feature(w: &mut TextWriter, fm: &FeatureModel) {
    w.line("feature", [fm.target]);
    w.floats("entropy", &[fm.entropy]);
    w.floats("strength", &[fm.strength]);
    w.line("predictors", [fm.predictors.len()]);
    for fp in &fm.predictors {
        fp.spec.write_text(w);
        match (&fp.model, &fp.error) {
            (PredictorModel::Real(m), ErrorModel::Gaussian(e)) => {
                match m {
                    RealPredictor::Svr(svr) => {
                        w.tag("model_svr");
                        svr.write_text(w);
                    }
                    RealPredictor::Tree(t) => {
                        w.tag("model_rtree");
                        t.write_text(w);
                    }
                    RealPredictor::Constant(c) => {
                        w.tag("model_const");
                        c.write_text(w);
                    }
                }
                e.write_text(w);
            }
            (PredictorModel::Cat(m), ErrorModel::Confusion(e)) => {
                match m {
                    CatPredictor::Tree(t) => {
                        w.tag("model_ctree");
                        t.write_text(w);
                    }
                    CatPredictor::Svc(svc) => {
                        w.tag("model_svc");
                        svc.write_text(w);
                    }
                    CatPredictor::Majority(mc) => {
                        w.tag("model_majority");
                        mc.write_text(w);
                    }
                }
                e.write_text(w);
            }
            _ => unreachable!("model/error kinds are constructed consistently"),
        }
    }
}

/// Parse one feature section previously produced by [`write_feature`].
pub(crate) fn parse_feature(r: &mut TextReader<'_>) -> Result<FeatureModel, TextError> {
    let target: usize = r.parse_one("feature")?;
    parse_feature_body(r, target)
}

/// Parse the remainder of a feature section once its `feature <target>`
/// line has been consumed (the caller may need the target early, e.g. for
/// duplicate detection).
fn parse_feature_body(r: &mut TextReader<'_>, target: usize) -> Result<FeatureModel, TextError> {
    let entropy: f64 = r.parse_one("entropy")?;
    let strength: f64 = r.parse_one("strength")?;
    let n_predictors: usize = r.parse_one("predictors")?;
    let mut predictors = Vec::with_capacity(n_predictors);
    for _ in 0..n_predictors {
        let spec = DesignSpec::parse_text(r)?;
        let (model, error) = if r.peek_is("model_svr") {
            r.expect("model_svr")?;
            let m = frac_learn::LinearSvr::parse_text(r)?;
            let e = frac_learn::GaussianErrorModel::parse_text(r)?;
            (
                PredictorModel::Real(RealPredictor::Svr(m)),
                ErrorModel::Gaussian(e),
            )
        } else if r.peek_is("model_rtree") {
            r.expect("model_rtree")?;
            let m = frac_learn::RegressionTree::parse_text(r)?;
            let e = frac_learn::GaussianErrorModel::parse_text(r)?;
            (
                PredictorModel::Real(RealPredictor::Tree(m)),
                ErrorModel::Gaussian(e),
            )
        } else if r.peek_is("model_const") {
            r.expect("model_const")?;
            let m = frac_learn::ConstantRegressor::parse_text(r)?;
            let e = frac_learn::GaussianErrorModel::parse_text(r)?;
            (
                PredictorModel::Real(RealPredictor::Constant(m)),
                ErrorModel::Gaussian(e),
            )
        } else if r.peek_is("model_ctree") {
            r.expect("model_ctree")?;
            let m = frac_learn::ClassificationTree::parse_text(r)?;
            let e = frac_learn::ConfusionErrorModel::parse_text(r)?;
            (
                PredictorModel::Cat(CatPredictor::Tree(m)),
                ErrorModel::Confusion(e),
            )
        } else if r.peek_is("model_svc") {
            r.expect("model_svc")?;
            let m = frac_learn::LinearSvc::parse_text(r)?;
            let e = frac_learn::ConfusionErrorModel::parse_text(r)?;
            (
                PredictorModel::Cat(CatPredictor::Svc(m)),
                ErrorModel::Confusion(e),
            )
        } else if r.peek_is("model_majority") {
            r.expect("model_majority")?;
            let m = frac_learn::MajorityClassifier::parse_text(r)?;
            let e = frac_learn::ConfusionErrorModel::parse_text(r)?;
            (
                PredictorModel::Cat(CatPredictor::Majority(m)),
                ErrorModel::Confusion(e),
            )
        } else {
            return Err("unknown model tag".into());
        };
        predictors.push(FeaturePredictor { spec, model, error });
    }
    Ok(FeatureModel { target, entropy, strength, predictors })
}

/// Split a v3+ file into (body through `end` line, trailer) and verify the
/// trailer's CRC-32 against the body bytes. Safe to split at the *last*
/// `end` line: `end` is a reserved tag that appears exactly once in a model
/// body.
fn verify_crc_trailer(text: &str) -> Result<(), TextError> {
    let body_len = match text.rfind("\nend\n") {
        Some(idx) => idx + "\nend\n".len(),
        None => {
            return Err(format!(
                "model body stops before its `end` line after {} byte(s) — \
                 the file was truncated before the CRC32 trailer",
                text.len()
            )
            .into())
        }
    };
    let (body, trailer) = text.split_at(body_len);
    let trailer_preview = trailer.trim();
    if trailer_preview.is_empty() {
        return Err("missing CRC trailer: expected `crc <8 hex digits>` after the \
                    `end` line — the file was truncated at the trailer"
            .into());
    }
    let mut r = TextReader::new(trailer);
    let stored_hex: String = r.parse_one("crc").map_err(|_| {
        TextError::from(format!(
            "short or malformed CRC trailer `{trailer_preview}`: expected \
             `crc <8 hex digits>` after the `end` line (file truncated?)"
        ))
    })?;
    if stored_hex.len() != 8 {
        return Err(format!(
            "short CRC trailer `crc {stored_hex}`: expected 8 hex digits, \
             got {} — the file was truncated inside the trailer",
            stored_hex.len()
        )
        .into());
    }
    let stored = u32::from_str_radix(&stored_hex, 16)
        .map_err(|_| TextError::from(format!("bad crc field `{stored_hex}`")))?;
    let computed = crc32(body.as_bytes());
    if stored != computed {
        return Err(format!(
            "model file checksum mismatch: stored {stored:08x}, computed {computed:08x} \
             (file is corrupt or was truncated)"
        )
        .into());
    }
    Ok(())
}

impl FracModel {
    /// Serialize the model to the text format (v4: checksummed trailer,
    /// optional shard-provenance line).
    pub fn to_text(&self) -> String {
        let mut w = TextWriter::new();
        w.line(MAGIC, [VERSION]);
        w.line("planned", [self.planned_targets]);
        if !self.shard_restarts.is_empty() {
            w.line("shards", self.shard_restarts.iter().copied());
        }
        w.line("features", [self.features.len()]);
        for fm in &self.features {
            write_feature(&mut w, fm);
        }
        w.tag("end");
        let body = w.finish();
        let checksum = crc32(body.as_bytes());
        format!("{body}crc {checksum:08x}\n")
    }

    /// Parse a model previously produced by [`FracModel::to_text`].
    ///
    /// Rejects duplicate per-target sections (a well-formed writer never
    /// emits them; accepting the last one silently would mask a corrupted
    /// or maliciously spliced file) and, for v3 files, verifies the CRC-32
    /// trailer before trusting any parsed value.
    pub fn from_text(text: &str) -> Result<FracModel, TextError> {
        let mut r = TextReader::new(text);
        let version: u32 = r.parse_one(MAGIC)?;
        if !(1..=VERSION).contains(&version) {
            return Err(format!("unsupported fracmodel version {version}").into());
        }
        if version >= 3 {
            verify_crc_trailer(text)?;
        }
        let planned: Option<usize> =
            if version >= 2 { Some(r.parse_one("planned")?) } else { None };
        let shard_restarts: Vec<usize> = if version >= 4 && r.peek_is("shards") {
            r.parse_all("shards")?
        } else {
            Vec::new()
        };
        let n_features: usize = r.parse_one("features")?;
        let mut features = Vec::with_capacity(n_features);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..n_features {
            let target: usize = r.parse_one("feature")?;
            let line = r.line();
            if !seen.insert(target) {
                return Err(TextError::at(
                    line,
                    format!("duplicate section for target feature {target}"),
                ));
            }
            features.push(parse_feature_body(&mut r, target)?);
        }
        r.expect("end")?;
        let planned_targets = planned.unwrap_or(features.len());
        Ok(FracModel { features, planned_targets, shard_restarts })
    }

    /// Save to a file, atomically and durably: the model is written to
    /// `<path>.tmp`, fsynced, then renamed over `path`, so a crash at any
    /// instant leaves either the old file or the complete new one — never a
    /// torn mix. The parent directory is fsynced best-effort so the rename
    /// itself survives power loss.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write as _;
        let path = path.as_ref();
        let tmp = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = std::fs::File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        Ok(())
    }

    /// Load from a file.
    ///
    /// Every error — I/O, truncation, checksum, parse — names the path, so
    /// callers (the CLI, the serving daemon's hot-reload) can surface it
    /// verbatim without re-wrapping.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<FracModel, TextError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            TextError::from(format!("{}: I/O error: {e}", path.display()))
        })?;
        FracModel::from_text(&text).map_err(|e| TextError {
            message: format!("{}: {}", path.display(), e.message),
            ..e
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FracConfig;
    use crate::model::FracModel;
    use crate::plan::TrainingPlan;
    use frac_dataset::dataset::{DatasetBuilder, MISSING_CODE};
    use frac_synth::{ExpressionConfig, ExpressionGenerator};

    #[test]
    fn expression_model_roundtrips_bit_exact() {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 15,
            n_modules: 3,
            anomaly_modules: 1,
            structure_seed: 5,
            ..ExpressionConfig::default()
        });
        let (data, _) = g.generate(25, 5, 2);
        let train = data.select_rows(&(0..20).collect::<Vec<_>>());
        let test = data.select_rows(&(20..30).collect::<Vec<_>>());
        let plan = TrainingPlan::full(train.n_features());
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());

        let text = model.to_text();
        let back = FracModel::from_text(&text).unwrap();
        let ns_a = model.score(&test);
        let ns_b = back.score(&test);
        for (a, b) in ns_a.iter().zip(&ns_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(model.feature_strengths(), back.feature_strengths());
    }

    #[test]
    fn snp_model_roundtrips_bit_exact() {
        let codes: Vec<u32> = (0..24).map(|i| (i % 3) as u32).collect();
        let shifted: Vec<u32> = codes.iter().map(|&c| (c + 1) % 3).collect();
        let train = DatasetBuilder::new()
            .categorical("a", 3, codes)
            .categorical("b", 3, shifted)
            .real("expr", (0..24).map(|i| i as f64 * 0.3).collect())
            .build();
        let plan = TrainingPlan::full(3);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::snp());
        let test = DatasetBuilder::new()
            .categorical("a", 3, vec![0, 1, MISSING_CODE])
            .categorical("b", 3, vec![1, 0, 2])
            .real("expr", vec![1.0, f64::NAN, 5.0])
            .build();

        let back = FracModel::from_text(&model.to_text()).unwrap();
        let (ns_a, ns_b) = (model.score(&test), back.score(&test));
        for (a, b) in ns_a.iter().zip(&ns_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn file_roundtrip() {
        let train = DatasetBuilder::new()
            .real("x", (0..12).map(|i| i as f64).collect())
            .real("y", (0..12).map(|i| i as f64 * 2.0).collect())
            .build();
        let plan = TrainingPlan::full(2);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        let dir = std::env::temp_dir().join("frac-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.frac");
        model.save(&path).unwrap();
        let back = FracModel::load(&path).unwrap();
        assert_eq!(model.score(&train), back.score(&train));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_version_and_garbage() {
        assert!(FracModel::from_text("fracmodel 99\n").is_err());
        assert!(FracModel::from_text("not a model").is_err());
        assert!(FracModel::from_text("").is_err());
        // Truncated model.
        let train = DatasetBuilder::new()
            .real("x", (0..8).map(|i| i as f64).collect())
            .real("y", (0..8).map(|i| i as f64).collect())
            .build();
        let (model, _) =
            FracModel::fit(&train, &TrainingPlan::full(2), &FracConfig::default());
        let text = model.to_text();
        let truncated = &text[..text.len() / 2];
        assert!(FracModel::from_text(truncated).is_err());
    }

    fn parse_err(text: &str) -> frac_dataset::textio::TextError {
        match FracModel::from_text(text) {
            Err(e) => e,
            Ok(_) => panic!("expected parse error"),
        }
    }

    fn small_model() -> FracModel {
        let train = DatasetBuilder::new()
            .real("x", (0..10).map(|i| i as f64).collect())
            .real("y", (0..10).map(|i| i as f64 * 1.5 + 0.25).collect())
            .build();
        let (model, _) =
            FracModel::fit(&train, &TrainingPlan::full(2), &FracConfig::default());
        model
    }

    #[test]
    fn v3_crc_trailer_catches_corruption() {
        let model = small_model();
        let text = model.to_text();
        assert!(text.contains("\ncrc "), "v3+ files carry a crc trailer: {text}");
        assert!(FracModel::from_text(&text).is_ok());

        // Flip one digit somewhere in the body: checksum must catch it even
        // though the file still parses structurally.
        let pos = text.find("entropy ").expect("entropy line") + "entropy ".len() + 1;
        let mut corrupted = text.clone().into_bytes();
        corrupted[pos] = if corrupted[pos] == b'1' { b'2' } else { b'1' };
        let corrupted = String::from_utf8(corrupted).unwrap();
        let err = parse_err(&corrupted);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // A missing trailer on a v3 file is also rejected, naming the
        // trailer rather than a generic parse failure.
        let body_end = text.rfind("\nend\n").unwrap() + "\nend\n".len();
        let err = parse_err(&text[..body_end]);
        assert!(err.to_string().contains("missing CRC trailer"), "{err}");
    }

    /// Satellite guarantee: a file truncated anywhere after the version
    /// line fails with an error that names the path and the truncation
    /// (missing `end`, missing trailer, or short trailer) — never a
    /// generic "unknown tag"-style parse error from half a feature
    /// section, because the trailer is checked before any body parsing.
    #[test]
    fn truncation_at_any_offset_names_path_and_trailer() {
        let model = small_model();
        let dir = std::env::temp_dir().join("frac-persist-truncation-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.frac");
        model.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let body_end = text.rfind("\nend\n").unwrap() + "\nend\n".len();

        // Offsets spanning the interesting regions: just past the version
        // line, mid-body, just before `end`, after `end` but before the
        // trailer, and inside the trailer's tag and hex digits.
        let offsets = [
            text.find('\n').unwrap() + 2, // inside the `planned` line
            text.len() / 3,               // mid-body
            text.len() / 2,               // mid-body
            body_end - 3,                 // inside the `end` line
            body_end,                     // trailer fully missing
            body_end + 2,                 // inside the `crc` tag
            text.len() - 6,               // trailer hex cut short
        ];
        for &off in &offsets {
            let cut = path.with_extension(format!("cut{off}"));
            std::fs::write(&cut, &text.as_bytes()[..off]).unwrap();
            let err = match FracModel::load(&cut) {
                Err(e) => e.to_string(),
                Ok(_) => panic!("offset {off}: truncated file loaded"),
            };
            assert!(
                err.contains(&cut.display().to_string()),
                "offset {off}: error must name the path: {err}"
            );
            assert!(
                err.to_lowercase().contains("truncat"),
                "offset {off}: error must name the truncation: {err}"
            );
            assert!(
                !err.contains("unknown model tag"),
                "offset {off}: generic parse error leaked through: {err}"
            );
            std::fs::remove_file(&cut).ok();
        }

        // Losing only the final newline leaves the trailer complete: the
        // file still verifies and loads.
        let trimmed = path.with_extension("nonl");
        std::fs::write(&trimmed, &text.as_bytes()[..text.len() - 1]).unwrap();
        assert!(FracModel::load(&trimmed).is_ok());
        std::fs::remove_file(&trimmed).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn older_versions_still_load() {
        let model = small_model();
        let text = model.to_text();
        let body_end = text.rfind("\nend\n").unwrap() + "\nend\n".len();
        // Reconstruct a v3 file: old version line, trailer recomputed over
        // the edited body.
        let v3_body = text[..body_end].replacen("fracmodel 4", "fracmodel 3", 1);
        let v3 =
            format!("{v3_body}crc {:08x}\n", frac_dataset::crc::crc32(v3_body.as_bytes()));
        let back = FracModel::from_text(&v3).unwrap();
        assert_eq!(back.planned_targets, model.planned_targets);
        // A v2 file: old version line, no crc trailer.
        let v2 = text[..body_end].replacen("fracmodel 4", "fracmodel 2", 1);
        let back = FracModel::from_text(&v2).unwrap();
        assert_eq!(back.planned_targets, model.planned_targets);
        // And a v1 file: no `planned` line either.
        let planned_line = format!("planned {}\n", model.planned_targets);
        let v1 = v2
            .replacen("fracmodel 2", "fracmodel 1", 1)
            .replacen(&planned_line, "", 1);
        let back = FracModel::from_text(&v1).unwrap();
        assert_eq!(back.features.len(), model.features.len());
    }

    #[test]
    fn shard_restarts_roundtrip_and_default_empty() {
        // A single-process model writes no `shards` line and loads with an
        // empty provenance.
        let model = small_model();
        assert!(!model.to_text().contains("\nshards "));
        let back = FracModel::from_text(&model.to_text()).unwrap();
        assert!(back.shard_restarts().is_empty());

        // A sharded model's restart counts survive the roundtrip.
        let mut sharded = small_model();
        sharded.shard_restarts = vec![0, 2, 1];
        let text = sharded.to_text();
        assert!(text.contains("\nshards 0 2 1\n"), "{text}");
        let back = FracModel::from_text(&text).unwrap();
        assert_eq!(back.shard_restarts(), &[0, 2, 1]);
        // Scores are unaffected by provenance.
        let train = DatasetBuilder::new()
            .real("x", (0..10).map(|i| i as f64).collect())
            .real("y", (0..10).map(|i| i as f64 * 1.5 + 0.25).collect())
            .build();
        assert_eq!(sharded.score(&train), back.score(&train));
    }

    #[test]
    fn duplicate_target_sections_are_rejected_with_location() {
        let model = small_model();
        let text = model.to_text();
        // Duplicate the first feature section verbatim and fix up the count;
        // recompute the trailer so the error comes from the duplicate check,
        // not the checksum.
        let start = text.find("\nfeature ").expect("feature section") + 1;
        let end = start
            + text[start..].find("\nfeature ").map(|i| i + 1).unwrap_or_else(|| {
                text[start..].rfind("\nend\n").expect("end tag") + 1
            });
        let section = &text[start..end];
        let n = model.features.len();
        let doubled = text
            .replacen(&format!("features {n}"), &format!("features {}", n + 1), 1)
            .replacen(section, &format!("{section}{section}"), 1);
        let body_end = doubled.rfind("\nend\n").unwrap() + "\nend\n".len();
        let body = &doubled[..body_end];
        let fixed = format!("{body}crc {:08x}\n", frac_dataset::crc::crc32(body.as_bytes()));
        let err = parse_err(&fixed);
        let msg = err.to_string();
        assert!(msg.contains("duplicate section for target feature"), "{msg}");
        assert!(err.line > 0, "duplicate error should carry a line number: {msg}");
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let model = small_model();
        let dir = std::env::temp_dir().join("frac-persist-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.frac");
        // Overwrite an existing (stale) file to exercise the rename path.
        std::fs::write(&path, "stale").unwrap();
        model.save(&path).unwrap();
        assert!(!dir.join("model.frac.tmp").exists(), "tmp file must be renamed away");
        let back = FracModel::load(&path).unwrap();
        assert_eq!(back.planned_targets, model.planned_targets);
        std::fs::remove_file(&path).ok();
    }
}
