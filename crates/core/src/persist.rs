//! Model persistence: save a fitted [`FracModel`] to a text file and reload
//! it for later scoring.
//!
//! FRaC's operational pattern in a clinic is train-once / screen-forever:
//! the reference cohort changes rarely, new patients arrive continuously,
//! and the full-run training is the expensive half (Table II). The format
//! is the plain line-oriented text of [`frac_dataset::textio`]: versioned,
//! dependency-free, human-inspectable, and bit-exact for floats — a
//! reloaded model produces *identical* NS scores (tested).

use crate::model::{
    CatPredictor, ErrorModel, FeatureModel, FeaturePredictor, FracModel, PredictorModel,
    RealPredictor,
};
use frac_dataset::design::DesignSpec;
use frac_dataset::textio::{TextError, TextReader, TextWriter};

/// Format version tag; bump on breaking layout changes.
/// Version 2 added the `planned` line (targets the training plan asked
/// for, including ones dropped by fault isolation); version 1 files are
/// still read, with `planned` defaulting to the surviving feature count.
const MAGIC: &str = "fracmodel";
const VERSION: u32 = 2;

impl FracModel {
    /// Serialize the model to the text format.
    pub fn to_text(&self) -> String {
        let mut w = TextWriter::new();
        w.line(MAGIC, [VERSION]);
        w.line("planned", [self.planned_targets]);
        w.line("features", [self.features.len()]);
        for fm in &self.features {
            w.line("feature", [fm.target]);
            w.floats("entropy", &[fm.entropy]);
            w.floats("strength", &[fm.strength]);
            w.line("predictors", [fm.predictors.len()]);
            for fp in &fm.predictors {
                fp.spec.write_text(&mut w);
                match (&fp.model, &fp.error) {
                    (PredictorModel::Real(m), ErrorModel::Gaussian(e)) => {
                        match m {
                            RealPredictor::Svr(svr) => {
                                w.tag("model_svr");
                                svr.write_text(&mut w);
                            }
                            RealPredictor::Tree(t) => {
                                w.tag("model_rtree");
                                t.write_text(&mut w);
                            }
                            RealPredictor::Constant(c) => {
                                w.tag("model_const");
                                c.write_text(&mut w);
                            }
                        }
                        e.write_text(&mut w);
                    }
                    (PredictorModel::Cat(m), ErrorModel::Confusion(e)) => {
                        match m {
                            CatPredictor::Tree(t) => {
                                w.tag("model_ctree");
                                t.write_text(&mut w);
                            }
                            CatPredictor::Svc(svc) => {
                                w.tag("model_svc");
                                svc.write_text(&mut w);
                            }
                            CatPredictor::Majority(mc) => {
                                w.tag("model_majority");
                                mc.write_text(&mut w);
                            }
                        }
                        e.write_text(&mut w);
                    }
                    _ => unreachable!("model/error kinds are constructed consistently"),
                }
            }
        }
        w.tag("end");
        w.finish()
    }

    /// Parse a model previously produced by [`FracModel::to_text`].
    pub fn from_text(text: &str) -> Result<FracModel, TextError> {
        let mut r = TextReader::new(text);
        let version: u32 = r.parse_one(MAGIC)?;
        if !(1..=VERSION).contains(&version) {
            return Err(format!("unsupported fracmodel version {version}").into());
        }
        let planned: Option<usize> =
            if version >= 2 { Some(r.parse_one("planned")?) } else { None };
        let n_features: usize = r.parse_one("features")?;
        let mut features = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            let target: usize = r.parse_one("feature")?;
            let entropy: f64 = r.parse_one("entropy")?;
            let strength: f64 = r.parse_one("strength")?;
            let n_predictors: usize = r.parse_one("predictors")?;
            let mut predictors = Vec::with_capacity(n_predictors);
            for _ in 0..n_predictors {
                let spec = DesignSpec::parse_text(&mut r)?;
                let (model, error) = if r.peek_is("model_svr") {
                    r.expect("model_svr")?;
                    let m = frac_learn::LinearSvr::parse_text(&mut r)?;
                    let e = frac_learn::GaussianErrorModel::parse_text(&mut r)?;
                    (
                        PredictorModel::Real(RealPredictor::Svr(m)),
                        ErrorModel::Gaussian(e),
                    )
                } else if r.peek_is("model_rtree") {
                    r.expect("model_rtree")?;
                    let m = frac_learn::RegressionTree::parse_text(&mut r)?;
                    let e = frac_learn::GaussianErrorModel::parse_text(&mut r)?;
                    (
                        PredictorModel::Real(RealPredictor::Tree(m)),
                        ErrorModel::Gaussian(e),
                    )
                } else if r.peek_is("model_const") {
                    r.expect("model_const")?;
                    let m = frac_learn::ConstantRegressor::parse_text(&mut r)?;
                    let e = frac_learn::GaussianErrorModel::parse_text(&mut r)?;
                    (
                        PredictorModel::Real(RealPredictor::Constant(m)),
                        ErrorModel::Gaussian(e),
                    )
                } else if r.peek_is("model_ctree") {
                    r.expect("model_ctree")?;
                    let m = frac_learn::ClassificationTree::parse_text(&mut r)?;
                    let e = frac_learn::ConfusionErrorModel::parse_text(&mut r)?;
                    (
                        PredictorModel::Cat(CatPredictor::Tree(m)),
                        ErrorModel::Confusion(e),
                    )
                } else if r.peek_is("model_svc") {
                    r.expect("model_svc")?;
                    let m = frac_learn::LinearSvc::parse_text(&mut r)?;
                    let e = frac_learn::ConfusionErrorModel::parse_text(&mut r)?;
                    (
                        PredictorModel::Cat(CatPredictor::Svc(m)),
                        ErrorModel::Confusion(e),
                    )
                } else if r.peek_is("model_majority") {
                    r.expect("model_majority")?;
                    let m = frac_learn::MajorityClassifier::parse_text(&mut r)?;
                    let e = frac_learn::ConfusionErrorModel::parse_text(&mut r)?;
                    (
                        PredictorModel::Cat(CatPredictor::Majority(m)),
                        ErrorModel::Confusion(e),
                    )
                } else {
                    return Err("unknown model tag".into());
                };
                predictors.push(FeaturePredictor { spec, model, error });
            }
            features.push(FeatureModel { target, entropy, strength, predictors });
        }
        r.expect("end")?;
        let planned_targets = planned.unwrap_or(features.len());
        Ok(FracModel { features, planned_targets })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<FracModel, TextError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TextError::from(format!("I/O error: {e}")))?;
        FracModel::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FracConfig;
    use crate::model::FracModel;
    use crate::plan::TrainingPlan;
    use frac_dataset::dataset::{DatasetBuilder, MISSING_CODE};
    use frac_synth::{ExpressionConfig, ExpressionGenerator};

    #[test]
    fn expression_model_roundtrips_bit_exact() {
        let g = ExpressionGenerator::new(ExpressionConfig {
            n_features: 15,
            n_modules: 3,
            anomaly_modules: 1,
            structure_seed: 5,
            ..ExpressionConfig::default()
        });
        let (data, _) = g.generate(25, 5, 2);
        let train = data.select_rows(&(0..20).collect::<Vec<_>>());
        let test = data.select_rows(&(20..30).collect::<Vec<_>>());
        let plan = TrainingPlan::full(train.n_features());
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());

        let text = model.to_text();
        let back = FracModel::from_text(&text).unwrap();
        let ns_a = model.score(&test);
        let ns_b = back.score(&test);
        for (a, b) in ns_a.iter().zip(&ns_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(model.feature_strengths(), back.feature_strengths());
    }

    #[test]
    fn snp_model_roundtrips_bit_exact() {
        let codes: Vec<u32> = (0..24).map(|i| (i % 3) as u32).collect();
        let shifted: Vec<u32> = codes.iter().map(|&c| (c + 1) % 3).collect();
        let train = DatasetBuilder::new()
            .categorical("a", 3, codes)
            .categorical("b", 3, shifted)
            .real("expr", (0..24).map(|i| i as f64 * 0.3).collect())
            .build();
        let plan = TrainingPlan::full(3);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::snp());
        let test = DatasetBuilder::new()
            .categorical("a", 3, vec![0, 1, MISSING_CODE])
            .categorical("b", 3, vec![1, 0, 2])
            .real("expr", vec![1.0, f64::NAN, 5.0])
            .build();

        let back = FracModel::from_text(&model.to_text()).unwrap();
        let (ns_a, ns_b) = (model.score(&test), back.score(&test));
        for (a, b) in ns_a.iter().zip(&ns_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn file_roundtrip() {
        let train = DatasetBuilder::new()
            .real("x", (0..12).map(|i| i as f64).collect())
            .real("y", (0..12).map(|i| i as f64 * 2.0).collect())
            .build();
        let plan = TrainingPlan::full(2);
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::default());
        let dir = std::env::temp_dir().join("frac-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.frac");
        model.save(&path).unwrap();
        let back = FracModel::load(&path).unwrap();
        assert_eq!(model.score(&train), back.score(&train));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_version_and_garbage() {
        assert!(FracModel::from_text("fracmodel 99\n").is_err());
        assert!(FracModel::from_text("not a model").is_err());
        assert!(FracModel::from_text("").is_err());
        // Truncated model.
        let train = DatasetBuilder::new()
            .real("x", (0..8).map(|i| i as f64).collect())
            .real("y", (0..8).map(|i| i as f64).collect())
            .build();
        let (model, _) =
            FracModel::fit(&train, &TrainingPlan::full(2), &FracConfig::default());
        let text = model.to_text();
        let truncated = &text[..text.len() / 2];
        assert!(FracModel::from_text(truncated).is_err());
    }
}
