//! End-to-end fault-injection gate for the fault-isolated training fleet.
//!
//! The contract under test: `FracModel::fit` + `score` never panic, always
//! return finite NS scores, and account for every degraded or dropped
//! target in `RunHealth` — under poisoned cells, forced solver divergence,
//! and forced trainer panics. And with no faults at all, the guarded path
//! is bitwise identical to the plain one.

use frac_core::fault::INJECTED_PANIC;
use frac_core::{
    FallbackKind, FaultPlan, FracConfig, FracModel, TargetOutcome, TrainingPlan,
};
use frac_dataset::dataset::{DatasetBuilder, MISSING_CODE};
use frac_dataset::Dataset;
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use proptest::prelude::*;
use std::sync::Once;

/// Suppress the default "thread panicked" stderr spew for *injected* panics
/// only; real panics still report normally.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(INJECTED_PANIC))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn expr_data(n_rows: usize, n_features: usize, seed: u64) -> Dataset {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 3,
        anomaly_modules: 1,
        structure_seed: seed,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, 0, seed ^ 0x5EED);
    data
}

fn assert_all_finite(ns: &[f64]) {
    assert!(
        ns.iter().all(|s| s.is_finite()),
        "NS scores must stay finite: {ns:?}"
    );
}

#[test]
fn empty_fault_plan_is_bitwise_identical_to_plain_fit() {
    let data = expr_data(24, 10, 3);
    let train = data.select_rows(&(0..18).collect::<Vec<_>>());
    let test = data.select_rows(&(18..24).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    let cfg = FracConfig::default();

    let (plain, plain_report) = FracModel::fit(&train, &plan, &cfg);
    let (guarded, guarded_report) = FracModel::fit_with_faults(&train, &plan, &cfg, &FaultPlan::none());

    let (a, b) = (plain.score(&test), guarded.score(&test));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "clean path must be bit-identical");
    }
    assert_eq!(plain_report.models_trained, guarded_report.models_trained);
    assert_eq!(plain_report.flops, guarded_report.flops);
    assert!(guarded_report.health.is_clean(), "{}", guarded_report.health.summary());
    assert_eq!(guarded_report.health.targets_planned, plan.targets.len());
    assert!(guarded_report.health.summary().contains("fitted cleanly"));
}

#[test]
fn zero_variance_real_target_is_quarantined_not_solved() {
    let mut b = DatasetBuilder::new()
        .real("const", vec![7.25; 20])
        .real("x", (0..20).map(|i| i as f64).collect());
    b = b.real("y", (0..20).map(|i| (i as f64) * 0.5 + 1.0).collect());
    let train = b.build();
    let plan = TrainingPlan::full(3);
    let (model, report) = FracModel::fit(&train, &plan, &FracConfig::default());

    let quarantined: Vec<_> = report
        .health
        .events_for(0)
        .filter(|e| matches!(e.outcome, TargetOutcome::Quarantined { .. }))
        .collect();
    assert_eq!(quarantined.len(), 1, "{}", report.health.summary());
    assert_eq!(report.health.n_quarantined(), 1);
    // Quarantine substitutes the baseline; the target still survives.
    assert_eq!(model.n_targets(), 3);
    assert_eq!(report.health.targets_survived, 3);
    assert_eq!(model.strength_for(0), 0.0);
    assert_all_finite(&model.score(&train));
}

#[test]
fn single_class_categorical_target_is_quarantined() {
    let codes: Vec<u32> = (0..24).map(|i| (i % 3) as u32).collect();
    let train = DatasetBuilder::new()
        .categorical("mono", 3, vec![1; 24])
        .categorical("snp", 3, codes.clone())
        .categorical("snp2", 3, codes.iter().map(|&c| (c + 1) % 3).collect())
        .build();
    let plan = TrainingPlan::full(3);
    let (model, report) = FracModel::fit(&train, &plan, &FracConfig::snp());

    assert!(report.health.events_for(0).any(|e| matches!(
        e.outcome,
        TargetOutcome::Quarantined { .. }
    )));
    assert_eq!(model.n_targets(), 3);
    assert_all_finite(&model.score(&train));
}

#[test]
fn inf_cells_are_sanitized_and_training_proceeds() {
    let mut vals: Vec<f64> = (0..20).map(|i| i as f64).collect();
    vals[3] = f64::INFINITY;
    vals[11] = f64::NEG_INFINITY;
    let train = DatasetBuilder::new()
        .real("poisoned", vals)
        .real("x", (0..20).map(|i| i as f64 * 2.0).collect())
        .build();
    let plan = TrainingPlan::full(2);
    let (model, report) = FracModel::fit(&train, &plan, &FracConfig::default());

    assert_eq!(report.health.sanitized_cells, 2);
    assert!(report.health.events_for(0).any(|e| matches!(
        e.outcome,
        TargetOutcome::Sanitized { cells: 2 }
    )));
    assert_eq!(report.health.targets_survived, 2);
    // Scoring a poisoned test set is likewise sanitized, not propagated.
    assert_all_finite(&model.score(&train));
}

#[test]
fn all_missing_target_is_dropped_and_ns_renormalized() {
    let data = expr_data(20, 6, 9);
    let mut cols: Vec<frac_dataset::Column> =
        (0..6).map(|j| data.column(j).clone()).collect();
    cols[2] = frac_dataset::Column::Real(vec![f64::NAN; 20].into());
    let train = Dataset::new(data.schema().clone(), cols);
    let plan = TrainingPlan::full(6);
    let (model, report) = FracModel::fit(&train, &plan, &FracConfig::default());

    assert_eq!(report.health.targets_planned, 6);
    assert_eq!(report.health.targets_survived, 5);
    assert_eq!(report.health.n_dropped(), 1);
    assert!(report.health.events_for(2).any(|e| matches!(
        e.outcome,
        TargetOutcome::Dropped { .. }
    )));
    assert_eq!(model.n_targets(), 5);
    assert_eq!(model.planned_targets(), 6);
    assert!((model.ns_renorm_factor() - 6.0 / 5.0).abs() < 1e-12);

    let contrib = model.contributions(&train);
    assert!((contrib.renorm - 6.0 / 5.0).abs() < 1e-12);
    // ns_scores applies the renorm on top of the per-feature sum.
    let raw: f64 = contrib.values.iter().map(|c| c[0]).sum();
    assert!((contrib.ns_scores()[0] - raw * 6.0 / 5.0).abs() < 1e-9);
    assert_all_finite(&model.score(&train));
}

#[test]
fn forced_divergence_falls_back_to_strict_solver() {
    let data = expr_data(24, 8, 5);
    let plan = TrainingPlan::full(8);
    let faults = FaultPlan::seeded(1).with_diverge_at([1, 4]);
    let (model, report) =
        FracModel::fit_with_faults(&data, &plan, &FracConfig::default(), &faults);

    for t in [1usize, 4] {
        assert!(
            report.health.events_for(t).any(|e| matches!(
                e.outcome,
                TargetOutcome::Degraded { fallback: FallbackKind::StrictSolver, .. }
            )),
            "target {t} must record the strict-solver rescue: {}",
            report.health.summary()
        );
    }
    assert_eq!(report.health.targets_survived, 8);
    assert_all_finite(&model.score(&data));
}

#[test]
fn forced_panics_are_caught_and_baselined() {
    quiet_injected_panics();
    let data = expr_data(24, 10, 7);
    let plan = TrainingPlan::full(10);
    // ≥ 10% of targets panic mid-fit.
    let faults = FaultPlan::seeded(2).with_panic_at([0, 5, 9]);
    let (model, report) =
        FracModel::fit_with_faults(&data, &plan, &FracConfig::default(), &faults);

    for t in [0usize, 5, 9] {
        let rescued = report.health.events_for(t).any(|e| match &e.outcome {
            TargetOutcome::Degraded { fallback: FallbackKind::Baseline, detail, .. } => {
                detail.contains(INJECTED_PANIC)
            }
            _ => false,
        });
        assert!(rescued, "target {t} must be baselined: {}", report.health.summary());
    }
    assert_eq!(report.health.targets_survived, 10);
    assert_eq!(model.n_targets(), 10);
    assert_all_finite(&model.score(&data));
}

#[test]
fn combined_disaster_never_panics_and_accounts_for_every_target() {
    quiet_injected_panics();
    let data = expr_data(40, 12, 13);
    let plan = TrainingPlan::full(12);
    let faults = FaultPlan::seeded(77)
        .with_poison(0.15)
        .with_diverge_at([2, 6])
        .with_panic_at([3, 8]);
    let poisoned = faults.poison(&data);
    let (model, report) =
        FracModel::fit_with_faults(&poisoned, &plan, &FracConfig::default(), &faults);

    // Every explicitly faulted target has at least one health event.
    for t in [2usize, 3, 6, 8] {
        assert!(
            report.health.events_for(t).next().is_some(),
            "target {t} unaccounted: {}",
            report.health.summary()
        );
    }
    // Survivors + dropped = planned, and the model agrees.
    assert_eq!(
        report.health.targets_survived + report.health.n_dropped(),
        report.health.targets_planned
    );
    assert_eq!(model.n_targets(), report.health.targets_survived);
    assert_eq!(model.planned_targets(), 12);
    assert!(report.health.sanitized_cells > 0, "0.15 poison must hit some Inf cells");

    // Scoring the poisoned test set stays finite.
    assert_all_finite(&model.score(&poisoned));
    assert_all_finite(&model.score(&data));
}

#[test]
fn missing_code_cells_never_reach_a_panic() {
    // Categorical poison (missing codes) across most of a column.
    let mut codes: Vec<u32> = (0..30).map(|i| (i % 3) as u32).collect();
    for c in codes.iter_mut().skip(2) {
        *c = MISSING_CODE;
    }
    let train = DatasetBuilder::new()
        .categorical("sparse", 3, codes)
        .categorical("snp", 3, (0..30).map(|i| (i % 3) as u32).collect())
        .real("expr", (0..30).map(|i| i as f64 * 0.3).collect())
        .build();
    let plan = TrainingPlan::full(3);
    let (model, report) = FracModel::fit(&train, &plan, &FracConfig::snp());
    // Two present cells of classes {2, 0}: trains (possibly degraded) but
    // must not die; health explains whatever happened.
    assert_eq!(
        report.health.targets_survived + report.health.n_dropped(),
        report.health.targets_planned
    );
    assert_all_finite(&model.score(&train));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fit_and_score_survive_arbitrary_fault_plans(
        seed in 0u64..1_000,
        poison in 0.0f64..0.35,
        diverge in prop::collection::vec(0usize..8, 0..3),
        panic_at in prop::collection::vec(0usize..8, 0..3),
    ) {
        quiet_injected_panics();
        let data = expr_data(24, 8, 11);
        let plan = TrainingPlan::full(8);
        let faults = FaultPlan::seeded(seed)
            .with_poison(poison)
            .with_diverge_at(diverge.iter().copied())
            .with_panic_at(panic_at.iter().copied());
        let poisoned = faults.poison(&data);
        let (model, report) =
            FracModel::fit_with_faults(&poisoned, &plan, &FracConfig::default(), &faults);

        // Accounting invariants hold under any fault plan.
        prop_assert_eq!(report.health.targets_planned, 8);
        prop_assert_eq!(
            report.health.targets_survived + report.health.n_dropped(),
            report.health.targets_planned
        );
        prop_assert_eq!(model.n_targets(), report.health.targets_survived);

        // Fit + score never panic and never emit a non-finite NS.
        let ns = model.score(&poisoned);
        prop_assert_eq!(ns.len(), poisoned.n_rows());
        prop_assert!(ns.iter().all(|s| s.is_finite()), "{:?}", ns);
    }
}
