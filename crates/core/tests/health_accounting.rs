//! RunHealth arithmetic under adversity: every planned target is accounted
//! for (survived or dropped, never lost), and the NS renormalization stays
//! finite even when *everything* drops or the wall-clock budget is already
//! spent before the first solve.

use frac_core::fault::INJECTED_PANIC;
use frac_core::{
    FallbackKind, FaultPlan, FracConfig, FracModel, RunBudget, TargetOutcome,
    TrainingPlan,
};
use frac_dataset::Dataset;
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use proptest::prelude::*;
use std::sync::Once;
use std::time::Duration;

fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(INJECTED_PANIC))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn expr_data(n_rows: usize, n_features: usize, seed: u64) -> Dataset {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 3,
        anomaly_modules: 1,
        structure_seed: seed,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, 0, seed ^ 0x5EED);
    data
}

#[test]
fn all_targets_dropped_keeps_renorm_and_scores_finite() {
    // Every column all-missing: every target is quarantined and dropped.
    let data = expr_data(16, 4, 2);
    let cols: Vec<frac_dataset::Column> =
        (0..4).map(|_| frac_dataset::Column::Real(vec![f64::NAN; 16].into())).collect();
    let train = Dataset::new(data.schema().clone(), cols);
    let plan = TrainingPlan::full(4);
    let (model, report) = FracModel::fit(&train, &plan, &FracConfig::default());

    assert_eq!(report.health.targets_planned, 4);
    assert_eq!(report.health.targets_survived, 0);
    assert_eq!(report.health.n_dropped(), 4);
    assert_eq!(model.n_targets(), 0);
    // 4 planned / 0 survived must not become 4/0 = inf or 0/0 = NaN.
    assert!(
        model.ns_renorm_factor().is_finite(),
        "renorm over zero survivors must stay finite, got {}",
        model.ns_renorm_factor()
    );
    let ns = model.score(&data);
    assert_eq!(ns.len(), 16);
    assert!(ns.iter().all(|s| s.is_finite()), "{ns:?}");
}

#[test]
fn expired_budget_baselines_every_target_fast_and_accounts_for_all() {
    let train = expr_data(30, 12, 6);
    let plan = TrainingPlan::full(12);
    let cfg = FracConfig::default();

    let start = std::time::Instant::now();
    let (model, report) = FracModel::fit_budgeted(
        &train,
        &plan,
        &cfg,
        &RunBudget::with_deadline(Duration::ZERO),
    );
    let elapsed = start.elapsed();

    // Every target survives via its baseline and says why.
    assert_eq!(report.health.targets_planned, 12);
    assert_eq!(report.health.targets_survived, 12);
    assert_eq!(model.n_targets(), 12);
    for t in 0..12 {
        let deadline_degraded = report.health.events_for(t).any(|e| matches!(
            &e.outcome,
            TargetOutcome::Degraded { fallback: FallbackKind::Baseline, detail, .. }
                if detail.contains("wall-clock")
        ));
        assert!(
            deadline_degraded,
            "target {t} must record its deadline baseline: {}",
            report.health.summary()
        );
    }
    let ns = model.score(&train);
    assert!(ns.iter().all(|s| s.is_finite()), "{ns:?}");
    // No real solving happened: an expired budget degrades in the time it
    // takes to fit 12 baselines, not 12 SVR ensembles.
    assert!(
        elapsed < Duration::from_secs(30),
        "expired-budget run took {elapsed:?}"
    );
}

#[test]
fn cancel_mid_api_is_honoured_before_any_solve() {
    let train = expr_data(20, 6, 9);
    let plan = TrainingPlan::full(6);
    let (budget, handle) = RunBudget::unlimited().cancellable();
    handle.cancel();
    let (model, report) =
        FracModel::fit_budgeted(&train, &plan, &FracConfig::default(), &budget);
    assert_eq!(report.health.targets_survived, 6);
    assert!(report.health.n_degraded() >= 6, "{}", report.health.summary());
    assert!(model.score(&train).iter().all(|s| s.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// planned = survived + dropped, exactly, for any fault plan — no
    /// target is ever double-counted or silently lost, and the summary
    /// string agrees with the counters it prints.
    #[test]
    fn run_health_arithmetic_holds_for_arbitrary_fault_plans(
        seed in 0u64..1_000,
        poison in 0.0f64..0.4,
        diverge in prop::collection::vec(0usize..7, 0..3),
        panic_at in prop::collection::vec(0usize..7, 0..3),
    ) {
        quiet_injected_panics();
        let data = expr_data(22, 7, 17);
        let plan = TrainingPlan::full(7);
        let faults = FaultPlan::seeded(seed)
            .with_poison(poison)
            .with_diverge_at(diverge.iter().copied())
            .with_panic_at(panic_at.iter().copied());
        let poisoned = faults.poison(&data);
        let (model, report) =
            FracModel::fit_with_faults(&poisoned, &plan, &FracConfig::default(), &faults);

        let h = &report.health;
        prop_assert_eq!(h.targets_planned, 7);
        prop_assert_eq!(h.targets_survived + h.n_dropped(), h.targets_planned);
        prop_assert_eq!(model.n_targets(), h.targets_survived);
        prop_assert_eq!(model.planned_targets(), h.targets_planned);

        // Every dropped target has a Dropped event naming it; no event
        // names a target outside the plan.
        let dropped: Vec<usize> = (0..7)
            .filter(|&t| h.events_for(t).any(|e| matches!(
                e.outcome, TargetOutcome::Dropped { .. }
            )))
            .collect();
        prop_assert_eq!(dropped.len(), h.n_dropped());
        prop_assert!(h.events.iter().all(|e| e.target < 7));

        // The one-line summary quotes the real counters.
        let s = h.summary();
        prop_assert!(
            s.contains(&format!("{}/{}", h.targets_survived, h.targets_planned)),
            "{}", s
        );

        // Renorm stays finite whatever dropped (zero survivors included).
        prop_assert!(model.ns_renorm_factor().is_finite());
        prop_assert!(model.score(&poisoned).iter().all(|v| v.is_finite()));
    }
}
