//! Out-of-core datasets must be a pure storage change: a model fitted from
//! a memory-mapped FCB file (zero-copy columns into the mapping) must
//! produce NS scores bit-identical (`f64::to_bits`) to one fitted from the
//! same data parsed out of TSV, at any thread count, on both paper model
//! families. The scored test cohort is round-tripped through FCB too, so
//! the mapped path is exercised on both sides of the fit/score divide.

use frac_core::{FracConfig, FracModel, TrainingPlan};
use frac_dataset::fcb::{pack_dataset_chunked, pack_tsv, FcbFile};
use frac_dataset::io::{read_tsv, write_tsv};
use frac_dataset::Dataset;
use frac_synth::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use std::path::PathBuf;

fn expression_surrogate() -> (Dataset, Dataset) {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: 24,
        n_modules: 4,
        relevant_fraction: 0.9,
        anomaly_modules: 2,
        anomaly_shift: 3.0,
        noise_sd: 0.5,
        structure_seed: 77,
        ..ExpressionConfig::default()
    })
    .generate(36, 6, 7);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test = data.select_rows(&(30..42).collect::<Vec<_>>());
    (train, test)
}

fn snp_surrogate() -> (Dataset, Dataset) {
    let gen = SnpGenerator::new(SnpConfig {
        n_snps: 30,
        ld_block_size: 4,
        ld_rho: 0.6,
        n_subpops: 2,
        fst: 0.1,
        n_disease_loci: 4,
        disease_effect: 0.2,
        structure_seed: 11,
        ..SnpConfig::default()
    });
    let groups = [
        CohortGroup { n: 36, mix: SubpopulationMix::uniform(2), is_case: false },
        CohortGroup { n: 6, mix: SubpopulationMix::uniform(2), is_case: true },
    ];
    let (data, _) = gen.generate(&groups, 13);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test = data.select_rows(&(30..42).collect::<Vec<_>>());
    (train, test)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {r} differs ({x:?} vs {y:?})");
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("frac-fcb-equiv-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Round-trip `train`/`test` through FCB (with a small chunk so the
/// chunked encoder crosses boundaries) and check the mapped datasets fit
/// and score bit-identically to the in-memory originals.
fn check_fcb_matches_memory(
    train: &Dataset,
    test: &Dataset,
    config: &FracConfig,
    dir: &PathBuf,
    what: &str,
) {
    let train_fcb = dir.join("train.fcb");
    let test_fcb = dir.join("test.fcb");
    pack_dataset_chunked(train, &train_fcb, 8).unwrap();
    pack_dataset_chunked(test, &test_fcb, 8).unwrap();
    let train_mapped = FcbFile::open(&train_fcb).unwrap().dataset();
    let test_mapped = FcbFile::open(&test_fcb).unwrap().dataset();
    assert_eq!(train_mapped.fingerprint(), train.fingerprint(), "{what}: train content");
    assert_eq!(test_mapped.fingerprint(), test.fingerprint(), "{what}: test content");

    let plan = TrainingPlan::full(train.n_features());
    let (from_memory, _) = FracModel::fit(train, &plan, config);
    let (from_fcb, _) = FracModel::fit(&train_mapped, &plan, config);
    assert_bits_eq(
        &from_fcb.score(&test_mapped),
        &from_memory.score(test),
        &format!("{what}: FCB-fitted vs in-memory NS"),
    );
}

#[test]
fn fcb_scores_identical_on_expression_surrogate() {
    let (train, test) = expression_surrogate();
    let dir = tmp_dir("expr");
    check_fcb_matches_memory(&train, &test, &FracConfig::default(), &dir, "expression");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fcb_scores_identical_on_snp_surrogate() {
    let (train, test) = snp_surrogate();
    let dir = tmp_dir("snp");
    let config = FracConfig::snp();
    check_fcb_matches_memory(&train, &test, &config, &dir, "snp");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fcb_scores_identical_across_thread_counts() {
    let (train, test) = expression_surrogate();
    let dir = tmp_dir("threads");
    pack_dataset_chunked(&train, &dir.join("train.fcb"), 8).unwrap();
    pack_dataset_chunked(&test, &dir.join("test.fcb"), 8).unwrap();
    let config = FracConfig::default();
    let plan = TrainingPlan::full(train.n_features());
    let mut per_thread = Vec::new();
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let ns = pool.install(|| {
            let train_mapped = FcbFile::open(dir.join("train.fcb")).unwrap().dataset();
            let test_mapped = FcbFile::open(dir.join("test.fcb")).unwrap().dataset();
            let (model, _) = FracModel::fit(&train_mapped, &plan, &config);
            model.score(&test_mapped)
        });
        per_thread.push((threads, ns));
    }
    let (_, ref ns1) = per_thread[0];
    for (threads, ns) in &per_thread[1..] {
        assert_bits_eq(ns, ns1, &format!("mapped NS at {threads} threads vs 1"));
    }
    // And the threaded mapped runs agree with the unmapped single-thread fit.
    let (model, _) = FracModel::fit(&train, &plan, &config);
    assert_bits_eq(ns1, &model.score(&test), "mapped vs in-memory NS");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tsv_and_packed_tsv_train_identically() {
    // The full CLI-shaped pipeline: write TSV, pack it with `pack_tsv`
    // (streaming two-pass), and check TSV-parse vs FCB-map equivalence.
    let (train, test) = expression_surrogate();
    let dir = tmp_dir("pack");
    let tsv_path = dir.join("train.tsv");
    let fcb_path = dir.join("train.fcb");
    write_tsv(&train, &tsv_path).unwrap();
    pack_tsv(&tsv_path, &fcb_path, 8).unwrap();
    let from_tsv = read_tsv(&tsv_path).unwrap();
    let from_fcb = FcbFile::open(&fcb_path).unwrap().dataset();
    assert_eq!(from_fcb.fingerprint(), from_tsv.fingerprint());

    let plan = TrainingPlan::full(train.n_features());
    let config = FracConfig::default();
    let (m_tsv, _) = FracModel::fit(&from_tsv, &plan, &config);
    let (m_fcb, _) = FracModel::fit(&from_fcb, &plan, &config);
    assert_bits_eq(&m_fcb.score(&test), &m_tsv.score(&test), "packed-TSV vs parsed-TSV NS");
    std::fs::remove_dir_all(&dir).ok();
}
