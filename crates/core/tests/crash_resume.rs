//! Kill-at-any-byte gate for the write-ahead run journal.
//!
//! The contract under test: a journaled fit that dies at *any* byte of its
//! journal — a clean record boundary, a torn record, even a torn header —
//! resumes to a model whose NS scores are bitwise identical to an
//! uninterrupted run. [`SolverMode::Strict`] is pinned throughout because
//! the bit-identity guarantee is defined against the reference solver
//! (the fast path's warm starts are schedule-dependent by design).

use frac_core::{
    FracConfig, FracModel, JournalError, RunBudget, RunJournal, SolverMode, TrainingPlan,
};
use frac_dataset::Dataset;
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn expr_data(n_rows: usize, n_features: usize, seed: u64) -> Dataset {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 3,
        anomaly_modules: 1,
        structure_seed: seed,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, 0, seed ^ 0x5EED);
    data
}

fn strict_config() -> FracConfig {
    FracConfig::default().with_seed(11).with_solver_mode(SolverMode::Strict)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("frac-crash-resume-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy the first `len` bytes of `full` to `out` — the on-disk state a
/// crash at byte `len` would leave behind.
fn truncate_copy(full: &Path, out: &Path, len: usize) {
    let bytes = std::fs::read(full).unwrap();
    std::fs::write(out, &bytes[..len.min(bytes.len())]).unwrap();
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: NS[{i}] differs ({x} vs {y})"
        );
    }
}

#[test]
fn resume_after_crash_at_every_record_boundary_is_bitwise_identical() {
    let data = expr_data(24, 6, 3);
    let train = data.select_rows(&(0..18).collect::<Vec<_>>());
    let test = data.select_rows(&(18..24).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("boundaries");

    let full_journal = dir.join("full.frj");
    let fit = FracModel::fit_journaled(
        &train,
        &plan,
        &cfg,
        &RunBudget::unlimited(),
        &full_journal,
    )
    .unwrap();
    assert_eq!(fit.resumed, 0);
    assert!(!fit.journal_broken);
    let reference_ns = fit.model.score(&test);

    // Every prefix that a crash could leave at a clean boundary: nothing,
    // just the header, header + k records.
    let scan = RunJournal::scan(&full_journal).unwrap();
    assert_eq!(scan.records.len(), plan.n_targets());
    let mut cut_points = vec![0, scan.header_end as usize];
    cut_points.extend(scan.record_ends.iter().map(|&e| e as usize));

    for (k, &cut) in cut_points.iter().enumerate() {
        let partial = dir.join(format!("cut{k}.frj"));
        truncate_copy(&full_journal, &partial, cut);
        let resumed =
            FracModel::resume(&train, &plan, &cfg, &RunBudget::unlimited(), &partial)
                .unwrap();
        assert_bitwise_eq(
            &reference_ns,
            &resumed.model.score(&test),
            &format!("crash at boundary {k} (byte {cut})"),
        );
        // The resumed journal is complete again: a second resume restores
        // every target without refitting anything.
        let again =
            FracModel::resume(&train, &plan, &cfg, &RunBudget::unlimited(), &partial)
                .unwrap();
        assert_eq!(again.resumed, plan.n_targets());
        assert_bitwise_eq(
            &reference_ns,
            &again.model.score(&test),
            "second resume of a completed journal",
        );
    }
}

#[test]
fn resume_refuses_a_journal_from_a_different_run() {
    let train = expr_data(18, 5, 4);
    let plan = TrainingPlan::full(5);
    let cfg = strict_config();
    let dir = temp_dir("mismatch");
    let journal = dir.join("run.frj");
    FracModel::fit_journaled(&train, &plan, &cfg, &RunBudget::unlimited(), &journal)
        .unwrap();

    // Different seed → different config hash → refuse, don't silently mix.
    let other = cfg.with_seed(99);
    match FracModel::resume(&train, &plan, &other, &RunBudget::unlimited(), &journal) {
        Err(JournalError::Mismatch(detail)) => {
            assert!(detail.contains("config"), "{detail}")
        }
        Err(e) => panic!("expected a header mismatch, got {e}"),
        Ok(_) => panic!("expected a header mismatch, got a model"),
    }

    // Different plan likewise.
    let smaller = TrainingPlan::full_filtered(&[0, 2, 4]);
    match FracModel::resume(&train, &smaller, &cfg, &RunBudget::unlimited(), &journal) {
        Err(JournalError::Mismatch(_)) => {}
        Err(e) => panic!("expected a header mismatch, got {e}"),
        Ok(_) => panic!("expected a header mismatch, got a model"),
    }

    // And a missing journal is an error for `resume` (it would silently be
    // a fresh run otherwise).
    match FracModel::resume(
        &train,
        &plan,
        &cfg,
        &RunBudget::unlimited(),
        dir.join("absent.frj"),
    ) {
        Err(JournalError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
        }
        Err(e) => panic!("expected NotFound, got {e}"),
        Ok(_) => panic!("expected NotFound, got a model"),
    }
}

#[test]
fn a_shard_journal_is_foreign_to_a_full_plan_resume() {
    // A shard journal's header binds the *sub*-plan, so resuming the full
    // plan against it must refuse — naming the plan hash and the planned
    // count, not silently fitting the targets the shard never owned.
    let train = expr_data(18, 5, 4);
    let plan = TrainingPlan::full(5);
    let cfg = strict_config();
    let dir = temp_dir("shard-foreign");
    let base = dir.join("run.frj");
    frac_core::shard::worker_run(
        &train,
        &plan,
        &cfg,
        &RunBudget::unlimited(),
        &base,
        0,
        2,
    )
    .unwrap();
    let shard_journal = frac_core::shard::shard_journal_path(&base, 0, 2);
    match FracModel::resume(&train, &plan, &cfg, &RunBudget::unlimited(), &shard_journal)
    {
        Err(JournalError::Mismatch(detail)) => {
            assert!(detail.contains("training plan hash"), "{detail}");
            assert!(detail.contains("planned target count"), "{detail}");
            assert!(!detail.contains("config hash"), "config matches: {detail}");
        }
        Err(e) => panic!("expected a header mismatch, got {e}"),
        Ok(_) => panic!("expected a header mismatch, got a model"),
    }
}

#[test]
fn deadline_run_journals_only_clean_targets_and_resume_completes_them() {
    let data = expr_data(24, 6, 8);
    let train = data.select_rows(&(0..18).collect::<Vec<_>>());
    let test = data.select_rows(&(18..24).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("deadline");

    let (reference, _) = FracModel::fit(&train, &plan, &cfg);
    let reference_ns = reference.score(&test);

    // An already-expired deadline: every target degrades to its baseline
    // (still scored, still accounted), and *none* of them may be journaled
    // — a checkpoint must never launder a provisional result into a final
    // one.
    let journal = dir.join("run.frj");
    let rushed = FracModel::fit_journaled(
        &train,
        &plan,
        &cfg,
        &RunBudget::with_deadline(Duration::ZERO),
        &journal,
    )
    .unwrap();
    assert_eq!(rushed.report.health.targets_planned, plan.n_targets());
    assert_eq!(rushed.report.health.targets_survived, plan.n_targets());
    assert!(
        rushed.report.health.n_degraded() >= plan.n_targets(),
        "every target must record its baseline substitution: {}",
        rushed.report.health.summary()
    );
    let ns = rushed.model.score(&test);
    assert!(ns.iter().all(|s| s.is_finite()), "{ns:?}");
    assert_eq!(
        RunJournal::scan(&journal).unwrap().records.len(),
        0,
        "budget-degraded targets must not be checkpointed"
    );

    // Resuming with an unlimited budget converges to the full model.
    let finished =
        FracModel::resume(&train, &plan, &cfg, &RunBudget::unlimited(), &journal)
            .unwrap();
    assert!(finished.report.health.is_clean());
    assert_bitwise_eq(
        &reference_ns,
        &finished.model.score(&test),
        "deadline run then unlimited resume",
    );
}

#[test]
fn cancelled_run_resumes_to_the_same_model() {
    let data = expr_data(24, 6, 15);
    let train = data.select_rows(&(0..18).collect::<Vec<_>>());
    let test = data.select_rows(&(18..24).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("cancel");

    let (reference, _) = FracModel::fit(&train, &plan, &cfg);

    // Cancel before the run starts: the most extreme preemption. All
    // targets baseline-degrade, none are journaled, resume finishes them.
    let (budget, handle) = RunBudget::unlimited().cancellable();
    handle.cancel();
    let journal = dir.join("run.frj");
    let cancelled =
        FracModel::fit_journaled(&train, &plan, &cfg, &budget, &journal).unwrap();
    assert_eq!(cancelled.report.health.targets_survived, plan.n_targets());
    assert_eq!(RunJournal::scan(&journal).unwrap().records.len(), 0);

    let finished =
        FracModel::resume(&train, &plan, &cfg, &RunBudget::unlimited(), &journal)
            .unwrap();
    assert_bitwise_eq(
        &reference.score(&test),
        &finished.model.score(&test),
        "cancelled run then resume",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash at a *random* byte — including mid-record and mid-header —
    /// and resume. Torn tails truncate, completed prefixes restore, and
    /// the final NS is bitwise identical to the uninterrupted run.
    #[test]
    fn resume_after_crash_at_any_byte_is_bitwise_identical(cut_frac in 0.0f64..1.0) {
        let data = expr_data(24, 5, 21);
        let train = data.select_rows(&(0..18).collect::<Vec<_>>());
        let test = data.select_rows(&(18..24).collect::<Vec<_>>());
        let plan = TrainingPlan::full(train.n_features());
        let cfg = strict_config();
        let dir = temp_dir("proptest");

        let full_journal = dir.join("full.frj");
        let fit = FracModel::fit_journaled(
            &train, &plan, &cfg, &RunBudget::unlimited(), &full_journal,
        ).unwrap();
        let reference_ns = fit.model.score(&test);

        let len = std::fs::metadata(&full_journal).unwrap().len() as usize;
        let cut = ((len as f64) * cut_frac) as usize;
        let partial = dir.join(format!("cut-{cut}.frj"));
        truncate_copy(&full_journal, &partial, cut);

        let resumed = FracModel::resume(
            &train, &plan, &cfg, &RunBudget::unlimited(), &partial,
        ).unwrap();
        let ns = resumed.model.score(&test);
        for (x, y) in reference_ns.iter().zip(&ns) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "crash at byte {}", cut);
        }
    }
}
