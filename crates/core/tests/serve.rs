//! End-to-end tests of the scoring daemon (`frac_core::serve`):
//!
//! * **Bit-identity.** Scores answered over the wire — single records,
//!   bursts that batch, TCP or pipe — reparse to exactly the bits
//!   [`FracModel::score`] produces on the same rows. Serving is a
//!   deployment change, never a numeric one.
//! * **Fault tolerance.** Malformed lines are quarantined per line with the
//!   offending line number while the connection and daemon survive; a full
//!   admission queue sheds with `busy`; requests that out-wait their
//!   deadline in the queue get a timeout error, not a late answer.
//! * **Hot reload.** `cmd reload` swaps a validated model atomically; a
//!   corrupt or schema-incompatible candidate is rolled back and the old
//!   model keeps answering, bit-identically.
//! * **Accounting.** The exit summary's counters add up: every admitted
//!   request is scored or timed out, everything else is shed/quarantined.

use frac_core::serve::{ServeConfig, ServeSummary, Server};
use frac_core::{FracConfig, FracModel, TrainingPlan};
use frac_dataset::{Dataset, Schema, Value};
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Everything the tests share: a trained model saved to disk, its schema,
/// reference scores, and deliberately bad reload candidates. Trained once.
struct Fixture {
    model_path: PathBuf,
    other_path: PathBuf,
    corrupt_path: PathBuf,
    incompatible_path: PathBuf,
    schema: Schema,
    test: Dataset,
    /// `score()` of the model at `model_path`, loaded back from disk.
    expected: Vec<f64>,
    /// `score()` of the model at `other_path` (valid reload target).
    expected_other: Vec<f64>,
}

fn surrogate(structure_seed: u64) -> (Dataset, Dataset) {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: 12,
        n_modules: 3,
        relevant_fraction: 0.9,
        anomaly_modules: 1,
        anomaly_shift: 3.0,
        noise_sd: 0.5,
        structure_seed,
        ..ExpressionConfig::default()
    })
    .generate(24, 4, 7);
    let train = data.select_rows(&(0..20).collect::<Vec<_>>());
    let test = data.select_rows(&(20..28).collect::<Vec<_>>());
    (train, test)
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("frac-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = FracConfig::expression();

        let (train, test) = surrogate(77);
        let plan = TrainingPlan::full(train.n_features());
        let (model, _) = FracModel::fit(&train, &plan, &config);
        let model_path = dir.join("model.frac");
        model.save(&model_path).unwrap();

        // A second valid model on the same schema (different structure of
        // the same generator family would change the schema names, so just
        // refit with a different seed via row selection).
        let train2 = train.select_rows(&(0..18).collect::<Vec<_>>());
        let (other, _) = FracModel::fit(&train2, &plan, &config);
        let other_path = dir.join("other.frac");
        other.save(&other_path).unwrap();

        // Corrupt candidate: the model file cut mid-body (fails the CRC
        // trailer check on load).
        let text = std::fs::read_to_string(&model_path).unwrap();
        let corrupt_path = dir.join("corrupt.frac");
        std::fs::write(&corrupt_path, &text[..text.len() / 2]).unwrap();

        // Incompatible candidate: a valid model for a *wider* schema, whose
        // targets and design inputs run past the serving schema — it must
        // fail serve validation, not crash the encode pool. (A model for a
        // *narrower* schema is genuinely servable — it scores the features
        // it knows — so width-8 would not be a negative case.)
        let (wide, _) = ExpressionGenerator::new(ExpressionConfig {
            n_features: 16,
            n_modules: 3,
            relevant_fraction: 0.9,
            anomaly_modules: 1,
            anomaly_shift: 3.0,
            noise_sd: 0.5,
            structure_seed: 5,
            ..ExpressionConfig::default()
        })
        .generate(20, 2, 7);
        let wide_train = wide.select_rows(&(0..16).collect::<Vec<_>>());
        let wide_plan = TrainingPlan::full(wide_train.n_features());
        let (wide_model, _) = FracModel::fit(&wide_train, &wide_plan, &config);
        let incompatible_path = dir.join("incompatible.frac");
        wide_model.save(&incompatible_path).unwrap();

        let reloaded = FracModel::load(&model_path).unwrap();
        let expected = reloaded.score(&test);
        let expected_other = FracModel::load(&other_path).unwrap().score(&test);
        Fixture {
            model_path,
            other_path,
            corrupt_path,
            incompatible_path,
            schema: train.schema().clone(),
            test,
            expected,
            expected_other,
        }
    })
}

/// Render row `r` of `ds` as a serve TSV request line. Reals use `{}`
/// (shortest round-trip), so the daemon parses back the exact bits.
fn tsv_line(ds: &Dataset, r: usize) -> String {
    ds.row(r)
        .into_iter()
        .map(|v| match v {
            Value::Real(x) => format!("{x}"),
            Value::Categorical(c) => format!("{c}"),
            Value::Missing => "?".into(),
        })
        .collect::<Vec<_>>()
        .join("\t")
}

fn start_server(cfg: ServeConfig) -> (SocketAddr, thread::JoinHandle<ServeSummary>) {
    let fix = fixture();
    let model = FracModel::load(&fix.model_path).unwrap();
    let server =
        Server::new(model, fix.model_path.clone(), fix.schema.clone(), cfg).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let join = thread::spawn(move || server.serve_listener(listener).unwrap());
    (addr, join)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("reply within the read timeout");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Read `n` replies and index them by their `seq` field. Replies to a
    /// burst interleave (errors are immediate, scores batched), so tests
    /// match by seq instead of arrival order.
    fn recv_by_seq(&mut self, n: usize) -> HashMap<u64, String> {
        let mut replies = HashMap::new();
        for _ in 0..n {
            let line = self.recv();
            let seq: u64 = line
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("reply without a seq: {line}"));
            assert!(replies.insert(seq, line).is_none(), "duplicate reply for seq {seq}");
        }
        replies
    }
}

/// Parse `ns <seq> <score>` and return the score's exact bits.
fn ns_bits(reply: &str) -> u64 {
    let mut parts = reply.split_whitespace();
    assert_eq!(parts.next(), Some("ns"), "expected an ns reply, got: {reply}");
    let _seq = parts.next().unwrap();
    parts.next().unwrap().parse::<f64>().unwrap().to_bits()
}

#[test]
fn tcp_scores_are_bit_identical_to_direct_scoring() {
    let fix = fixture();
    let (addr, join) = start_server(ServeConfig::default());

    // One record at a time, interleaved with pings.
    let mut c = Client::connect(addr);
    let mut seq = 0u64;
    for (r, want) in fix.expected.iter().enumerate() {
        c.send(&tsv_line(&fix.test, r));
        seq += 1;
        let reply = c.recv();
        assert!(reply.starts_with(&format!("ns {seq} ")), "row {r}: {reply}");
        assert_eq!(ns_bits(&reply), want.to_bits(), "row {r} diverged from frac score");
        c.send("cmd ping");
        seq += 1;
        assert_eq!(c.recv(), format!("ok {seq} pong"));
    }

    // The same rows as one burst on a fresh connection (exercises the
    // batched path: one encode pool, many replies).
    let mut burst = Client::connect(addr);
    for r in 0..fix.test.n_rows() {
        burst.send(&tsv_line(&fix.test, r));
    }
    let replies = burst.recv_by_seq(fix.test.n_rows());
    for (r, want) in fix.expected.iter().enumerate() {
        let reply = &replies[&(r as u64 + 1)];
        assert_eq!(ns_bits(reply), want.to_bits(), "burst row {r} diverged");
    }

    burst.send("cmd stop");
    let stop = burst.recv();
    assert!(stop.contains("draining"), "{stop}");
    let summary = join.join().unwrap();
    assert_eq!(summary.counts.scored, 2 * fix.expected.len() as u64);
    assert_eq!(summary.counts.scored, summary.counts.received);
    assert_eq!(summary.counts.quarantined, 0);
    assert!(summary.p99_us >= summary.p50_us);
}

#[test]
fn malformed_lines_are_quarantined_and_everything_survives() {
    let fix = fixture();
    let cfg = ServeConfig { max_line_bytes: 256, ..ServeConfig::default() };
    let (addr, join) = start_server(cfg);
    let mut c = Client::connect(addr);

    // seq 1: binary soup (also invalid UTF-8).
    c.writer.write_all(&[0xff, 0xfe, 0x00, 0x01, b'\n']).unwrap();
    // seq 2: wrong column count.
    c.send("1.0\t2.0");
    // seq 3: unparsable real.
    let mut bad_cell = tsv_line(&fix.test, 0);
    bad_cell.replace_range(..bad_cell.find('\t').unwrap(), "not-a-number");
    c.send(&bad_cell);
    // seq 4: JSON with an unknown key.
    c.send("{\"no_such_gene\": 1.0}");
    // seq 5: oversized line.
    c.send(&"9\t".repeat(400));
    // seq 6: a well-formed record — must still score exactly.
    c.send(&tsv_line(&fix.test, 0));

    let replies = c.recv_by_seq(6);
    assert!(replies[&1].starts_with("err 1 "), "{}", replies[&1]);
    assert!(replies[&1].contains("UTF-8"), "{}", replies[&1]);
    assert!(replies[&2].starts_with("err 2 "), "{}", replies[&2]);
    assert!(replies[&3].starts_with("err 3 "), "{}", replies[&3]);
    assert!(
        replies[&3].contains("line 3"),
        "quarantine reply must name the line: {}",
        replies[&3]
    );
    assert!(replies[&4].starts_with("err 4 "), "{}", replies[&4]);
    assert!(replies[&4].contains("no_such_gene"), "{}", replies[&4]);
    assert!(replies[&5].starts_with("err 5 "), "{}", replies[&5]);
    assert!(replies[&5].contains("256"), "{}", replies[&5]);
    assert_eq!(ns_bits(&replies[&6]), fix.expected[0].to_bits());

    // Header and comment lines pass silently, so `cat train.tsv` works.
    let header = fix
        .schema
        .iter()
        .map(|f| format!("{}:{}", f.name, f.kind))
        .collect::<Vec<_>>()
        .join("\t");
    c.send(&header);
    c.send("# a comment");
    c.send("cmd ping");
    assert_eq!(c.recv(), "ok 9 pong");

    c.send("cmd stop");
    c.recv();
    let summary = join.join().unwrap();
    assert_eq!(summary.counts.quarantined, 5);
    assert_eq!(summary.counts.scored, 1);
}

#[test]
fn full_queue_sheds_with_busy_instead_of_buffering() {
    let fix = fixture();
    let cfg = ServeConfig {
        batch_max: 1,
        queue_cap: 1,
        score_delay: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    };
    let (addr, join) = start_server(cfg);
    let mut c = Client::connect(addr);
    let n = 8;
    for _ in 0..n {
        c.send(&tsv_line(&fix.test, 0));
    }
    let replies = c.recv_by_seq(n);
    let busy = replies.values().filter(|r| r.starts_with("busy ")).count();
    let scored = replies.values().filter(|r| r.starts_with("ns ")).count();
    assert!(busy >= 1, "a 1-deep queue under an {n}-record burst must shed: {replies:?}");
    assert!(scored >= 1, "admitted requests must still be answered: {replies:?}");
    for reply in replies.values().filter(|r| r.starts_with("ns ")) {
        assert_eq!(ns_bits(reply), fix.expected[0].to_bits(), "shedding altered scores");
    }
    // The daemon is still healthy after shedding.
    c.send("cmd ping");
    assert_eq!(c.recv(), format!("ok {} pong", n + 1));
    c.send("cmd stop");
    c.recv();
    let summary = join.join().unwrap();
    assert_eq!(summary.counts.shed, busy as u64);
    assert_eq!(summary.counts.received, n as u64 - busy as u64);
}

#[test]
fn requests_that_outwait_their_deadline_get_a_timeout_error() {
    let fix = fixture();
    let cfg = ServeConfig {
        batch_max: 1,
        score_delay: Some(Duration::from_millis(250)),
        request_timeout: Duration::from_millis(60),
        ..ServeConfig::default()
    };
    let (addr, join) = start_server(cfg);
    let mut c = Client::connect(addr);
    let n = 3;
    for _ in 0..n {
        c.send(&tsv_line(&fix.test, 0));
    }
    let replies = c.recv_by_seq(n);
    let timed_out = replies
        .values()
        .filter(|r| r.starts_with("err ") && r.contains("timed out"))
        .count();
    assert!(
        timed_out >= 1,
        "with batch_max=1 and a 250ms scoring stall, a 60ms deadline must \
         expire in the queue: {replies:?}"
    );
    c.send("cmd ping");
    assert_eq!(c.recv(), format!("ok {} pong", n + 1));
    c.send("cmd stop");
    c.recv();
    let summary = join.join().unwrap();
    assert_eq!(summary.counts.timed_out, timed_out as u64);
    assert_eq!(summary.counts.scored + summary.counts.timed_out, summary.counts.received);
}

#[test]
fn reload_validates_swaps_and_rolls_back() {
    let fix = fixture();
    let (addr, join) = start_server(ServeConfig::default());
    let mut c = Client::connect(addr);

    // Baseline: serving the original model.
    c.send(&tsv_line(&fix.test, 0));
    assert_eq!(ns_bits(&c.recv()), fix.expected[0].to_bits());

    // Reload from the remembered path: still the same model.
    c.send("cmd reload");
    let reply = c.recv();
    assert!(reply.starts_with("ok 2 reloaded"), "{reply}");
    c.send(&tsv_line(&fix.test, 1));
    assert_eq!(ns_bits(&c.recv()), fix.expected[1].to_bits());

    // A truncated candidate fails the CRC gate and rolls back.
    c.send(&format!("cmd reload {}", fix.corrupt_path.display()));
    let reply = c.recv();
    assert!(reply.starts_with("err 4 reload failed"), "{reply}");
    assert!(reply.contains("keeping the serving model"), "{reply}");
    c.send(&tsv_line(&fix.test, 2));
    assert_eq!(
        ns_bits(&c.recv()),
        fix.expected[2].to_bits(),
        "rollback must keep serving the old model bit-identically"
    );

    // A valid model for the wrong schema fails compatibility validation.
    c.send(&format!("cmd reload {}", fix.incompatible_path.display()));
    let reply = c.recv();
    assert!(reply.starts_with("err 6 reload failed"), "{reply}");
    c.send(&tsv_line(&fix.test, 3));
    assert_eq!(ns_bits(&c.recv()), fix.expected[3].to_bits());

    // A valid compatible candidate swaps in atomically.
    c.send(&format!("cmd reload {}", fix.other_path.display()));
    let reply = c.recv();
    assert!(reply.starts_with("ok 8 reloaded"), "{reply}");
    c.send(&tsv_line(&fix.test, 0));
    assert_eq!(
        ns_bits(&c.recv()),
        fix.expected_other[0].to_bits(),
        "after a successful reload, scores must come from the new model"
    );

    c.send("cmd stop");
    c.recv();
    let summary = join.join().unwrap();
    assert_eq!(summary.counts.reloads, 2);
    assert_eq!(summary.counts.reload_failures, 2);
}

#[test]
fn handle_reload_runs_off_path_and_is_counted() {
    let fix = fixture();
    let model = FracModel::load(&fix.model_path).unwrap();
    let server = Server::new(
        model,
        fix.model_path.clone(),
        fix.schema.clone(),
        ServeConfig::default(),
    )
    .unwrap();
    let handle = server.handle();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let join = thread::spawn(move || server.serve_listener(listener).unwrap());

    // The SIGHUP path: flag → accept loop → validated background reload.
    handle.request_reload();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.counts().reloads == 0 {
        assert!(std::time::Instant::now() < deadline, "reload never completed");
        thread::sleep(Duration::from_millis(10));
    }

    // Scoring still exact after the background swap (same file).
    let mut c = Client::connect(addr);
    c.send(&tsv_line(&fix.test, 0));
    assert_eq!(ns_bits(&c.recv()), fix.expected[0].to_bits());

    // The SIGTERM path: drain and exit without `cmd stop`.
    handle.request_shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.counts.reloads, 1);
    assert_eq!(summary.counts.scored, 1);
}

/// A `Write` the test can inspect after `serve_pipe` returns.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn pipe_mode_scores_batches_and_drains_on_eof() {
    let fix = fixture();
    let model = FracModel::load(&fix.model_path).unwrap();
    let server = Server::new(
        model,
        fix.model_path.clone(),
        fix.schema.clone(),
        ServeConfig::default(),
    )
    .unwrap();

    // A whole session piped in at once: header, comment, all test rows.
    let mut input = String::new();
    input.push_str(
        &fix.schema
            .iter()
            .map(|f| format!("{}:{}", f.name, f.kind))
            .collect::<Vec<_>>()
            .join("\t"),
    );
    input.push('\n');
    input.push_str("# piped from a file\n");
    for r in 0..fix.test.n_rows() {
        input.push_str(&tsv_line(&fix.test, r));
        input.push('\n');
    }
    let out = SharedBuf::default();
    let summary =
        server.serve_pipe(std::io::Cursor::new(input.into_bytes()), out.clone()).unwrap();

    assert_eq!(summary.counts.scored, fix.test.n_rows() as u64);
    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let mut got: Vec<(u64, u64)> = text
        .lines()
        .map(|l| {
            let mut parts = l.split_whitespace();
            assert_eq!(parts.next(), Some("ns"), "unexpected pipe reply: {l}");
            let seq: u64 = parts.next().unwrap().parse().unwrap();
            (seq, parts.next().unwrap().parse::<f64>().unwrap().to_bits())
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got.len(), fix.expected.len());
    for (i, (seq, bits)) in got.iter().enumerate() {
        // Header and comment occupy seq 1–2; records start at 3.
        assert_eq!(*seq, i as u64 + 3);
        assert_eq!(*bits, fix.expected[i].to_bits(), "pipe row {i} diverged");
    }
}
