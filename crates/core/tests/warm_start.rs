//! Warm-start behavior: refitting the same per-feature problems through a
//! [`DualCache`] (as ensemble members do) must do less coordinate-descent
//! work than the first fit, without changing what the solves converge to.
//!
//! Note the *first* fit is not fully cold: the CV driver already threads
//! duals from fold to fold within each per-feature problem, so most of the
//! warm-start win is banked on the first pass. The cache measures the
//! *marginal* cross-fit savings — fold 1 and the not-yet-visited rows of
//! later folds start from the previous fit's solution instead of zero — so
//! the expected reduction is real but small, and we gate on coordinate
//! visits (the work metric shrinking actually controls).
//!
//! This file holds exactly one test: it reads the process-wide solver
//! counters, which concurrent tests in the same binary would perturb.

use frac_core::{DualCache, FracConfig, FracModel, RealModel, TrainingPlan};
use frac_learn::solver::stats;
use frac_learn::SvrConfig;
use frac_synth::{ExpressionConfig, ExpressionGenerator};

#[test]
fn cached_refit_converges_in_fewer_epochs() {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: 16,
        n_modules: 4,
        relevant_fraction: 0.9,
        anomaly_modules: 1,
        anomaly_shift: 3.0,
        noise_sd: 0.5,
        structure_seed: 5,
        ..ExpressionConfig::default()
    })
    .generate(30, 0, 3);
    let train = data.select_rows(&(0..24).collect::<Vec<_>>());
    let test = data.select_rows(&(24..30).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    // Moderate stopping tolerance with ample epoch headroom: solves actually
    // reach the projected-gradient criterion (a capped solve sweeps the same
    // max_epochs warm or cold, masking any savings), and both fits land near
    // enough to the same optimum for the score check below.
    let config = FracConfig {
        real_model: RealModel::Svr(SvrConfig {
            tolerance: 1e-3,
            max_epochs: 10_000,
            ..SvrConfig::default()
        }),
        ..FracConfig::default()
    };

    let mut cache = DualCache::default();
    stats::reset();
    let (cold_model, _) = FracModel::fit_cached(&train, &plan, &config, &mut cache);
    let cold = stats::snapshot();
    assert!(!cache.is_empty(), "SVR fits must populate the dual cache");
    assert_eq!(cache.len(), train.n_features(), "one dual vector per target");
    assert!(cold.solves > 0 && cold.epochs > 0);

    stats::reset();
    let (warm_model, _) = FracModel::fit_cached(&train, &plan, &config, &mut cache);
    let warm = stats::snapshot();

    assert_eq!(cold.solves, warm.solves, "same number of solves either way");
    assert!(
        warm.visits < cold.visits,
        "warm-started refit should visit fewer coordinates ({} warm vs {} cold)",
        warm.visits,
        cold.visits
    );
    assert!(
        warm.epochs <= cold.epochs,
        "warm-started refit should not sweep more epochs ({} warm vs {} cold)",
        warm.epochs,
        cold.epochs
    );

    // The warm refit converges to the same solutions to solver tolerance.
    let cold_ns = cold_model.score(&test);
    let warm_ns = warm_model.score(&test);
    for (r, (c, w)) in cold_ns.iter().zip(&warm_ns).enumerate() {
        assert!(
            (c - w).abs() <= 1e-2 * (1.0 + c.abs()),
            "row {r}: warm refit diverged ({c} cold vs {w} warm)"
        );
    }
}
