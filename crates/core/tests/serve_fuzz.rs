//! Property-based fuzzing of the serve wire protocol: the daemon must
//! survive arbitrary byte soup, structured garbage, oversized lines, and
//! mid-record disconnects — and after every abuse, a well-formed request on
//! the same daemon must still score **bit-identically** to
//! [`FracModel::score`]. One daemon is shared by every case, so each case
//! also fuzzes the state the previous cases left behind.

use frac_core::serve::{ServeConfig, Server};
use frac_core::{FracConfig, FracModel, TrainingPlan};
use frac_dataset::{Dataset, Value};
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// Cap on input lines for the fuzz daemon — small enough that the oversize
/// path gets exercised, large enough that well-formed records never hit it.
const FUZZ_LINE_CAP: usize = 4096;

struct Daemon {
    addr: SocketAddr,
    /// A well-formed TSV record and the exact score bits it must produce.
    probe_line: String,
    probe_bits: u64,
}

fn daemon() -> &'static Daemon {
    static D: OnceLock<Daemon> = OnceLock::new();
    D.get_or_init(|| {
        let (data, _) = ExpressionGenerator::new(ExpressionConfig {
            n_features: 10,
            n_modules: 2,
            relevant_fraction: 0.9,
            anomaly_modules: 1,
            anomaly_shift: 3.0,
            noise_sd: 0.5,
            structure_seed: 31,
            ..ExpressionConfig::default()
        })
        .generate(20, 2, 9);
        let train = data.select_rows(&(0..16).collect::<Vec<_>>());
        let test = data.select_rows(&(16..22).collect::<Vec<_>>());
        let plan = TrainingPlan::full(train.n_features());
        let (model, _) = FracModel::fit(&train, &plan, &FracConfig::expression());
        let probe_bits = model.score(&test)[0].to_bits();
        let probe_line = tsv_line(&test, 0);

        let dir = std::env::temp_dir().join(format!("frac-serve-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.frac");
        model.save(&model_path).unwrap();

        let cfg = ServeConfig { max_line_bytes: FUZZ_LINE_CAP, ..ServeConfig::default() };
        let server = Server::new(model, model_path, train.schema().clone(), cfg).unwrap();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The daemon lives (and must stay healthy) for the whole test
        // process; the thread is deliberately not joined.
        std::thread::spawn(move || server.serve_listener(listener));
        Daemon { addr, probe_line, probe_bits }
    })
}

fn tsv_line(ds: &Dataset, r: usize) -> String {
    ds.row(r)
        .into_iter()
        .map(|v| match v {
            Value::Real(x) => format!("{x}"),
            Value::Categorical(c) => format!("{c}"),
            Value::Missing => "?".into(),
        })
        .collect::<Vec<_>>()
        .join("\t")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
}

/// Send `abuse` (raw, possibly unterminated), terminate the line, then send
/// the probe record and assert its reply carries the exact expected bits.
/// `abuse` may provoke any number of `err` replies; the probe's reply is
/// identified by its seq (1 line per `\n`, +1 for the terminator we add).
fn abuse_then_probe(abuse: &[u8]) {
    let d = daemon();
    let mut stream = connect(d.addr);
    stream.write_all(abuse).unwrap();
    stream.write_all(b"\n").unwrap();
    let newlines = abuse.iter().filter(|&&b| b == b'\n').count() as u64;
    let probe_seq = newlines + 2;
    stream.write_all(d.probe_line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let want = format!("ns {probe_seq} ");
    // Every reply before the probe's is for abuse lines; bounded by the
    // number of lines sent, so this cannot loop forever.
    for _ in 0..probe_seq + 1 {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("daemon must keep answering");
        assert!(n > 0, "daemon closed the connection after abuse {abuse:?}");
        if let Some(score) = line.trim_end().strip_prefix(&want) {
            assert_eq!(
                score.parse::<f64>().unwrap().to_bits(),
                d.probe_bits,
                "score after abuse diverged from frac score"
            );
            return;
        }
    }
    panic!("probe record (seq {probe_seq}) was never answered");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary bytes — control characters, invalid UTF-8, embedded
    /// newlines, stray protocol keywords — must never take the daemon down
    /// or perturb subsequent scores.
    #[test]
    fn byte_soup_is_survivable(
        soup in prop::collection::vec(0u32..256, 0..400),
    ) {
        let bytes: Vec<u8> = soup.into_iter().map(|b| b as u8).collect();
        abuse_then_probe(&bytes);
    }

    /// Structured garbage: near-miss TSV and JSON records (truncated cells,
    /// swapped separators, braces) built from printable fragments.
    #[test]
    fn structured_garbage_is_survivable(
        picks in prop::collection::vec(0u32..8, 1..20),
    ) {
        const FRAGMENTS: [&str; 8] =
            ["1.5", "?", "\t", "{", "}", "\"g0\":", "not-a-number", "cmd "];
        let garbage: String =
            picks.iter().map(|&i| FRAGMENTS[i as usize]).collect();
        abuse_then_probe(garbage.as_bytes());
    }

    /// A client that vanishes mid-record (no trailing newline) must not
    /// wedge or kill the daemon; the next connection scores exactly.
    #[test]
    fn mid_record_disconnect_is_survivable(
        cut in 1usize..20,
    ) {
        let d = daemon();
        let partial = &d.probe_line.as_bytes()[..cut.min(d.probe_line.len() - 1)];
        {
            let mut stream = connect(d.addr);
            stream.write_all(partial).unwrap();
            // Dropped here: mid-record disconnect.
        }
        abuse_then_probe(b"");
    }
}

#[test]
fn oversized_lines_are_rejected_without_memory_growth() {
    // Lines past the cap draw an `err` naming the limit; the bytes are
    // discarded as they stream in, so even a line far larger than the cap
    // cannot balloon the daemon.
    for size in [FUZZ_LINE_CAP + 1, 4 * FUZZ_LINE_CAP, 64 * FUZZ_LINE_CAP] {
        let d = daemon();
        let mut stream = connect(d.addr);
        stream.write_all(&vec![b'7'; size]).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("err 1 "), "{line}");
        assert!(line.contains(&FUZZ_LINE_CAP.to_string()), "{line}");
        drop(stream);
    }
    abuse_then_probe(b"");
}
