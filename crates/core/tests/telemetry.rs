//! End-to-end telemetry gate.
//!
//! The contract under test: a [`TelemetrySession`] around a full fit —
//! including fits degraded by arbitrary injected faults — always drains a
//! *well-nested* span tree (every parent resolves, children stay inside
//! their parent's extent and thread, sibling durations sum to at most the
//! parent's), and recording never perturbs the model: scores are
//! bit-identical with and without a live session.

use frac_core::fault::INJECTED_PANIC;
use frac_core::telemetry::{Stage, TelemetryReport, TelemetrySession};
use frac_core::{FaultPlan, FracConfig, FracModel, TrainingPlan};
use frac_dataset::Dataset;
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, Once};

/// One live session per process: tests that start a session serialize on
/// this lock (a poisoned lock just means a previous test failed — the
/// session it held is already torn down by `Drop`).
static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn session_lock() -> std::sync::MutexGuard<'static, ()> {
    SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Suppress the default "thread panicked" stderr spew for *injected* panics
/// only; real panics still report normally.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(INJECTED_PANIC))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn expr_data(n_rows: usize, n_features: usize, seed: u64) -> Dataset {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 3,
        anomaly_modules: 1,
        structure_seed: seed,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, 0, seed ^ 0x5EED);
    data
}

/// Assert the span tree is well nested. Instant→ns truncation can make a
/// child's computed end overshoot its parent's by a couple of nanoseconds,
/// so containment and sibling sums get a tiny per-span slack.
fn assert_well_nested(report: &TelemetryReport) {
    const SLACK_NS: u64 = 16;
    let by_id: HashMap<u64, &frac_core::telemetry::SpanRecord> =
        report.spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), report.spans.len(), "span ids must be unique");
    let mut child_sum: HashMap<u64, u64> = HashMap::new();
    for s in &report.spans {
        if s.parent == 0 {
            continue;
        }
        let p = by_id
            .get(&s.parent)
            .unwrap_or_else(|| panic!("span {} has unresolved parent {}", s.id, s.parent));
        assert_eq!(s.thread, p.thread, "a child span lives on its parent's thread");
        assert!(
            s.start_ns >= p.start_ns,
            "child {} starts ({}) before parent {} ({})",
            s.id,
            s.start_ns,
            p.id,
            p.start_ns
        );
        assert!(
            s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns + SLACK_NS,
            "child {} ends ({}) after parent {} ({})",
            s.id,
            s.start_ns + s.dur_ns,
            p.id,
            p.start_ns + p.dur_ns
        );
        *child_sum.entry(s.parent).or_insert(0) += s.dur_ns;
    }
    for (parent, sum) in child_sum {
        let p = by_id[&parent];
        let n_children = report.spans.iter().filter(|s| s.parent == parent).count() as u64;
        assert!(
            sum <= p.dur_ns + SLACK_NS * n_children,
            "children of span {parent} total {sum} ns > parent's {} ns",
            p.dur_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn span_trees_stay_well_nested_under_arbitrary_fault_plans(
        seed in 0u64..1_000,
        poison in 0.0f64..0.35,
        diverge in prop::collection::vec(0usize..8, 0..3),
        panic_at in prop::collection::vec(0usize..8, 0..3),
    ) {
        quiet_injected_panics();
        let _serial = session_lock();
        let data = expr_data(24, 8, 11);
        let plan = TrainingPlan::full(8);
        let faults = FaultPlan::seeded(seed)
            .with_poison(poison)
            .with_diverge_at(diverge.iter().copied())
            .with_panic_at(panic_at.iter().copied());
        let poisoned = faults.poison(&data);

        let session = TelemetrySession::start();
        prop_assert!(session.is_some(), "no other session may be live");
        let (model, _) =
            FracModel::fit_with_faults(&poisoned, &plan, &FracConfig::default(), &faults);
        let ns = model.score(&poisoned);
        let report = session.map(TelemetrySession::finish).unwrap_or_default();

        prop_assert!(ns.iter().all(|s| s.is_finite()));
        assert_well_nested(&report);
        // Fits degrade but the trace still shows real work happened…
        prop_assert!(!report.spans.is_empty());
        // …and round-trips through the on-disk format intact.
        prop_assert_eq!(
            TelemetryReport::parse_tsv(&report.write_tsv()).map_err(|e| e.to_string()),
            Ok(report)
        );
    }
}

#[test]
fn recording_never_perturbs_the_model() {
    let _serial = session_lock();
    let data = expr_data(30, 10, 7);
    let train = data.select_rows(&(0..22).collect::<Vec<_>>());
    let test = data.select_rows(&(22..30).collect::<Vec<_>>());
    let plan = TrainingPlan::full(train.n_features());
    let cfg = FracConfig::default();

    let (plain, plain_report) = FracModel::fit(&train, &plan, &cfg);
    let ns_plain = plain.score(&test);

    let session = TelemetrySession::start().expect("no other session is live");
    let (traced, traced_report) = FracModel::fit(&train, &plan, &cfg);
    let ns_traced = traced.score(&test);
    let trace = session.finish();

    // Bit-identical outputs: telemetry observes the run, never steers it.
    for (a, b) in ns_plain.iter().zip(&ns_traced) {
        assert_eq!(a.to_bits(), b.to_bits(), "a live session changed a score");
    }
    assert_eq!(plain_report.flops, traced_report.flops);
    assert_eq!(plain_report.models_trained, traced_report.models_trained);

    // The trace covers the whole taxonomy a clean fit + score exercises.
    for stage in [Stage::Encode, Stage::CvFold, Stage::FinalTrain, Stage::ErrorModel, Stage::Score]
    {
        assert!(
            trace.spans.iter().any(|s| s.stage == stage),
            "no {stage} span in the trace"
        );
    }
    // Every planned target shows up in the per-target attribution.
    assert_eq!(trace.target_totals().len(), plan.n_targets());
    assert_well_nested(&trace);
}
