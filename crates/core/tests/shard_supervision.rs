//! Process-level fault harness for sharded multi-process training.
//!
//! The contract under test: a `--shards N` run whose workers die — crash-loop
//! at startup, SIGKILL-style aborts at record boundaries, torn shard-journal
//! tails — still completes with a merged model whose NS scores are bitwise
//! identical to an uninterrupted single-process run, with no target lost or
//! double-counted. [`SolverMode::Strict`] is pinned because bit-identity is
//! defined against the reference solver.
//!
//! Real worker processes are spawned by re-executing this test binary with
//! `--exact shard_worker_entry`; the worker rebuilds its dataset from
//! environment parameters, runs its shard, and exits. Injected process
//! faults ride the same environment protocol the CLI supervisor uses
//! ([`frac_core::fault::FaultPlan::worker_env`]).

use frac_core::fault::{CRASHLOOP_EXIT_CODE, ENV_SHARD_ABORT_AFTER};
use frac_core::shard::{
    apply_worker_faults_from_env, resume_shards, shard_journal_path, train_sharded,
    worker_run,
};
use frac_core::{
    FaultPlan, FracConfig, FracModel, JournalError, RunBudget, RunJournal, ShardError,
    ShardEvent, ShardOptions, SolverMode, TrainingPlan,
};
use frac_dataset::Dataset;
use frac_synth::{ExpressionConfig, ExpressionGenerator};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Worker-mode trigger: when set, [`shard_worker_entry`] is a worker
/// process, not a test.
const ENV_WORKER: &str = "FRAC_SHARD_TEST_WORKER";
/// Base journal path for the worker's shard set.
const ENV_BASE: &str = "FRAC_SHARD_TEST_BASE";
/// `K/N`: which shard of how many this worker owns.
const ENV_SHARD: &str = "FRAC_SHARD_TEST_SHARD";
/// `rows:features:seed` of the cohort the worker must rebuild.
const ENV_DATA: &str = "FRAC_SHARD_TEST_DATA";

fn expr_data(n_rows: usize, n_features: usize, seed: u64) -> Dataset {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features,
        n_modules: 3,
        anomaly_modules: 1,
        structure_seed: seed,
        ..ExpressionConfig::default()
    })
    .generate(n_rows, 0, seed ^ 0x5EED);
    data
}

/// Deterministic (train, test) split: the last 6 rows are the test set.
/// Workers rebuild exactly this from the `rows:features:seed` triple, so
/// every process fits the same bits.
fn cohort(rows: usize, features: usize, seed: u64) -> (Dataset, Dataset) {
    let data = expr_data(rows, features, seed);
    let train = data.select_rows(&(0..rows - 6).collect::<Vec<_>>());
    let test = data.select_rows(&(rows - 6..rows).collect::<Vec<_>>());
    (train, test)
}

fn strict_config() -> FracConfig {
    FracConfig::default().with_seed(11).with_solver_mode(SolverMode::Strict)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("frac-shard-supervision-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: NS[{i}] differs ({x} vs {y})");
    }
}

/// Spawn a real worker process for shard `k` of `n`: this test binary,
/// re-executed so only [`shard_worker_entry`] runs, in worker mode.
fn spawn_worker(
    base: &Path,
    k: usize,
    n: usize,
    data: (usize, usize, u64),
    extra_env: &[(&str, String)],
) -> std::io::Result<Child> {
    let exe = std::env::current_exe().expect("own test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["shard_worker_entry", "--exact"])
        .env(ENV_WORKER, "1")
        .env(ENV_BASE, base)
        .env(ENV_SHARD, format!("{k}/{n}"))
        .env(ENV_DATA, format!("{}:{}:{}", data.0, data.1, data.2))
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in extra_env {
        cmd.env(key, value);
    }
    cmd.spawn()
}

/// Worker-process entry point. Without [`ENV_WORKER`] this is a no-op test;
/// with it, the process rebuilds the cohort from the environment, enacts
/// any injected faults, fits its shard into the shard journal, and exits.
#[test]
fn shard_worker_entry() {
    if std::env::var(ENV_WORKER).as_deref() != Ok("1") {
        return;
    }
    let base = PathBuf::from(std::env::var(ENV_BASE).unwrap());
    let shard_spec = std::env::var(ENV_SHARD).unwrap();
    let (k, n) = shard_spec.split_once('/').unwrap();
    let (k, n): (usize, usize) = (k.parse().unwrap(), n.parse().unwrap());
    let data_spec = std::env::var(ENV_DATA).unwrap();
    let parts: Vec<usize> = data_spec.split(':').map(|p| p.parse().unwrap()).collect();
    let (train, _) = cohort(parts[0], parts[1], parts[2] as u64);
    let plan = TrainingPlan::full(train.n_features());

    apply_worker_faults_from_env(&shard_journal_path(&base, k, n));
    worker_run(
        &train,
        &plan,
        &strict_config(),
        &RunBudget::unlimited(),
        &base,
        k,
        n,
    )
    .unwrap();
    std::process::exit(0);
}

/// The acceptance scenario: a 4-shard run with one crash-looping worker and
/// one worker killed mid-run at a record boundary. The supervisor must walk
/// retry/backoff, reclaim the hopeless shard in-process, resume the killed
/// shard from its journal, and deliver the single-process model bit for bit
/// with no target lost or double-counted.
#[test]
fn four_shards_survive_a_crashloop_and_a_midrun_kill_bitwise() {
    const DATA: (usize, usize, u64) = (24, 16, 21);
    let (train, test) = cohort(DATA.0, DATA.1, DATA.2);
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("acceptance");
    let base = dir.join("run.frj");

    let (reference, _) = FracModel::fit(&train, &plan, &cfg);
    let reference_ns = reference.score(&test);

    // Shard 1 crash-loops on every attempt (via the FaultPlan env protocol
    // the CLI uses); shard 2's first worker is aborted — as a SIGKILL
    // would — once its journal holds one record.
    let faults = FaultPlan::none().with_crashloop_at([1]);
    let opts = ShardOptions {
        retry_budget: 2,
        heartbeat_timeout: Duration::from_secs(30),
        poll_interval: Duration::from_millis(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
    };
    let mut attempts = [0usize; 4];
    let mut events: Vec<ShardEvent> = Vec::new();
    let run = train_sharded(
        &train,
        &plan,
        &cfg,
        &RunBudget::unlimited(),
        &base,
        4,
        &opts,
        &mut |k, _remaining| {
            let attempt = attempts[k];
            attempts[k] += 1;
            let mut env = faults.worker_env(k);
            if k == 2 && attempt == 0 {
                env.push((ENV_SHARD_ABORT_AFTER, "1".to_string()));
            }
            spawn_worker(&base, k, 4, DATA, &env)
        },
        &mut |e| events.push(e.clone()),
    )
    .unwrap();

    // The crash-looper burned its retries with the injected exit code and
    // was reclaimed in-process, never having journaled a thing.
    assert!(events.contains(&ShardEvent::Exhausted { shard: 1 }), "{events:?}");
    assert!(
        events.iter().any(|e| matches!(
            e,
            ShardEvent::Exited { shard: 1, code: Some(c), .. } if *c == CRASHLOOP_EXIT_CODE
        )),
        "crashloop exit code not observed: {events:?}"
    );
    assert_eq!(run.stats[1].restarts, 2);
    assert_eq!(run.stats[1].worker_records, 0);
    assert_eq!(run.stats[1].reclaimed, run.stats[1].planned);

    // The killed worker died by signal with its shard incomplete; its
    // restarted successor resumed from the journal and finished — no
    // reclaim, exactly one restart.
    assert!(
        events.iter().any(|e| matches!(
            e,
            ShardEvent::Exited { shard: 2, code: None, complete: false }
        )),
        "mid-run kill not observed: {events:?}"
    );
    assert_eq!(run.stats[2].restarts, 1, "{events:?}");
    assert_eq!(run.stats[2].worker_records, run.stats[2].planned);
    assert_eq!(run.stats[2].reclaimed, 0);

    // Healthy shards ran once, no restarts.
    for k in [0usize, 3] {
        assert_eq!(run.stats[k].restarts, 0, "shard {k}: {events:?}");
        assert_eq!(run.stats[k].worker_records, run.stats[k].planned);
    }
    assert_eq!(run.model.shard_restarts(), &[0, 2, 1, 0]);

    // No target lost or double-counted across the shard journals.
    let mut seen: Vec<usize> = Vec::new();
    for k in 0..4 {
        let path = shard_journal_path(&base, k, 4);
        if let Ok(scan) = RunJournal::scan(&path) {
            seen.extend(scan.records.iter().map(|r| r.target));
        }
    }
    seen.sort_unstable();
    let expected: Vec<usize> = (0..plan.n_targets()).collect();
    assert_eq!(seen, expected, "duplicated or missing targets in the shard journals");

    assert!(run.report.health.is_clean(), "{}", run.report.health.summary());
    assert_bitwise_eq(&reference_ns, &run.model.score(&test), "4-shard faulted run");
}

/// SIGKILL at *every* record boundary: each worker attempt is aborted as
/// soon as its journal grows by one record, so the run only advances one
/// durable target per process death. Resume-from-journal must carry it to
/// a complete, bit-identical model without refitting finished targets.
#[test]
fn a_worker_killed_at_every_record_boundary_still_converges_bitwise() {
    const DATA: (usize, usize, u64) = (24, 6, 9);
    let (train, test) = cohort(DATA.0, DATA.1, DATA.2);
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("boundary-kills");
    let base = dir.join("run.frj");

    let (reference, _) = FracModel::fit(&train, &plan, &cfg);
    let journal_path = shard_journal_path(&base, 0, 1);

    let opts = ShardOptions {
        retry_budget: plan.n_targets() + 2,
        heartbeat_timeout: Duration::from_secs(30),
        poll_interval: Duration::from_millis(10),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
    };
    let mut events: Vec<ShardEvent> = Vec::new();
    let run = train_sharded(
        &train,
        &plan,
        &cfg,
        &RunBudget::unlimited(),
        &base,
        1,
        &opts,
        &mut |k, _remaining| {
            // Abort each attempt one record past what the journal already
            // holds — death at the very next record boundary.
            let done = RunJournal::scan(&journal_path).map_or(0, |s| s.records.len());
            let env = [(ENV_SHARD_ABORT_AFTER, (done + 1).to_string())];
            spawn_worker(&base, k, 1, DATA, &env)
        },
        &mut |e| events.push(e.clone()),
    )
    .unwrap();

    let signal_deaths = events
        .iter()
        .filter(|e| matches!(e, ShardEvent::Exited { code: None, .. }))
        .count();
    assert!(
        signal_deaths >= 2,
        "expected repeated kills at record boundaries: {events:?}"
    );
    assert!(run.stats[0].restarts >= 1, "{events:?}");
    assert_eq!(run.stats[0].reclaimed, 0, "workers alone must finish the shard");

    // Monotone progress, no duplicates: the journal holds each target once.
    let scan = RunJournal::scan(&journal_path).unwrap();
    let mut targets: Vec<usize> = scan.records.iter().map(|r| r.target).collect();
    targets.sort_unstable();
    assert_eq!(targets, (0..plan.n_targets()).collect::<Vec<_>>());

    assert!(run.report.health.is_clean(), "{}", run.report.health.summary());
    assert_bitwise_eq(
        &reference.score(&test),
        &run.model.score(&test),
        "record-boundary kill loop",
    );
}

/// A shard journal truncated mid-record (a torn write at the moment of
/// death) loses only its torn tail: resume drops the partial record,
/// reclaims that one target, and the merge is still bit-identical.
#[test]
fn truncated_shard_journal_reclaims_the_torn_tail_bitwise() {
    let (train, test) = cohort(24, 8, 13);
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("torn-tail");
    let base = dir.join("run.frj");

    let (reference, _) = FracModel::fit(&train, &plan, &cfg);
    for k in 0..2 {
        worker_run(&train, &plan, &cfg, &RunBudget::unlimited(), &base, k, 2).unwrap();
    }

    // Cut shard 1 in the middle of its final record.
    let path = shard_journal_path(&base, 1, 2);
    let scan = RunJournal::scan(&path).unwrap();
    let ends = &scan.record_ends;
    assert!(ends.len() >= 2);
    let cut = (ends[ends.len() - 2] + ends[ends.len() - 1]) / 2;
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..cut as usize]).unwrap();

    let mut events: Vec<ShardEvent> = Vec::new();
    let run = resume_shards(
        &train,
        &plan,
        &cfg,
        &RunBudget::unlimited(),
        &base,
        2,
        &mut |e| events.push(e.clone()),
    )
    .unwrap();
    assert!(
        events.contains(&ShardEvent::Reclaiming { shard: 1, remaining: 1 }),
        "{events:?}"
    );
    assert_eq!(run.stats[1].reclaimed, 1);
    assert!(run.report.health.is_clean());
    assert_bitwise_eq(
        &reference.score(&test),
        &run.model.score(&test),
        "mid-record shard truncation",
    );
}

/// Foreign shard journals are refused per shard with the named-hash
/// mismatch detail — even when every journal is complete and the reclaim
/// phase (whose own open would catch it) never runs.
#[test]
fn resuming_foreign_shard_journals_is_refused_per_shard() {
    let (train, _) = cohort(24, 8, 5);
    let plan = TrainingPlan::full(train.n_features());
    let cfg = strict_config();
    let dir = temp_dir("foreign");
    let base = dir.join("run.frj");
    for k in 0..2 {
        worker_run(&train, &plan, &cfg, &RunBudget::unlimited(), &base, k, 2).unwrap();
    }

    let other = strict_config().with_seed(99);
    match resume_shards(
        &train,
        &plan,
        &other,
        &RunBudget::unlimited(),
        &base,
        2,
        &mut |_| {},
    ) {
        Err(ShardError::Journal { shard, source: JournalError::Mismatch(detail), .. }) => {
            assert_eq!(shard, 0, "the first foreign shard is named");
            assert!(detail.contains("config hash"), "{detail}");
        }
        Err(e) => panic!("expected a per-shard mismatch, got {e}"),
        Ok(_) => panic!("expected a per-shard mismatch, got a model"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merging shard journals produced in any order, for any shard count,
    /// is bitwise identical to the single-process Strict run — the merge
    /// depends only on the records, never on who wrote them when.
    #[test]
    fn merging_any_shard_count_in_any_order_is_bitwise_identical(
        n_shards in prop_oneof![Just(1usize), Just(2), Just(3), Just(7)],
        perm_seed in any::<u64>(),
    ) {
        let (train, test) = cohort(24, 6, 33);
        let plan = TrainingPlan::full(train.n_features());
        let cfg = strict_config();
        let dir = temp_dir(&format!("merge-{n_shards}-{perm_seed:x}"));
        let base = dir.join("run.frj");

        let (reference, _) = FracModel::fit(&train, &plan, &cfg);
        let reference_ns = reference.score(&test);

        // Produce the shard journals in a shuffled order.
        let mut order: Vec<usize> = (0..n_shards).collect();
        order.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        for k in order {
            worker_run(&train, &plan, &cfg, &RunBudget::unlimited(), &base, k, n_shards)
                .unwrap();
        }

        let mut events: Vec<ShardEvent> = Vec::new();
        let run = resume_shards(
            &train, &plan, &cfg, &RunBudget::unlimited(), &base, n_shards,
            &mut |e| events.push(e.clone()),
        ).unwrap();
        prop_assert!(events.is_empty(), "complete journals must not reclaim: {events:?}");
        prop_assert!(run.report.health.is_clean());
        prop_assert_eq!(
            run.journal_health.targets_planned, plan.n_targets(),
            "worker-phase health covers the whole plan"
        );
        let ns = run.model.score(&test);
        for (x, y) in reference_ns.iter().zip(&ns) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} shards", n_shards);
        }
    }
}
