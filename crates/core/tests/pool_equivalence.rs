//! Regression tests for the two performance layers:
//!
//! * The shared encoded-feature pool must be a pure performance change: NS
//!   scores from the pooled fit/score paths are bit-identical
//!   (`f64::to_bits`) to the legacy owned-matrix paths, on both paper model
//!   families, at any thread count. These tests pin
//!   [`SolverMode::Strict`], whose exact sequential kernels make pooled
//!   segment iteration reproduce the owned fold bit for bit; the fast
//!   solver's blocked kernels group FP sums differently per segment, so it
//!   is gated by tolerance instead (below).
//! * The fast solver path (shrinking + warm starts + blocked kernels) must
//!   agree with the strict reference to solver tolerance: NS scores within
//!   a small relative tolerance and **identical anomaly rankings**, on both
//!   surrogates, at 1 and 4 threads.

use frac_core::{
    CatModel, FracConfig, FracModel, RealModel, SolverMode, SolverStrategy, TrainingPlan,
};
use frac_dataset::Dataset;
use frac_learn::{SvcConfig, SvrConfig};
use frac_synth::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};
use frac_synth::{ExpressionConfig, ExpressionGenerator};

fn expression_surrogate() -> (Dataset, Dataset) {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: 24,
        n_modules: 4,
        relevant_fraction: 0.9,
        anomaly_modules: 2,
        anomaly_shift: 3.0,
        noise_sd: 0.5,
        structure_seed: 77,
        ..ExpressionConfig::default()
    })
    .generate(36, 6, 7);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test = data.select_rows(&(30..42).collect::<Vec<_>>());
    (train, test)
}

fn snp_surrogate() -> (Dataset, Dataset) {
    let gen = SnpGenerator::new(SnpConfig {
        n_snps: 30,
        ld_block_size: 4,
        ld_rho: 0.6,
        n_subpops: 2,
        fst: 0.1,
        n_disease_loci: 4,
        disease_effect: 0.2,
        structure_seed: 11,
        ..SnpConfig::default()
    });
    let groups = [
        CohortGroup { n: 36, mix: SubpopulationMix::uniform(2), is_case: false },
        CohortGroup { n: 6, mix: SubpopulationMix::uniform(2), is_case: true },
    ];
    let (data, _) = gen.generate(&groups, 13);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test = data.select_rows(&(30..42).collect::<Vec<_>>());
    (train, test)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: row {r} differs ({x:?} vs {y:?})"
        );
    }
}

/// Fit + score through the pooled paths and the legacy owned paths; every
/// combination must agree bitwise.
fn check_pooled_matches_unpooled(train: &Dataset, test: &Dataset, config: &FracConfig, what: &str) {
    let plan = TrainingPlan::full(train.n_features());
    let (pooled, pooled_report) = FracModel::fit(train, &plan, config);
    let (unpooled, unpooled_report) = FracModel::fit_unpooled(train, &plan, config);

    let ns_pooled = pooled.score(test);
    let ns_cross = pooled.contributions_unpooled(test).ns_scores();
    let ns_unpooled = unpooled.contributions_unpooled(test).ns_scores();
    assert_bits_eq(&ns_pooled, &ns_cross, &format!("{what}: pooled fit, scoring paths"));
    assert_bits_eq(&ns_pooled, &ns_unpooled, &format!("{what}: pooled vs legacy end-to-end"));

    // The pool is charged once; the legacy path charges matrices per target.
    assert!(pooled_report.pool_bytes > 0, "{what}: pooled run must report a pool");
    assert_eq!(unpooled_report.pool_bytes, 0, "{what}: legacy run has no pool");
    assert!(
        pooled_report.transient_bytes <= unpooled_report.transient_bytes,
        "{what}: pooled transients must not exceed legacy ({} vs {})",
        pooled_report.transient_bytes,
        unpooled_report.transient_bytes
    );
}

#[test]
fn expression_ns_scores_bit_identical() {
    let (train, test) = expression_surrogate();
    let config = FracConfig::expression().with_solver_mode(SolverMode::Strict);
    check_pooled_matches_unpooled(&train, &test, &config, "expression");
}

#[test]
fn snp_ns_scores_bit_identical() {
    let (train, test) = snp_surrogate();
    let config = FracConfig::snp().with_solver_mode(SolverMode::Strict);
    check_pooled_matches_unpooled(&train, &test, &config, "snp");
}

#[test]
fn pooled_scores_identical_across_thread_counts() {
    let (train, test) = expression_surrogate();
    let plan = TrainingPlan::full(train.n_features());
    let config = FracConfig::expression();

    let run = |threads: usize| -> Vec<f64> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let (model, _) = FracModel::fit(&train, &plan, &config);
                model.score(&test)
            })
    };
    let serial = run(1);
    let parallel = run(4);
    assert_bits_eq(&serial, &parallel, "thread counts 1 vs 4");
}

/// Tight-tolerance SVR config: both solver paths essentially reach the dual
/// optimum, so their models (and NS scores) agree to small tolerance even
/// though iteration order and FP grouping differ.
fn expression_svm_config() -> FracConfig {
    FracConfig {
        real_model: RealModel::Svr(SvrConfig {
            tolerance: 1e-6,
            max_epochs: 4000,
            ..SvrConfig::default()
        }),
        ..FracConfig::default()
    }
}

/// Tight-tolerance SVC config for the categorical SNP surrogate.
fn snp_svm_config() -> FracConfig {
    FracConfig {
        cat_model: CatModel::Svc(SvcConfig {
            tolerance: 1e-6,
            max_epochs: 4000,
            ..SvcConfig::default()
        }),
        ..FracConfig::snp()
    }
}

/// Rank of each row by descending NS score (the anomaly ordering consumers
/// like AUC computations see).
fn ranking(ns: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ns.len()).collect();
    order.sort_by(|&a, &b| ns[b].partial_cmp(&ns[a]).unwrap());
    order
}

/// The fast solver must match the strict reference to tolerance and produce
/// the identical anomaly ranking, at the given thread count.
fn check_fast_matches_strict(
    train: &Dataset,
    test: &Dataset,
    base: &FracConfig,
    what: &str,
    threads: usize,
) {
    let plan = TrainingPlan::full(train.n_features());
    let run = |config: FracConfig| -> Vec<f64> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let (model, _) = FracModel::fit(train, &plan, &config);
                model.score(test)
            })
    };
    let strict = run(base.with_solver_mode(SolverMode::Strict));
    let fast = run(base.with_solver_mode(SolverMode::Fast));

    assert_eq!(strict.len(), fast.len(), "{what}: length mismatch");
    // Both solvers stop at projected-gradient tolerance 1e-6, but the NS
    // pipeline amplifies tiny prediction differences through the fitted
    // error models (surprisal is sensitive to σ), so the score gate is a
    // modest relative tolerance; the ranking gate below is exact.
    for (r, (s, f)) in strict.iter().zip(&fast).enumerate() {
        assert!(
            (s - f).abs() <= 1e-2 * (1.0 + s.abs()),
            "{what} ({threads} threads): row {r} NS diverged ({s} strict vs {f} fast)"
        );
    }
    assert_eq!(
        ranking(&strict),
        ranking(&fast),
        "{what} ({threads} threads): anomaly ranking changed"
    );
}

#[test]
fn fast_solver_matches_strict_expression() {
    let (train, test) = expression_surrogate();
    let config = expression_svm_config();
    check_fast_matches_strict(&train, &test, &config, "expression svr", 1);
    check_fast_matches_strict(&train, &test, &config, "expression svr", 4);
}

#[test]
fn fast_solver_matches_strict_snp() {
    let (train, test) = snp_surrogate();
    let config = snp_svm_config();
    check_fast_matches_strict(&train, &test, &config, "snp svc", 1);
    check_fast_matches_strict(&train, &test, &config, "snp svc", 4);
}

// The Gram-matrix dual strategy (DESIGN.md §13) rides the fast path, so it
// owes the same end-to-end contract as the primal fast loop: NS scores
// within tolerance of the strict reference and the identical anomaly
// ranking, at 1 and 4 threads. The strategy pin only affects the fast side
// of the A/B — strict never consults it.

#[test]
fn gram_strategy_matches_strict_expression() {
    let (train, test) = expression_surrogate();
    let config = expression_svm_config().with_solver_strategy(SolverStrategy::Gram);
    check_fast_matches_strict(&train, &test, &config, "expression svr gram", 1);
    check_fast_matches_strict(&train, &test, &config, "expression svr gram", 4);
}

#[test]
fn gram_strategy_matches_strict_snp() {
    let (train, test) = snp_surrogate();
    let config = snp_svm_config().with_solver_strategy(SolverStrategy::Gram);
    check_fast_matches_strict(&train, &test, &config, "snp svc gram", 1);
    check_fast_matches_strict(&train, &test, &config, "snp svc gram", 4);
}
