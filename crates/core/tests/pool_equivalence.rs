//! Regression tests: the shared encoded-feature pool must be a pure
//! performance change. NS scores from the pooled fit/score paths are
//! bit-identical (`f64::to_bits`) to the legacy owned-matrix paths, on both
//! paper model families, at any thread count.

use frac_core::{FracConfig, FracModel, TrainingPlan};
use frac_dataset::Dataset;
use frac_synth::snp::{CohortGroup, SnpConfig, SnpGenerator, SubpopulationMix};
use frac_synth::{ExpressionConfig, ExpressionGenerator};

fn expression_surrogate() -> (Dataset, Dataset) {
    let (data, _) = ExpressionGenerator::new(ExpressionConfig {
        n_features: 24,
        n_modules: 4,
        relevant_fraction: 0.9,
        anomaly_modules: 2,
        anomaly_shift: 3.0,
        noise_sd: 0.5,
        structure_seed: 77,
        ..ExpressionConfig::default()
    })
    .generate(36, 6, 7);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test = data.select_rows(&(30..42).collect::<Vec<_>>());
    (train, test)
}

fn snp_surrogate() -> (Dataset, Dataset) {
    let gen = SnpGenerator::new(SnpConfig {
        n_snps: 30,
        ld_block_size: 4,
        ld_rho: 0.6,
        n_subpops: 2,
        fst: 0.1,
        n_disease_loci: 4,
        disease_effect: 0.2,
        structure_seed: 11,
        ..SnpConfig::default()
    });
    let groups = [
        CohortGroup { n: 36, mix: SubpopulationMix::uniform(2), is_case: false },
        CohortGroup { n: 6, mix: SubpopulationMix::uniform(2), is_case: true },
    ];
    let (data, _) = gen.generate(&groups, 13);
    let train = data.select_rows(&(0..30).collect::<Vec<_>>());
    let test = data.select_rows(&(30..42).collect::<Vec<_>>());
    (train, test)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: row {r} differs ({x:?} vs {y:?})"
        );
    }
}

/// Fit + score through the pooled paths and the legacy owned paths; every
/// combination must agree bitwise.
fn check_pooled_matches_unpooled(train: &Dataset, test: &Dataset, config: &FracConfig, what: &str) {
    let plan = TrainingPlan::full(train.n_features());
    let (pooled, pooled_report) = FracModel::fit(train, &plan, config);
    let (unpooled, unpooled_report) = FracModel::fit_unpooled(train, &plan, config);

    let ns_pooled = pooled.score(test);
    let ns_cross = pooled.contributions_unpooled(test).ns_scores();
    let ns_unpooled = unpooled.contributions_unpooled(test).ns_scores();
    assert_bits_eq(&ns_pooled, &ns_cross, &format!("{what}: pooled fit, scoring paths"));
    assert_bits_eq(&ns_pooled, &ns_unpooled, &format!("{what}: pooled vs legacy end-to-end"));

    // The pool is charged once; the legacy path charges matrices per target.
    assert!(pooled_report.pool_bytes > 0, "{what}: pooled run must report a pool");
    assert_eq!(unpooled_report.pool_bytes, 0, "{what}: legacy run has no pool");
    assert!(
        pooled_report.transient_bytes <= unpooled_report.transient_bytes,
        "{what}: pooled transients must not exceed legacy ({} vs {})",
        pooled_report.transient_bytes,
        unpooled_report.transient_bytes
    );
}

#[test]
fn expression_ns_scores_bit_identical() {
    let (train, test) = expression_surrogate();
    check_pooled_matches_unpooled(&train, &test, &FracConfig::expression(), "expression");
}

#[test]
fn snp_ns_scores_bit_identical() {
    let (train, test) = snp_surrogate();
    check_pooled_matches_unpooled(&train, &test, &FracConfig::snp(), "snp");
}

#[test]
fn pooled_scores_identical_across_thread_counts() {
    let (train, test) = expression_surrogate();
    let plan = TrainingPlan::full(train.n_features());
    let config = FracConfig::expression();

    let run = |threads: usize| -> Vec<f64> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let (model, _) = FracModel::fit(&train, &plan, &config);
                model.score(&test)
            })
    };
    let serial = run(1);
    let parallel = run(4);
    assert_bits_eq(&serial, &parallel, "thread counts 1 vs 4");
}
