//! Gaussian kernel density estimation (Rosenblatt 1956, the paper's ref. 13).
//!
//! The paper estimates the differential entropy of each continuous feature by
//! "fitting a Gaussian kernel density estimator to the feature values over the
//! training set, and computing the differential entropy of f(x)". This module
//! provides that estimator with the standard Silverman bandwidth rule and a
//! resubstitution (leave-none-out Monte-Carlo-free) entropy estimate
//! `Ĥ = −(1/n) Σ_i log f̂(x_i)`.

use crate::stats;

/// A fitted Gaussian kernel density estimator over one real feature.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    points: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fit with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ̂, IQR/1.34) · n^{−1/5}` (falling back to σ̂ or a small
    /// constant when degenerate).
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn fit(points: &[f64]) -> Self {
        assert!(!points.is_empty(), "KDE requires at least one point");
        let sd = stats::std_dev(points).unwrap_or(0.0);
        let iqr = stats::iqr(points).unwrap_or(0.0);
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        let n = points.len() as f64;
        let mut h = 0.9 * spread * n.powf(-0.2);
        if !(h.is_finite() && h > 0.0) {
            // Degenerate sample (constant feature): pick a tiny bandwidth so
            // the density is a narrow spike and entropy is very negative,
            // which correctly ranks constant features as least interesting.
            h = 1e-3;
        }
        GaussianKde { points: points.to_vec(), bandwidth: h }
    }

    /// Fit with an explicit bandwidth.
    ///
    /// # Panics
    /// Panics if `points` is empty or `bandwidth` is not positive and finite.
    pub fn with_bandwidth(points: &[f64], bandwidth: f64) -> Self {
        assert!(!points.is_empty(), "KDE requires at least one point");
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive and finite"
        );
        GaussianKde { points: points.to_vec(), bandwidth }
    }

    /// The bandwidth in use.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of support points.
    #[inline]
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Density estimate `f̂(x) = (1/(n·h)) Σ_i φ((x − x_i)/h)`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.points.len() as f64) * h * (2.0 * std::f64::consts::PI).sqrt());
        let mut acc = 0.0;
        for &p in &self.points {
            let z = (x - p) / h;
            acc += (-0.5 * z * z).exp();
        }
        acc * norm
    }

    /// Natural-log density, computed with a numerically stable
    /// log-sum-exp over the kernel contributions.
    pub fn log_density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        // log f(x) = logsumexp_i(−z_i²/2) − log(n h √(2π))
        let mut max_term = f64::NEG_INFINITY;
        let mut terms = Vec::with_capacity(self.points.len());
        for &p in &self.points {
            let z = (x - p) / h;
            let t = -0.5 * z * z;
            terms.push(t);
            if t > max_term {
                max_term = t;
            }
        }
        if !max_term.is_finite() {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = terms.iter().map(|t| (t - max_term).exp()).sum();
        max_term + sum.ln()
            - ((self.points.len() as f64) * h * (2.0 * std::f64::consts::PI).sqrt()).ln()
    }

    /// Resubstitution differential-entropy estimate
    /// `Ĥ = −(1/n) Σ_i log f̂(x_i)` (in nats).
    pub fn resubstitution_entropy(&self) -> f64 {
        let n = self.points.len() as f64;
        let s: f64 = self.points.iter().map(|&x| self.log_density(x)).sum();
        -s / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_sample(n: usize, mu: f64, sigma: f64, seed: u64) -> Vec<f64> {
        // Small deterministic Box–Muller generator for test data; avoids a
        // dev-dependency cycle with the synth crate.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let (u1, u2): (f64, f64) = (next().max(1e-12), next());
                mu + sigma
                    * (-2.0 * u1.ln()).sqrt()
                    * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn density_integrates_to_one() {
        let pts = gaussian_sample(200, 0.0, 1.0, 7);
        let kde = GaussianKde::fit(&pts);
        // Trapezoid rule over a wide range.
        let (a, b, steps) = (-8.0f64, 8.0f64, 3000usize);
        let dx = (b - a) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = a + i as f64 * dx;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * kde.density(x) * dx;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn log_density_consistent_with_density() {
        let pts = gaussian_sample(50, 2.0, 0.5, 3);
        let kde = GaussianKde::fit(&pts);
        for &x in &[0.0, 1.5, 2.0, 3.0] {
            assert!((kde.log_density(x) - kde.density(x).ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn entropy_close_to_gaussian_truth() {
        // True differential entropy of N(0,σ²) is ½ln(2πeσ²).
        let sigma = 2.0f64;
        let pts = gaussian_sample(800, 0.0, sigma, 11);
        let kde = GaussianKde::fit(&pts);
        let truth = 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * sigma * sigma).ln();
        let est = kde.resubstitution_entropy();
        assert!(
            (est - truth).abs() < 0.15,
            "estimate {est} too far from truth {truth}"
        );
    }

    #[test]
    fn entropy_orders_by_spread() {
        // Wider distributions must rank higher — this is exactly the property
        // the paper's entropy filter relies on.
        let narrow = GaussianKde::fit(&gaussian_sample(300, 0.0, 0.1, 5));
        let wide = GaussianKde::fit(&gaussian_sample(300, 0.0, 3.0, 5));
        assert!(wide.resubstitution_entropy() > narrow.resubstitution_entropy());
    }

    #[test]
    fn constant_feature_has_very_low_entropy() {
        let kde = GaussianKde::fit(&[5.0; 40]);
        assert!(kde.resubstitution_entropy() < -1.0);
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let kde = GaussianKde::with_bandwidth(&[0.0, 1.0], 0.25);
        assert_eq!(kde.bandwidth(), 0.25);
        assert_eq!(kde.n(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_fit_panics() {
        GaussianKde::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_bandwidth_panics() {
        GaussianKde::with_bandwidth(&[1.0], -1.0);
    }
}
