//! Typed feature descriptions.
//!
//! A FRaC data set mixes real-valued features (e.g. mRNA expression levels)
//! with k-ary categorical features (e.g. SNP genotypes, which are ternary:
//! homozygous-major / heterozygous / homozygous-minor). The [`Schema`] records
//! the kind and name of every feature and is carried alongside the data so
//! that models, error models and encoders can dispatch on feature type.

use std::fmt;

/// The kind of a single feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// A real-valued feature (stored as `f64`, `NaN` encodes "missing").
    Real,
    /// A categorical feature with `arity` distinct categories, coded
    /// `0..arity`. `u32::MAX` encodes "missing".
    Categorical {
        /// Number of distinct categories (must be ≥ 2 to be learnable).
        arity: u32,
    },
}

impl FeatureKind {
    /// A ternary categorical feature, the natural kind for SNP genotypes.
    pub const SNP: FeatureKind = FeatureKind::Categorical { arity: 3 };

    /// Is this a real-valued feature?
    #[inline]
    pub fn is_real(self) -> bool {
        matches!(self, FeatureKind::Real)
    }

    /// Is this a categorical feature?
    #[inline]
    pub fn is_categorical(self) -> bool {
        matches!(self, FeatureKind::Categorical { .. })
    }

    /// Arity of a categorical feature, `None` for real features.
    #[inline]
    pub fn arity(self) -> Option<u32> {
        match self {
            FeatureKind::Real => None,
            FeatureKind::Categorical { arity } => Some(arity),
        }
    }

    /// Width of this feature after one-hot expansion (Fig. 2 of the paper):
    /// real features stay one column, k-ary categorical features become `k`
    /// indicator columns.
    #[inline]
    pub fn one_hot_width(self) -> usize {
        match self {
            FeatureKind::Real => 1,
            FeatureKind::Categorical { arity } => arity as usize,
        }
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureKind::Real => write!(f, "real"),
            FeatureKind::Categorical { arity } => write!(f, "cat{arity}"),
        }
    }
}

/// A named, typed feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Human-readable name (gene symbol, SNP rsid, projected-component id…).
    pub name: String,
    /// The feature's kind.
    pub kind: FeatureKind,
}

impl Feature {
    /// Create a feature from a name and kind.
    pub fn new(name: impl Into<String>, kind: FeatureKind) -> Self {
        Feature { name: name.into(), kind }
    }

    /// Shorthand for a real-valued feature.
    pub fn real(name: impl Into<String>) -> Self {
        Feature::new(name, FeatureKind::Real)
    }

    /// Shorthand for a categorical feature of the given arity.
    pub fn categorical(name: impl Into<String>, arity: u32) -> Self {
        Feature::new(name, FeatureKind::Categorical { arity })
    }
}

/// An ordered collection of [`Feature`]s describing a data set's columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    features: Vec<Feature>,
}

impl Schema {
    /// Build a schema from a list of features.
    pub fn new(features: Vec<Feature>) -> Self {
        Schema { features }
    }

    /// A schema of `n` anonymous real features named `x0..x{n-1}`.
    pub fn all_real(n: usize) -> Self {
        Schema {
            features: (0..n).map(|i| Feature::real(format!("x{i}"))).collect(),
        }
    }

    /// A schema of `n` anonymous k-ary categorical features named `c0..`.
    pub fn all_categorical(n: usize, arity: u32) -> Self {
        Schema {
            features: (0..n)
                .map(|i| Feature::categorical(format!("c{i}"), arity))
                .collect(),
        }
    }

    /// Number of features.
    #[inline]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Is the schema empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The `i`-th feature.
    #[inline]
    pub fn feature(&self, i: usize) -> &Feature {
        &self.features[i]
    }

    /// The `i`-th feature's kind.
    #[inline]
    pub fn kind(&self, i: usize) -> FeatureKind {
        self.features[i].kind
    }

    /// Iterate over features.
    pub fn iter(&self) -> impl Iterator<Item = &Feature> {
        self.features.iter()
    }

    /// Index of the feature with the given name, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Append a feature, returning its index.
    pub fn push(&mut self, feature: Feature) -> usize {
        self.features.push(feature);
        self.features.len() - 1
    }

    /// Schema restricted to the given feature indices (in the given order).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> Schema {
        Schema {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
        }
    }

    /// Total width of the one-hot expansion of all features (Fig. 2):
    /// `Σ_i one_hot_width(kind_i)`.
    pub fn one_hot_width(&self) -> usize {
        self.features.iter().map(|f| f.kind.one_hot_width()).sum()
    }

    /// Number of real features.
    pub fn n_real(&self) -> usize {
        self.features.iter().filter(|f| f.kind.is_real()).count()
    }

    /// Number of categorical features.
    pub fn n_categorical(&self) -> usize {
        self.features.iter().filter(|f| f.kind.is_categorical()).count()
    }
}

impl std::ops::Index<usize> for Schema {
    type Output = Feature;
    fn index(&self, i: usize) -> &Feature {
        &self.features[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(FeatureKind::Real.is_real());
        assert!(!FeatureKind::Real.is_categorical());
        assert_eq!(FeatureKind::Real.arity(), None);
        let snp = FeatureKind::SNP;
        assert!(snp.is_categorical());
        assert_eq!(snp.arity(), Some(3));
    }

    #[test]
    fn one_hot_widths_match_fig2() {
        // Fig. 2: four real features + a ternary + a quaternary categorical
        // expand to 4 + 3 + 4 = 11 columns.
        let schema = Schema::new(vec![
            Feature::real("a"),
            Feature::real("b"),
            Feature::real("c"),
            Feature::real("d"),
            Feature::categorical("e", 3),
            Feature::categorical("f", 4),
        ]);
        assert_eq!(schema.one_hot_width(), 11);
        assert_eq!(schema.n_real(), 4);
        assert_eq!(schema.n_categorical(), 2);
    }

    #[test]
    fn select_preserves_order() {
        let schema = Schema::all_real(5);
        let sub = schema.select(&[4, 0, 2]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.feature(0).name, "x4");
        assert_eq!(sub.feature(1).name, "x0");
        assert_eq!(sub.feature(2).name, "x2");
    }

    #[test]
    fn index_of_finds_named_features() {
        let schema = Schema::all_categorical(3, 3);
        assert_eq!(schema.index_of("c1"), Some(1));
        assert_eq!(schema.index_of("nope"), None);
    }

    #[test]
    fn display_kinds() {
        assert_eq!(FeatureKind::Real.to_string(), "real");
        assert_eq!(FeatureKind::SNP.to_string(), "cat3");
    }

    #[test]
    fn push_returns_index() {
        let mut schema = Schema::default();
        assert!(schema.is_empty());
        assert_eq!(schema.push(Feature::real("a")), 0);
        assert_eq!(schema.push(Feature::categorical("b", 2)), 1);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema[1].kind, FeatureKind::Categorical { arity: 2 });
    }
}
