//! Row-major design matrices for per-feature model training.
//!
//! FRaC trains, for each target feature `i`, a predictor of `x_i` from some
//! subset of the remaining features. This module materializes that learning
//! problem: chosen input features are encoded to real columns (categorical
//! inputs are one-hot expanded, as in Fig. 2 of the paper; real inputs are
//! optionally z-scored), missing inputs are mean-imputed (zero after
//! standardization / all-zero indicator block), and the result is a dense
//! row-major `f64` matrix suitable for both the linear-SVM coordinate-descent
//! solvers and the decision trees.
//!
//! The encoding is *fit* on the training set ([`DesignSpec::fit`]) and then
//! applied unchanged to held-out folds and test samples, so no test-set
//! statistics leak into training.

use crate::dataset::{Column, Dataset};
use crate::schema::FeatureKind;
use crate::stats;

/// Per-feature encoding parameters, fit on a training set.
#[derive(Debug, Clone)]
enum FeatureEncoder {
    /// Real feature: `(x - mean) / std` (std clamped away from 0), missing → 0.
    Real {
        mean: f64,
        inv_std: f64,
    },
    /// Real feature passed through unscaled, missing → training mean.
    RealRaw {
        mean: f64,
    },
    /// Categorical feature: arity-wide indicator block, missing → all zeros.
    OneHot {
        arity: u32,
    },
}

impl FeatureEncoder {
    fn width(&self) -> usize {
        match self {
            FeatureEncoder::Real { .. } | FeatureEncoder::RealRaw { .. } => 1,
            FeatureEncoder::OneHot { arity } => *arity as usize,
        }
    }
}

/// A fitted encoding of a chosen set of input features.
///
/// `DesignSpec` is the reusable half of the pipeline: fit once on training
/// data, then [`DesignSpec::encode`] any data set with the same schema.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Indices (into the source schema) of the input features, in order.
    input_features: Vec<usize>,
    encoders: Vec<FeatureEncoder>,
    n_cols: usize,
}

impl DesignSpec {
    /// Fit an encoding for `input_features` of `train`.
    ///
    /// If `standardize` is true, real features are z-scored with statistics
    /// of the non-missing training values (the usual preparation for the
    /// regularized linear SVMs the paper uses); otherwise they pass through
    /// with mean imputation only.
    pub fn fit(train: &Dataset, input_features: &[usize], standardize: bool) -> Self {
        let mut encoders = Vec::with_capacity(input_features.len());
        let mut n_cols = 0usize;
        for &j in input_features {
            let enc = match train.schema().kind(j) {
                FeatureKind::Real => {
                    let present = train.column(j).present_reals();
                    let mean = stats::mean(&present).unwrap_or(0.0);
                    if standardize {
                        let sd = stats::std_dev(&present).unwrap_or(0.0);
                        let inv_std = if sd > 1e-12 { 1.0 / sd } else { 0.0 };
                        FeatureEncoder::Real { mean, inv_std }
                    } else {
                        FeatureEncoder::RealRaw { mean }
                    }
                }
                FeatureKind::Categorical { arity } => FeatureEncoder::OneHot { arity },
            };
            n_cols += enc.width();
            encoders.push(enc);
        }
        DesignSpec {
            input_features: input_features.to_vec(),
            encoders,
            n_cols,
        }
    }

    /// Number of encoded columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The input feature indices this spec encodes.
    #[inline]
    pub fn input_features(&self) -> &[usize] {
        &self.input_features
    }

    /// Serialize this spec into a [`crate::textio::TextWriter`] (model
    /// persistence).
    pub fn write_text(&self, w: &mut crate::textio::TextWriter) {
        w.line("designspec", [self.input_features.len()]);
        w.line("inputs", self.input_features.iter());
        for enc in &self.encoders {
            match enc {
                FeatureEncoder::Real { mean, inv_std } => {
                    w.floats("enc_real", &[*mean, *inv_std]);
                }
                FeatureEncoder::RealRaw { mean } => {
                    w.floats("enc_raw", &[*mean]);
                }
                FeatureEncoder::OneHot { arity } => {
                    w.line("enc_onehot", [*arity]);
                }
            }
        }
    }

    /// Parse a spec previously produced by [`DesignSpec::write_text`].
    pub fn parse_text(
        r: &mut crate::textio::TextReader<'_>,
    ) -> Result<Self, crate::textio::TextError> {
        let n: usize = r.parse_one("designspec")?;
        let input_features: Vec<usize> = r.parse_all("inputs")?;
        if input_features.len() != n {
            return Err(format!(
                "designspec declares {n} inputs but lists {}",
                input_features.len()
            ));
        }
        let mut encoders = Vec::with_capacity(n);
        let mut n_cols = 0usize;
        for _ in 0..n {
            let enc = if r.peek_is("enc_real") {
                let v: Vec<f64> = r.parse_all("enc_real")?;
                if v.len() != 2 {
                    return Err("enc_real expects mean inv_std".into());
                }
                FeatureEncoder::Real { mean: v[0], inv_std: v[1] }
            } else if r.peek_is("enc_raw") {
                let v: Vec<f64> = r.parse_all("enc_raw")?;
                if v.len() != 1 {
                    return Err("enc_raw expects mean".into());
                }
                FeatureEncoder::RealRaw { mean: v[0] }
            } else {
                let arity: u32 = r.parse_one("enc_onehot")?;
                FeatureEncoder::OneHot { arity }
            };
            n_cols += enc.width();
            encoders.push(enc);
        }
        Ok(DesignSpec { input_features, encoders, n_cols })
    }

    /// Encode all rows of `data` into a dense design matrix.
    ///
    /// # Panics
    /// Panics if `data`'s schema is incompatible with the features this spec
    /// was fit on (kind/arity mismatch).
    pub fn encode(&self, data: &Dataset) -> DesignMatrix {
        let n_rows = data.n_rows();
        let mut values = vec![0.0f64; n_rows * self.n_cols];
        let mut col_base = 0usize;
        for (&j, enc) in self.input_features.iter().zip(&self.encoders) {
            match (data.column(j), enc) {
                (Column::Real(v), FeatureEncoder::Real { mean, inv_std }) => {
                    for (r, &x) in v.iter().enumerate() {
                        let z = if x.is_nan() { 0.0 } else { (x - mean) * inv_std };
                        values[r * self.n_cols + col_base] = z;
                    }
                }
                (Column::Real(v), FeatureEncoder::RealRaw { mean }) => {
                    for (r, &x) in v.iter().enumerate() {
                        let z = if x.is_nan() { *mean } else { x };
                        values[r * self.n_cols + col_base] = z;
                    }
                }
                (Column::Categorical { arity, codes }, FeatureEncoder::OneHot { arity: a }) => {
                    assert_eq!(arity, a, "arity mismatch between spec and data");
                    for (r, &c) in codes.iter().enumerate() {
                        if c != crate::dataset::MISSING_CODE {
                            values[r * self.n_cols + col_base + c as usize] = 1.0;
                        }
                    }
                }
                (col, enc) => panic!(
                    "feature {j}: column kind {:?} incompatible with encoder {enc:?}",
                    col.kind()
                ),
            }
            col_base += enc.width();
        }
        DesignMatrix { n_rows, n_cols: self.n_cols, values }
    }
}

/// A dense, row-major, all-real matrix of encoded input features.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMatrix {
    n_rows: usize,
    n_cols: usize,
    values: Vec<f64>,
}

impl DesignMatrix {
    /// Build directly from row-major storage.
    ///
    /// # Panics
    /// Panics if `values.len() != n_rows * n_cols`.
    pub fn from_raw(n_rows: usize, n_cols: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n_rows * n_cols, "shape mismatch");
        DesignMatrix { n_rows, n_cols, values }
    }

    /// An `n_rows × 0` matrix (useful for degenerate feature subsets:
    /// predictors then learn a constant).
    pub fn empty(n_rows: usize) -> Self {
        DesignMatrix { n_rows, n_cols: 0, values: Vec::new() }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (encoded inputs).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.values[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Entry at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.values[r * self.n_cols + c]
    }

    /// Gather column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.n_rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix restricted to `rows` (in order) — used by the k-fold splitter.
    pub fn select_rows(&self, rows: &[usize]) -> DesignMatrix {
        let mut values = Vec::with_capacity(rows.len() * self.n_cols);
        for &r in rows {
            values.extend_from_slice(self.row(r));
        }
        DesignMatrix { n_rows: rows.len(), n_cols: self.n_cols, values }
    }

    /// Dot product of row `r` with a weight vector.
    ///
    /// # Panics
    /// Panics if `w.len() != n_cols`.
    #[inline]
    pub fn row_dot(&self, r: usize, w: &[f64]) -> f64 {
        let row = self.row(r);
        assert_eq!(w.len(), row.len());
        row.iter().zip(w).map(|(a, b)| a * b).sum()
    }

    /// The backing storage (row-major).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Resident bytes of the backing storage — input to the resource meter.
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, MISSING_CODE};

    fn mixed() -> Dataset {
        DatasetBuilder::new()
            .real("e1", vec![1.0, 2.0, 3.0, 4.0])
            .real("e2", vec![10.0, f64::NAN, 30.0, 40.0])
            .categorical("snp", 3, vec![0, 1, 2, MISSING_CODE])
            .build()
    }

    #[test]
    fn one_hot_block_matches_fig2() {
        let d = mixed();
        let spec = DesignSpec::fit(&d, &[2], false);
        assert_eq!(spec.n_cols(), 3);
        let m = spec.encode(&d);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 1.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 1.0]);
        // Missing categorical → all-zero indicator block.
        assert_eq!(m.row(3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn standardization_zero_mean_unit_var() {
        let d = mixed();
        let spec = DesignSpec::fit(&d, &[0], true);
        let m = spec.encode(&d);
        let col = m.col(0);
        let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
        assert!(mean.abs() < 1e-12);
        let var: f64 = col.iter().map(|x| x * x).sum::<f64>() / (col.len() - 1) as f64;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_real_imputes_mean() {
        let d = mixed();
        // Standardized: missing → 0 == the training mean.
        let spec = DesignSpec::fit(&d, &[1], true);
        let m = spec.encode(&d);
        assert_eq!(m.get(1, 0), 0.0);
        // Raw: missing → literal training mean of the present values.
        let spec = DesignSpec::fit(&d, &[1], false);
        let m = spec.encode(&d);
        let mean = (10.0 + 30.0 + 40.0) / 3.0;
        assert!((m.get(1, 0) - mean).abs() < 1e-12);
    }

    #[test]
    fn spec_fit_on_train_applies_to_test() {
        let d = mixed();
        let train = d.select_rows(&[0, 1]);
        let test = d.select_rows(&[2, 3]);
        let spec = DesignSpec::fit(&train, &[0], false);
        let m = spec.encode(&test);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn constant_feature_encodes_to_zero() {
        let d = DatasetBuilder::new().real("c", vec![5.0, 5.0, 5.0]).build();
        let spec = DesignSpec::fit(&d, &[0], true);
        let m = spec.encode(&d);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mixed_spec_concatenates_blocks() {
        let d = mixed();
        let spec = DesignSpec::fit(&d, &[0, 2, 1], false);
        assert_eq!(spec.n_cols(), 1 + 3 + 1);
        let m = spec.encode(&d);
        assert_eq!(m.row(0), &[1.0, 1.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn row_dot_and_select_rows() {
        let m = DesignMatrix::from_raw(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row_dot(1, &[1.0, 0.0, -1.0]), -2.0);
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn spec_text_roundtrip() {
        let d = mixed();
        for standardize in [true, false] {
            let spec = DesignSpec::fit(&d, &[0, 2, 1], standardize);
            let mut w = crate::textio::TextWriter::new();
            spec.write_text(&mut w);
            let text = w.finish();
            let mut r = crate::textio::TextReader::new(&text);
            let back = DesignSpec::parse_text(&mut r).unwrap();
            assert_eq!(back.input_features(), spec.input_features());
            assert_eq!(back.n_cols(), spec.n_cols());
            // Encodings agree exactly on data.
            assert_eq!(back.encode(&d), spec.encode(&d));
        }
    }

    #[test]
    fn empty_matrix_has_zero_cols() {
        let m = DesignMatrix::empty(4);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.row(2), &[] as &[f64]);
    }
}
