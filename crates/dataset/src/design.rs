//! Row-major design matrices for per-feature model training.
//!
//! FRaC trains, for each target feature `i`, a predictor of `x_i` from some
//! subset of the remaining features. This module materializes that learning
//! problem: chosen input features are encoded to real columns (categorical
//! inputs are one-hot expanded, as in Fig. 2 of the paper; real inputs are
//! optionally z-scored), missing inputs are mean-imputed (zero after
//! standardization / all-zero indicator block), and the result is a dense
//! row-major `f64` matrix suitable for both the linear-SVM coordinate-descent
//! solvers and the decision trees.
//!
//! The encoding is *fit* on the training set ([`DesignSpec::fit`]) and then
//! applied unchanged to held-out folds and test samples, so no test-set
//! statistics leak into training.

use crate::dataset::{Column, Dataset};
use crate::schema::FeatureKind;
use crate::stats;

/// Per-feature encoding parameters, fit on a training set.
#[derive(Debug, Clone)]
enum FeatureEncoder {
    /// Real feature: `(x - mean) / std` (std clamped away from 0), missing → 0.
    Real {
        mean: f64,
        inv_std: f64,
    },
    /// Real feature passed through unscaled, missing → training mean.
    RealRaw {
        mean: f64,
    },
    /// Categorical feature: arity-wide indicator block, missing → all zeros.
    OneHot {
        arity: u32,
    },
}

impl FeatureEncoder {
    fn width(&self) -> usize {
        match self {
            FeatureEncoder::Real { .. } | FeatureEncoder::RealRaw { .. } => 1,
            FeatureEncoder::OneHot { arity } => *arity as usize,
        }
    }
}

/// A fitted encoding of a chosen set of input features.
///
/// `DesignSpec` is the reusable half of the pipeline: fit once on training
/// data, then [`DesignSpec::encode`] any data set with the same schema.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Indices (into the source schema) of the input features, in order.
    input_features: Vec<usize>,
    encoders: Vec<FeatureEncoder>,
    n_cols: usize,
}

impl DesignSpec {
    /// Fit an encoding for `input_features` of `train`.
    ///
    /// If `standardize` is true, real features are z-scored with statistics
    /// of the non-missing training values (the usual preparation for the
    /// regularized linear SVMs the paper uses); otherwise they pass through
    /// with mean imputation only.
    pub fn fit(train: &Dataset, input_features: &[usize], standardize: bool) -> Self {
        let mut encoders = Vec::with_capacity(input_features.len());
        let mut n_cols = 0usize;
        for &j in input_features {
            let enc = FeatureEncoder::fit(train, j, standardize);
            n_cols += enc.width();
            encoders.push(enc);
        }
        DesignSpec {
            input_features: input_features.to_vec(),
            encoders,
            n_cols,
        }
    }

    /// Number of encoded columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The input feature indices this spec encodes.
    #[inline]
    pub fn input_features(&self) -> &[usize] {
        &self.input_features
    }

    /// Check that this spec can encode datasets of `schema`: every input
    /// index in range, and every encoder's width matching the feature's
    /// one-hot width (a real encoder on a real feature, a k-wide one-hot
    /// on a k-ary categorical). Used to vet a reloaded model against a
    /// serving schema before it is allowed anywhere near the score path —
    /// a mismatch would otherwise surface as an out-of-bounds panic deep
    /// in the encode pool.
    pub fn validate_against(&self, schema: &crate::schema::Schema) -> Result<(), String> {
        for (&j, enc) in self.input_features.iter().zip(&self.encoders) {
            if j >= schema.len() {
                return Err(format!(
                    "input feature {j} out of range for a schema of {} features",
                    schema.len()
                ));
            }
            let want = schema.kind(j).one_hot_width();
            if enc.width() != want {
                return Err(format!(
                    "feature {j} (`{}`): encoded width {} does not match schema kind `{}`",
                    schema.feature(j).name,
                    enc.width(),
                    schema.kind(j)
                ));
            }
        }
        Ok(())
    }

    /// Serialize this spec into a [`crate::textio::TextWriter`] (model
    /// persistence).
    pub fn write_text(&self, w: &mut crate::textio::TextWriter) {
        w.line("designspec", [self.input_features.len()]);
        w.line("inputs", self.input_features.iter());
        for enc in &self.encoders {
            match enc {
                FeatureEncoder::Real { mean, inv_std } => {
                    w.floats("enc_real", &[*mean, *inv_std]);
                }
                FeatureEncoder::RealRaw { mean } => {
                    w.floats("enc_raw", &[*mean]);
                }
                FeatureEncoder::OneHot { arity } => {
                    w.line("enc_onehot", [*arity]);
                }
            }
        }
    }

    /// Parse a spec previously produced by [`DesignSpec::write_text`].
    pub fn parse_text(
        r: &mut crate::textio::TextReader<'_>,
    ) -> Result<Self, crate::textio::TextError> {
        let n: usize = r.parse_one("designspec")?;
        let input_features: Vec<usize> = r.parse_all("inputs")?;
        if input_features.len() != n {
            return Err(format!(
                "designspec declares {n} inputs but lists {}",
                input_features.len()
            )
            .into());
        }
        let mut encoders = Vec::with_capacity(n);
        let mut n_cols = 0usize;
        for _ in 0..n {
            let enc = if r.peek_is("enc_real") {
                let v: Vec<f64> = r.parse_all("enc_real")?;
                if v.len() != 2 {
                    return Err("enc_real expects mean inv_std".into());
                }
                FeatureEncoder::Real { mean: v[0], inv_std: v[1] }
            } else if r.peek_is("enc_raw") {
                let v: Vec<f64> = r.parse_all("enc_raw")?;
                if v.len() != 1 {
                    return Err("enc_raw expects mean".into());
                }
                FeatureEncoder::RealRaw { mean: v[0] }
            } else {
                let arity: u32 = r.parse_one("enc_onehot")?;
                FeatureEncoder::OneHot { arity }
            };
            n_cols += enc.width();
            encoders.push(enc);
        }
        Ok(DesignSpec { input_features, encoders, n_cols })
    }

    /// Encode all rows of `data` into a dense design matrix.
    ///
    /// # Panics
    /// Panics if `data`'s schema is incompatible with the features this spec
    /// was fit on (kind/arity mismatch).
    pub fn encode(&self, data: &Dataset) -> DesignMatrix {
        let n_rows = data.n_rows();
        let mut values = vec![0.0f64; n_rows * self.n_cols];
        let mut col_base = 0usize;
        for (&j, enc) in self.input_features.iter().zip(&self.encoders) {
            enc.encode_into(j, data, &mut values, self.n_cols, col_base);
            col_base += enc.width();
        }
        DesignMatrix { n_rows, n_cols: self.n_cols, values }
    }
}

impl FeatureEncoder {
    /// Fit the encoder for feature `j` of `train` — the single code path
    /// shared by [`DesignSpec::fit`] and [`PoolSpec::fit`], so pooled and
    /// per-target statistics are identical by construction.
    fn fit(train: &Dataset, j: usize, standardize: bool) -> FeatureEncoder {
        match train.schema().kind(j) {
            FeatureKind::Real => {
                let present = train.column(j).present_reals();
                let mean = stats::mean(&present).unwrap_or(0.0);
                if standardize {
                    let sd = stats::std_dev(&present).unwrap_or(0.0);
                    let inv_std = if sd > 1e-12 { 1.0 / sd } else { 0.0 };
                    FeatureEncoder::Real { mean, inv_std }
                } else {
                    FeatureEncoder::RealRaw { mean }
                }
            }
            FeatureKind::Categorical { arity } => FeatureEncoder::OneHot { arity },
        }
    }

    /// Write feature `j`'s encoded block into row-major `values` of row
    /// width `stride`, starting at column `col_base`. Shared by owned and
    /// pooled encodes so the produced bits cannot diverge.
    fn encode_into(&self, j: usize, data: &Dataset, values: &mut [f64], stride: usize, col_base: usize) {
        match (data.column(j), self) {
            (Column::Real(v), FeatureEncoder::Real { mean, inv_std }) => {
                for (r, &x) in v.iter().enumerate() {
                    let z = if x.is_nan() { 0.0 } else { (x - mean) * inv_std };
                    values[r * stride + col_base] = z;
                }
            }
            (Column::Real(v), FeatureEncoder::RealRaw { mean }) => {
                for (r, &x) in v.iter().enumerate() {
                    let z = if x.is_nan() { *mean } else { x };
                    values[r * stride + col_base] = z;
                }
            }
            (Column::Categorical { arity, codes }, FeatureEncoder::OneHot { arity: a }) => {
                assert_eq!(arity, a, "arity mismatch between spec and data");
                for (r, &c) in codes.iter().enumerate() {
                    if c != crate::dataset::MISSING_CODE {
                        values[r * stride + col_base + c as usize] = 1.0;
                    }
                }
            }
            (col, enc) => panic!(
                "feature {j}: column kind {:?} incompatible with encoder {enc:?}",
                col.kind()
            ),
        }
    }
}

/// A fitted encoding of *every* pooled feature of a schema, fit once.
///
/// Where [`DesignSpec`] answers "how do I encode these inputs for this
/// target", `PoolSpec` answers it for all targets at once: each feature's
/// statistics are computed a single time, and any per-target [`DesignSpec`]
/// is assembled from the pooled encoders by [`PoolSpec::spec_for`] with
/// bit-identical parameters (same code path fits both).
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Encoder per schema feature; `None` for features left out of the pool
    /// (e.g. when rebuilt from a persisted model that only used a subset).
    encoders: Vec<Option<FeatureEncoder>>,
    /// `col_offsets[j]` is the first pool column of feature `j`;
    /// `col_offsets[n_features]` == total pool width. Absent features have
    /// zero width.
    col_offsets: Vec<usize>,
}

impl PoolSpec {
    /// Fit encoders for `features` of `train` (same statistics code path as
    /// [`DesignSpec::fit`]). `n_features` is the schema width.
    pub fn fit(train: &Dataset, features: &[usize], standardize: bool) -> Self {
        let n_features = train.n_features();
        let mut encoders: Vec<Option<FeatureEncoder>> = vec![None; n_features];
        for &j in features {
            if encoders[j].is_none() {
                encoders[j] = Some(FeatureEncoder::fit(train, j, standardize));
            }
        }
        PoolSpec::from_encoders(encoders)
    }

    /// Rebuild a (possibly sparse) pool spec from per-target specs — the
    /// scoring path after loading a persisted model, where only the stored
    /// [`DesignSpec`]s survive. Overlapping features must agree; the first
    /// occurrence wins (they are identical for any one trained model).
    pub fn from_specs<'a>(n_features: usize, specs: impl IntoIterator<Item = &'a DesignSpec>) -> Self {
        let mut encoders: Vec<Option<FeatureEncoder>> = vec![None; n_features];
        for spec in specs {
            for (&j, enc) in spec.input_features.iter().zip(&spec.encoders) {
                if encoders[j].is_none() {
                    encoders[j] = Some(enc.clone());
                }
            }
        }
        PoolSpec::from_encoders(encoders)
    }

    fn from_encoders(encoders: Vec<Option<FeatureEncoder>>) -> Self {
        let mut col_offsets = Vec::with_capacity(encoders.len() + 1);
        let mut off = 0usize;
        for enc in &encoders {
            col_offsets.push(off);
            off += enc.as_ref().map_or(0, FeatureEncoder::width);
        }
        col_offsets.push(off);
        PoolSpec { encoders, col_offsets }
    }

    /// Number of schema features the pool spans.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.encoders.len()
    }

    /// Total encoded pool width.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.col_offsets.last().copied().unwrap_or(0)
    }

    /// True when feature `j` has a fitted encoder in the pool.
    #[inline]
    pub fn covers(&self, j: usize) -> bool {
        self.encoders[j].is_some()
    }

    /// The per-target [`DesignSpec`] for `inputs`, assembled from pooled
    /// encoders — identical (parameters and persisted form) to fitting a
    /// fresh spec on the same training data.
    ///
    /// # Panics
    /// Panics if any input feature is not covered by the pool.
    pub fn spec_for(&self, inputs: &[usize]) -> DesignSpec {
        let mut encoders = Vec::with_capacity(inputs.len());
        let mut n_cols = 0usize;
        for &j in inputs {
            let enc = self.encoders[j]
                .as_ref()
                .unwrap_or_else(|| panic!("feature {j} not covered by the pool"))
                .clone();
            n_cols += enc.width();
            encoders.push(enc);
        }
        DesignSpec { input_features: inputs.to_vec(), encoders, n_cols }
    }

    /// Encode every covered feature of `data` once, producing the shared
    /// backing store all per-target views borrow from.
    pub fn encode(&self, data: &Dataset) -> EncodedPool {
        let n_rows = data.n_rows();
        let n_cols = self.n_cols();
        let mut values = vec![0.0f64; n_rows * n_cols];
        for (j, enc) in self.encoders.iter().enumerate() {
            if let Some(enc) = enc {
                enc.encode_into(j, data, &mut values, n_cols, self.col_offsets[j]);
            }
        }
        EncodedPool { spec: self.clone(), n_rows, n_cols, values }
    }
}

/// Every covered feature of a data set, encoded once into one row-major
/// block. Per-target design matrices are served as [`PoolView`]s that
/// borrow this storage — encoding work and resident bytes are paid once
/// per data set instead of once per target feature.
#[derive(Debug, Clone)]
pub struct EncodedPool {
    spec: PoolSpec,
    n_rows: usize,
    n_cols: usize,
    values: Vec<f64>,
}

impl EncodedPool {
    /// Number of encoded rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total encoded pool width.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The spec this pool was encoded with.
    #[inline]
    pub fn spec(&self) -> &PoolSpec {
        &self.spec
    }

    /// Resident bytes of the shared backing store — charged once per run
    /// by the resource meter, replacing per-target matrix bytes.
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }

    /// Number of encoded cells (`n_rows × n_cols`) — the unit the
    /// telemetry layer counts encode work in.
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.values.len()
    }

    /// Zero-copy design view over `inputs` (ascending schema order is the
    /// convention everywhere in the workspace; the view's column order is
    /// exactly the owned `DesignSpec::fit(inputs).encode(..)` column order).
    ///
    /// # Panics
    /// Panics if any input is not covered by the pool.
    pub fn view(&self, inputs: &[usize]) -> PoolView<'_> {
        let offs = &self.spec.col_offsets;
        let mut segments: Vec<(usize, usize)> = Vec::new();
        let mut col_map = Vec::new();
        for &j in inputs {
            assert!(self.spec.covers(j), "feature {j} not covered by the pool");
            let start = offs[j];
            let width = offs[j + 1] - start;
            match segments.last_mut() {
                // Adjacent pool columns merge into one contiguous segment,
                // so whole-row ops degrade to a single slice in the common
                // all-features-but-one case.
                Some((s, w)) if *s + *w == start => *w += width,
                _ => segments.push((start, width)),
            }
            col_map.extend(start..start + width);
        }
        PoolView {
            values: &self.values,
            stride: self.n_cols,
            n_rows: self.n_rows,
            n_cols: col_map.len(),
            segments,
            col_map,
        }
    }
}

/// A per-target design matrix served zero-copy from an [`EncodedPool`].
///
/// Holds only the segment list and a view-column → pool-column map; all
/// `f64` storage is borrowed. Row-wise operations walk the segments in
/// ascending column order, so their floating-point fold order — and hence
/// every downstream model parameter — is bit-identical to the owned
/// [`DesignMatrix`] path.
#[derive(Debug, Clone)]
pub struct PoolView<'a> {
    values: &'a [f64],
    stride: usize,
    n_rows: usize,
    n_cols: usize,
    /// Maximal contiguous pool-column runs `(start, width)`, ascending.
    segments: Vec<(usize, usize)>,
    /// View column → pool column.
    col_map: Vec<usize>,
}

impl DesignView for PoolView<'_> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn get(&self, r: usize, c: usize) -> f64 {
        self.values[r * self.stride + self.col_map[c]]
    }

    fn row_dot_acc(&self, r: usize, w: &[f64], init: f64) -> f64 {
        let base = r * self.stride;
        let mut acc = init;
        let mut wo = 0usize;
        for &(start, width) in &self.segments {
            let seg = &self.values[base + start..base + start + width];
            for (wv, xv) in w[wo..wo + width].iter().zip(seg) {
                acc += wv * xv;
            }
            wo += width;
        }
        acc
    }

    fn row_sq_norm(&self, r: usize) -> f64 {
        let base = r * self.stride;
        // Single left-to-right fold across segments: same order as the
        // owned row's `iter().map(|v| v * v).sum()`.
        let mut acc = 0.0;
        for &(start, width) in &self.segments {
            for xv in &self.values[base + start..base + start + width] {
                acc += xv * xv;
            }
        }
        acc
    }

    fn axpy_row(&self, r: usize, alpha: f64, w: &mut [f64]) {
        let base = r * self.stride;
        let mut wo = 0usize;
        for &(start, width) in &self.segments {
            let seg = &self.values[base + start..base + start + width];
            for (wv, xv) in w[wo..wo + width].iter_mut().zip(seg) {
                *wv += alpha * xv;
            }
            wo += width;
        }
    }

    fn copy_row_into(&self, r: usize, buf: &mut [f64]) {
        let base = r * self.stride;
        let mut wo = 0usize;
        for &(start, width) in &self.segments {
            buf[wo..wo + width].copy_from_slice(&self.values[base + start..base + start + width]);
            wo += width;
        }
    }

    fn row_dot_blocked(&self, r: usize, w: &[f64], init: f64) -> f64 {
        let base = r * self.stride;
        let mut acc = init;
        let mut wo = 0usize;
        for &(start, width) in &self.segments {
            let seg = &self.values[base + start..base + start + width];
            acc = crate::kernels::dot_blocked(seg, &w[wo..wo + width], acc);
            wo += width;
        }
        acc
    }

    fn row_sq_norm_blocked(&self, r: usize) -> f64 {
        let base = r * self.stride;
        let mut acc = 0.0;
        for &(start, width) in &self.segments {
            acc = crate::kernels::sq_norm_blocked(
                &self.values[base + start..base + start + width],
                acc,
            );
        }
        acc
    }

    fn axpy_row_blocked(&self, r: usize, alpha: f64, w: &mut [f64]) {
        let base = r * self.stride;
        let mut wo = 0usize;
        for &(start, width) in &self.segments {
            let seg = &self.values[base + start..base + start + width];
            crate::kernels::axpy_blocked(alpha, seg, &mut w[wo..wo + width]);
            wo += width;
        }
    }

    fn row_dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        let base = r * self.stride;
        let mut acc = init;
        let mut wo = 0usize;
        for &(start, width) in &self.segments {
            let seg = &self.values[base + start..base + start + width];
            acc = crate::kernels::dot_f32_blocked(seg, &w[wo..wo + width], acc);
            wo += width;
        }
        acc
    }

    fn col(&self, c: usize) -> ColRef<'_> {
        ColRef {
            values: self.values,
            first: self.col_map[c],
            stride: self.stride,
            rows: RowIx::Direct,
            len: self.n_rows,
        }
    }

    fn view_overhead_bytes(&self) -> usize {
        self.segments.len() * std::mem::size_of::<(usize, usize)>()
            + self.col_map.len() * std::mem::size_of::<usize>()
    }
}

/// Row indirection levels supported by [`ColRef`].
///
/// Views compose at most two row subsets on top of backing storage (a
/// presence filter, then a CV fold), so two explicit levels cover every
/// call path without allocation.
#[derive(Debug, Clone, Copy)]
enum RowIx<'a> {
    /// View row `i` is storage row `i`.
    Direct,
    /// View row `i` is storage row `map[i]`.
    One(&'a [usize]),
    /// View row `i` is storage row `inner[outer[i]]`.
    Two(&'a [usize], &'a [usize]),
}

/// Borrowed, strided access to one column of a design view — no
/// per-call allocation, unlike [`DesignMatrix::col`].
#[derive(Debug, Clone, Copy)]
pub struct ColRef<'a> {
    values: &'a [f64],
    first: usize,
    stride: usize,
    rows: RowIx<'a>,
    len: usize,
}

impl<'a> ColRef<'a> {
    /// Number of (view) rows in the column.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value at view row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        let r = match self.rows {
            RowIx::Direct => i,
            RowIx::One(map) => map[i],
            RowIx::Two(outer, inner) => inner[outer[i]],
        };
        self.values[self.first + r * self.stride]
    }

    /// The column restricted to `rows` (indices into this column's rows).
    ///
    /// # Panics
    /// Panics if the column is already two indirection levels deep — the
    /// workspace never stacks row subsets deeper than presence + CV fold.
    fn push_rows(self, rows: &'a [usize]) -> ColRef<'a> {
        let pushed = match self.rows {
            RowIx::Direct => RowIx::One(rows),
            RowIx::One(inner) => RowIx::Two(rows, inner),
            RowIx::Two(..) => panic!("column row indirection deeper than two levels"),
        };
        ColRef { rows: pushed, len: rows.len(), ..self }
    }
}

/// Read access to an encoded design matrix, owned or pool-backed.
///
/// Every trainer consumes this trait instead of a concrete
/// [`DesignMatrix`], so per-target problems can be served as zero-copy
/// views over a shared [`EncodedPool`]. The row-wise operations fold in
/// **ascending column order** from the given initial value; implementations
/// must preserve that order exactly, because the SVM solvers' results are
/// bit-for-bit reproductions of sequential accumulation over rows.
pub trait DesignView: Sync {
    /// Number of rows (samples).
    fn n_rows(&self) -> usize;

    /// Number of columns (encoded inputs).
    fn n_cols(&self) -> usize;

    /// Entry at (`r`, `c`).
    fn get(&self, r: usize, c: usize) -> f64;

    /// `init + Σ_j w[j]·x[r][j]`, accumulated left to right.
    fn row_dot_acc(&self, r: usize, w: &[f64], init: f64) -> f64;

    /// `Σ_j x[r][j]²`, accumulated left to right from zero.
    fn row_sq_norm(&self, r: usize) -> f64;

    /// `w[j] += alpha · x[r][j]` for every column `j`.
    fn axpy_row(&self, r: usize, alpha: f64, w: &mut [f64]);

    /// Materialize row `r` into `buf` (`buf.len() == n_cols`).
    fn copy_row_into(&self, r: usize, buf: &mut [f64]);

    /// Borrowed strided access to column `c`.
    fn col(&self, c: usize) -> ColRef<'_>;

    /// Dot product of row `r` with `w` (same fold order as the owned path).
    fn row_dot(&self, r: usize, w: &[f64]) -> f64 {
        self.row_dot_acc(r, w, 0.0)
    }

    /// Blocked (4-wide unrolled) variant of [`Self::row_dot_acc`] for the
    /// solver fast path. Not bit-identical to the sequential fold (lane
    /// grouping differs), but deterministic for a fixed view shape. The
    /// default falls back to the exact kernel.
    fn row_dot_blocked(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.row_dot_acc(r, w, init)
    }

    /// Blocked variant of [`Self::row_sq_norm`]; see
    /// [`Self::row_dot_blocked`] for the determinism contract.
    fn row_sq_norm_blocked(&self, r: usize) -> f64 {
        self.row_sq_norm(r)
    }

    /// Blocked variant of [`Self::axpy_row`] (bit-identical to the exact
    /// kernel — axpy has no cross-lane reduction — just faster).
    fn axpy_row_blocked(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.axpy_row(r, alpha, w);
    }

    /// Mixed-precision variant of [`Self::row_dot_blocked`] for the fast
    /// solver path's optional f32 mode: products computed in f32,
    /// accumulated in f64 ([`crate::kernels::dot_f32_blocked`]). The
    /// default falls back to the full-precision blocked kernel, which is
    /// always within the f32 mode's documented tolerance.
    fn row_dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.row_dot_blocked(r, w, init)
    }

    /// Bytes this view holds beyond the storage it borrows (row-index
    /// vectors, column maps) — the working-set cost of serving it.
    fn view_overhead_bytes(&self) -> usize {
        0
    }
}

/// A [`DesignView`] restricted to a row subset, in order, without copying.
///
/// Replaces [`DesignMatrix::select_rows`] in the training paths: presence
/// filtering and k-fold CV both stack one of these on the underlying view.
#[derive(Debug, Clone, Copy)]
pub struct RowSubset<'a, D: ?Sized> {
    inner: &'a D,
    rows: &'a [usize],
}

impl<'a, D: DesignView + ?Sized> RowSubset<'a, D> {
    /// View of `inner` restricted to `rows` (each `< inner.n_rows()`).
    pub fn new(inner: &'a D, rows: &'a [usize]) -> Self {
        debug_assert!(rows.iter().all(|&r| r < inner.n_rows()));
        RowSubset { inner, rows }
    }
}

impl<D: DesignView + ?Sized> DesignView for RowSubset<'_, D> {
    fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn n_cols(&self) -> usize {
        self.inner.n_cols()
    }

    fn get(&self, r: usize, c: usize) -> f64 {
        self.inner.get(self.rows[r], c)
    }

    fn row_dot_acc(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.inner.row_dot_acc(self.rows[r], w, init)
    }

    fn row_sq_norm(&self, r: usize) -> f64 {
        self.inner.row_sq_norm(self.rows[r])
    }

    fn axpy_row(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.inner.axpy_row(self.rows[r], alpha, w);
    }

    fn copy_row_into(&self, r: usize, buf: &mut [f64]) {
        self.inner.copy_row_into(self.rows[r], buf);
    }

    fn row_dot_blocked(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.inner.row_dot_blocked(self.rows[r], w, init)
    }

    fn row_sq_norm_blocked(&self, r: usize) -> f64 {
        self.inner.row_sq_norm_blocked(self.rows[r])
    }

    fn axpy_row_blocked(&self, r: usize, alpha: f64, w: &mut [f64]) {
        self.inner.axpy_row_blocked(self.rows[r], alpha, w);
    }

    fn row_dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        self.inner.row_dot_f32(self.rows[r], w, init)
    }

    fn col(&self, c: usize) -> ColRef<'_> {
        self.inner.col(c).push_rows(self.rows)
    }

    fn view_overhead_bytes(&self) -> usize {
        std::mem::size_of_val(self.rows)
    }
}

/// A dense, row-major, all-real matrix of encoded input features.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMatrix {
    n_rows: usize,
    n_cols: usize,
    values: Vec<f64>,
}

impl DesignView for DesignMatrix {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn get(&self, r: usize, c: usize) -> f64 {
        DesignMatrix::get(self, r, c)
    }

    fn row_dot_acc(&self, r: usize, w: &[f64], init: f64) -> f64 {
        let mut acc = init;
        for (wv, xv) in w.iter().zip(self.row(r)) {
            acc += wv * xv;
        }
        acc
    }

    fn row_sq_norm(&self, r: usize) -> f64 {
        self.row(r).iter().map(|v| v * v).sum()
    }

    fn axpy_row(&self, r: usize, alpha: f64, w: &mut [f64]) {
        for (wv, xv) in w.iter_mut().zip(self.row(r)) {
            *wv += alpha * xv;
        }
    }

    fn copy_row_into(&self, r: usize, buf: &mut [f64]) {
        buf.copy_from_slice(self.row(r));
    }

    fn row_dot_blocked(&self, r: usize, w: &[f64], init: f64) -> f64 {
        crate::kernels::dot_blocked(self.row(r), w, init)
    }

    fn row_sq_norm_blocked(&self, r: usize) -> f64 {
        crate::kernels::sq_norm_blocked(self.row(r), 0.0)
    }

    fn axpy_row_blocked(&self, r: usize, alpha: f64, w: &mut [f64]) {
        crate::kernels::axpy_blocked(alpha, self.row(r), w);
    }

    fn row_dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        crate::kernels::dot_f32_blocked(self.row(r), w, init)
    }

    fn col(&self, c: usize) -> ColRef<'_> {
        assert!(c < self.n_cols, "column {c} out of range");
        ColRef {
            values: &self.values,
            first: c,
            stride: self.n_cols,
            rows: RowIx::Direct,
            len: self.n_rows,
        }
    }
}

/// A dense row-major copy of a design view, packed once per solve.
///
/// Dual coordinate descent revisits every row once per epoch, so the fast
/// solver path pays the one-time gather here to make each visit a single
/// contiguous kernel call — no virtual dispatch, no row-subset remap, no
/// per-segment loop. Packing merges a view's pool segments into one slice
/// per row, which changes the reduction kernels' block boundaries: results
/// can differ from the segmented view path in the last bits (covered by
/// the fast path's tolerance contract; strict mode never packs).
///
/// [`PackedDesign::from_view`] refuses designs beyond [`Self::MAX_ELEMS`]
/// so transient solver scratch stays bounded on very wide problems; the
/// caller falls back to the zero-copy view path.
#[derive(Debug, Clone)]
pub struct PackedDesign {
    values: Vec<f64>,
    /// Optional contiguous f32 mirror of `values`, built on demand for the
    /// solver's f32-compute mode: the mixed-precision dot then reads
    /// unit-stride f32 rows ([`crate::kernels::dot_f32_packed`]) instead of
    /// demoting f64 lanes on every visit.
    values_f32: Option<Vec<f32>>,
    n_rows: usize,
    n_cols: usize,
}

impl PackedDesign {
    /// Packing budget: at most `2^22` f64 elements (32 MiB) per solve.
    pub const MAX_ELEMS: usize = 1 << 22;

    /// Gather `x` into a contiguous row-major buffer, or `None` when the
    /// design exceeds [`Self::MAX_ELEMS`] (caller keeps the view path).
    pub fn from_view(x: &dyn DesignView) -> Option<Self> {
        let (n_rows, n_cols) = (x.n_rows(), x.n_cols());
        let elems = n_rows.checked_mul(n_cols)?;
        if elems > Self::MAX_ELEMS {
            return None;
        }
        let mut values = vec![0.0f64; elems];
        for (r, buf) in values.chunks_exact_mut(n_cols.max(1)).enumerate() {
            x.copy_row_into(r, buf);
        }
        Some(PackedDesign { values, values_f32: None, n_rows, n_cols })
    }

    /// Build the contiguous f32 mirror (idempotent). Each element is the
    /// same `as f32` demotion the mixed-precision kernel performs per
    /// visit, so mirror-path dots are bit-identical to
    /// [`crate::kernels::dot_f32_blocked`] over the f64 rows — the
    /// demotion just happens once at pack time instead of every epoch.
    pub fn ensure_f32(&mut self) {
        if self.values_f32.is_none() {
            self.values_f32 = Some(self.values.iter().map(|&v| v as f32).collect());
        }
    }

    /// Whether the f32 mirror has been built.
    pub fn has_f32(&self) -> bool {
        self.values_f32.is_some()
    }

    /// Resident bytes of the packed buffer(s) — the solver's pack cache
    /// caps its footprint with this.
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.values_f32.as_ref().map_or(0, |m| m.len() * std::mem::size_of::<f32>())
    }

    /// Number of packed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of packed columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Row `r` as one contiguous slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.values[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// `init + w · row(r)` through the dispatched blocked kernel.
    pub fn row_dot_blocked(&self, r: usize, w: &[f64], init: f64) -> f64 {
        crate::kernels::dot_blocked(self.row(r), w, init)
    }

    /// `Σ_j row(r)[j]²` through the dispatched blocked kernel.
    pub fn row_sq_norm_blocked(&self, r: usize) -> f64 {
        crate::kernels::sq_norm_blocked(self.row(r), 0.0)
    }

    /// `w += alpha · row(r)` through the blocked kernel (bit-identical to
    /// the exact kernel — axpy has no cross-lane reduction).
    pub fn axpy_row_blocked(&self, r: usize, alpha: f64, w: &mut [f64]) {
        crate::kernels::axpy_blocked(alpha, self.row(r), w);
    }

    /// Mixed-precision dot for the solver's f32 mode (f32 products, f64
    /// accumulation). Reads the unit-stride f32 mirror when
    /// [`Self::ensure_f32`] has built it — bit-identical to the demote-
    /// per-visit path within a kernel tier, just without the per-element
    /// f64 loads and converts — and falls back to demoting the f64 row
    /// otherwise.
    pub fn row_dot_f32(&self, r: usize, w: &[f64], init: f64) -> f64 {
        match &self.values_f32 {
            Some(m) => crate::kernels::dot_f32_packed(
                &m[r * self.n_cols..(r + 1) * self.n_cols],
                w,
                init,
            ),
            None => crate::kernels::dot_f32_blocked(self.row(r), w, init),
        }
    }
}

impl DesignMatrix {
    /// Build directly from row-major storage.
    ///
    /// # Panics
    /// Panics if `values.len() != n_rows * n_cols`.
    pub fn from_raw(n_rows: usize, n_cols: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n_rows * n_cols, "shape mismatch");
        DesignMatrix { n_rows, n_cols, values }
    }

    /// An `n_rows × 0` matrix (useful for degenerate feature subsets:
    /// predictors then learn a constant).
    pub fn empty(n_rows: usize) -> Self {
        DesignMatrix { n_rows, n_cols: 0, values: Vec::new() }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (encoded inputs).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.values[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Entry at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.values[r * self.n_cols + c]
    }

    /// Gather column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.n_rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix restricted to `rows` (in order) — used by the k-fold splitter.
    pub fn select_rows(&self, rows: &[usize]) -> DesignMatrix {
        let mut values = Vec::with_capacity(rows.len() * self.n_cols);
        for &r in rows {
            values.extend_from_slice(self.row(r));
        }
        DesignMatrix { n_rows: rows.len(), n_cols: self.n_cols, values }
    }

    /// Dot product of row `r` with a weight vector.
    ///
    /// # Panics
    /// Panics if `w.len() != n_cols`.
    #[inline]
    pub fn row_dot(&self, r: usize, w: &[f64]) -> f64 {
        let row = self.row(r);
        assert_eq!(w.len(), row.len());
        row.iter().zip(w).map(|(a, b)| a * b).sum()
    }

    /// The backing storage (row-major).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Resident bytes of the backing storage — input to the resource meter.
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, MISSING_CODE};

    fn mixed() -> Dataset {
        DatasetBuilder::new()
            .real("e1", vec![1.0, 2.0, 3.0, 4.0])
            .real("e2", vec![10.0, f64::NAN, 30.0, 40.0])
            .categorical("snp", 3, vec![0, 1, 2, MISSING_CODE])
            .build()
    }

    #[test]
    fn one_hot_block_matches_fig2() {
        let d = mixed();
        let spec = DesignSpec::fit(&d, &[2], false);
        assert_eq!(spec.n_cols(), 3);
        let m = spec.encode(&d);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 1.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 1.0]);
        // Missing categorical → all-zero indicator block.
        assert_eq!(m.row(3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn standardization_zero_mean_unit_var() {
        let d = mixed();
        let spec = DesignSpec::fit(&d, &[0], true);
        let m = spec.encode(&d);
        let col = m.col(0);
        let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
        assert!(mean.abs() < 1e-12);
        let var: f64 = col.iter().map(|x| x * x).sum::<f64>() / (col.len() - 1) as f64;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_real_imputes_mean() {
        let d = mixed();
        // Standardized: missing → 0 == the training mean.
        let spec = DesignSpec::fit(&d, &[1], true);
        let m = spec.encode(&d);
        assert_eq!(m.get(1, 0), 0.0);
        // Raw: missing → literal training mean of the present values.
        let spec = DesignSpec::fit(&d, &[1], false);
        let m = spec.encode(&d);
        let mean = (10.0 + 30.0 + 40.0) / 3.0;
        assert!((m.get(1, 0) - mean).abs() < 1e-12);
    }

    #[test]
    fn spec_fit_on_train_applies_to_test() {
        let d = mixed();
        let train = d.select_rows(&[0, 1]);
        let test = d.select_rows(&[2, 3]);
        let spec = DesignSpec::fit(&train, &[0], false);
        let m = spec.encode(&test);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn constant_feature_encodes_to_zero() {
        let d = DatasetBuilder::new().real("c", vec![5.0, 5.0, 5.0]).build();
        let spec = DesignSpec::fit(&d, &[0], true);
        let m = spec.encode(&d);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mixed_spec_concatenates_blocks() {
        let d = mixed();
        let spec = DesignSpec::fit(&d, &[0, 2, 1], false);
        assert_eq!(spec.n_cols(), 1 + 3 + 1);
        let m = spec.encode(&d);
        assert_eq!(m.row(0), &[1.0, 1.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn row_dot_and_select_rows() {
        let m = DesignMatrix::from_raw(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row_dot(1, &[1.0, 0.0, -1.0]), -2.0);
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn spec_text_roundtrip() {
        let d = mixed();
        for standardize in [true, false] {
            let spec = DesignSpec::fit(&d, &[0, 2, 1], standardize);
            let mut w = crate::textio::TextWriter::new();
            spec.write_text(&mut w);
            let text = w.finish();
            let mut r = crate::textio::TextReader::new(&text);
            let back = DesignSpec::parse_text(&mut r).unwrap();
            assert_eq!(back.input_features(), spec.input_features());
            assert_eq!(back.n_cols(), spec.n_cols());
            // Encodings agree exactly on data.
            assert_eq!(back.encode(&d), spec.encode(&d));
        }
    }

    #[test]
    fn empty_matrix_has_zero_cols() {
        let m = DesignMatrix::empty(4);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.row(2), &[] as &[f64]);
    }

    /// Every view entry must equal the owned matrix entry bit for bit.
    fn assert_view_matches(view: &dyn DesignView, owned: &DesignMatrix) {
        assert_eq!(view.n_rows(), owned.n_rows());
        assert_eq!(view.n_cols(), owned.n_cols());
        for r in 0..owned.n_rows() {
            for c in 0..owned.n_cols() {
                assert_eq!(view.get(r, c).to_bits(), owned.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn pool_view_matches_owned_encode_bitwise() {
        let d = mixed();
        for standardize in [true, false] {
            let pool_spec = PoolSpec::fit(&d, &[0, 1, 2], standardize);
            let pool = pool_spec.encode(&d);
            // All-but-one input sets, plus a gap set that skips the middle.
            for inputs in [vec![1usize, 2], vec![0, 2], vec![0, 1], vec![0, 2]] {
                let spec = DesignSpec::fit(&d, &inputs, standardize);
                let owned = spec.encode(&d);
                let view = pool.view(&inputs);
                assert_view_matches(&view, &owned);
                // Row-wise ops fold identically.
                let w: Vec<f64> = (0..owned.n_cols()).map(|c| 0.3 * c as f64 - 0.7).collect();
                for r in 0..owned.n_rows() {
                    let mut acc = 0.25;
                    for (wv, xv) in w.iter().zip(owned.row(r)) {
                        acc += wv * xv;
                    }
                    assert_eq!(view.row_dot_acc(r, &w, 0.25).to_bits(), acc.to_bits());
                    let sq: f64 = owned.row(r).iter().map(|v| v * v).sum();
                    assert_eq!(view.row_sq_norm(r).to_bits(), sq.to_bits());
                    let mut wa = w.clone();
                    let mut wb = w.clone();
                    view.axpy_row(r, 1.5, &mut wa);
                    for (wv, xv) in wb.iter_mut().zip(owned.row(r)) {
                        *wv += 1.5 * xv;
                    }
                    assert_eq!(wa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                               wb.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
                    let mut buf = vec![0.0; owned.n_cols()];
                    view.copy_row_into(r, &mut buf);
                    assert_eq!(buf, owned.row(r));
                }
            }
        }
    }

    #[test]
    fn pool_spec_for_agrees_with_fresh_fit() {
        let d = mixed();
        let pool_spec = PoolSpec::fit(&d, &[0, 1, 2], true);
        let assembled = pool_spec.spec_for(&[0, 2]);
        let fresh = DesignSpec::fit(&d, &[0, 2], true);
        assert_eq!(assembled.input_features(), fresh.input_features());
        assert_eq!(assembled.n_cols(), fresh.n_cols());
        assert_eq!(assembled.encode(&d), fresh.encode(&d));
        // Persisted form is identical too (format compatibility).
        let mut wa = crate::textio::TextWriter::new();
        assembled.write_text(&mut wa);
        let mut wf = crate::textio::TextWriter::new();
        fresh.write_text(&mut wf);
        assert_eq!(wa.finish(), wf.finish());
    }

    #[test]
    fn pool_from_specs_rebuilds_sparse_pool() {
        let d = mixed();
        let s01 = DesignSpec::fit(&d, &[0, 1], true);
        let s10 = DesignSpec::fit(&d, &[1, 0], true);
        let pool_spec = PoolSpec::from_specs(3, [&s01, &s10]);
        assert!(pool_spec.covers(0));
        assert!(pool_spec.covers(1));
        assert!(!pool_spec.covers(2));
        let pool = pool_spec.encode(&d);
        assert_eq!(pool.n_cols(), 2);
        let owned = s01.encode(&d);
        assert_view_matches(&pool.view(&[0, 1]), &owned);
    }

    #[test]
    fn row_subset_views_compose() {
        let m = DesignMatrix::from_raw(4, 2, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0]);
        let present = [0usize, 2, 3];
        let sub = RowSubset::new(&m, &present);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.get(1, 1), 21.0);
        assert_eq!(DesignView::col(&sub, 0).get(2), 30.0);
        // Second level: a CV fold over the presence-filtered rows.
        let fold = [2usize, 0];
        let sub2 = RowSubset::new(&sub, &fold[..]);
        assert_eq!(sub2.n_rows(), 2);
        assert_eq!(sub2.get(0, 0), 30.0);
        assert_eq!(sub2.get(1, 0), 0.0);
        let col = DesignView::col(&sub2, 1);
        assert_eq!(col.len(), 2);
        assert_eq!(col.get(0), 31.0);
        assert_eq!(col.get(1), 1.0);
        let mut buf = [0.0; 2];
        sub2.copy_row_into(0, &mut buf);
        assert_eq!(buf, [30.0, 31.0]);
        assert_eq!(sub2.view_overhead_bytes(), 2 * std::mem::size_of::<usize>());
    }

    #[test]
    fn pool_view_overhead_is_small() {
        let d = mixed();
        let pool = PoolSpec::fit(&d, &[0, 1, 2], true).encode(&d);
        let view = pool.view(&[0, 1]);
        // Adjacent features merge into one contiguous segment.
        assert_eq!(view.segments.len(), 1);
        assert_eq!(pool.view(&[0, 2]).segments.len(), 2);
        assert!(view.view_overhead_bytes() < pool.approx_bytes());
    }
}
