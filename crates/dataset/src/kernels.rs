//! Vectorized inner-loop kernels for the solver fast path.
//!
//! The SVM coordinate-descent sweeps spend almost all their time in three
//! row-wise primitives: `dot`, `axpy`, and squared norm. Two implementation
//! tiers exist, selected **once per process** into a kernel table of plain
//! function pointers, so the dispatch decision never sits in an inner loop:
//!
//! * [`KernelTier::Avx2Fma`] — explicit `std::arch` x86_64 AVX2/FMA
//!   kernels, 16 lanes per iteration in four independent 256-bit
//!   accumulator registers (enough chains to hide the FMA latency).
//!   Installed only after `is_x86_feature_detected!` confirms both
//!   features at runtime.
//! * [`KernelTier::Unrolled`] — the portable fallback: 4-wide unrolled
//!   scalar loops with independent accumulators (the compiler keeps them in
//!   separate registers / SIMD lanes), which breaks the ~4-cycle FP latency
//!   chain of a strict left-to-right fold.
//!
//! The lane split changes floating-point summation *grouping*, so blocked
//! results are not bit-identical to the sequential fold — they are used only
//! by the fast solver path ([`crate::DesignView::row_dot_blocked`] and
//! friends); the strict reference path keeps the exact sequential kernels.
//! `axpy` is the exception: it has no cross-lane reduction, so **every tier
//! is bit-identical** to the sequential loop (each lane performs the same
//! multiply-then-add double rounding — the AVX2 tier deliberately avoids
//! FMA there). Within one tier the grouping is a deterministic function of
//! the slice length, so fast-path results are reproducible run to run and
//! across thread counts on one machine; across machines the resolved tier
//! may differ, which is why the selected tier is recorded in telemetry and
//! the perf snapshots.
//!
//! [`dot_f32_blocked`] is the optional mixed-precision kernel for the SVR /
//! SVC duals (`SolverMode::Fast` only): products are computed in f32 and
//! accumulated in f64, halving multiply precision (~1.2e-7 relative per
//! product) without ever letting the accumulation itself drift. See
//! DESIGN.md §12 for the error model.
//!
//! The environment variable `FRAC_KERNEL_TIER` (`avx2` / `unrolled`, plus
//! aliases below) overrides auto-detection at first use; [`force_tier`]
//! overrides it at any point thereafter (benchmark A/B harnesses swap tiers
//! mid-process). Forcing `avx2` on hardware without AVX2+FMA silently falls
//! back to the portable tier — the table never holds kernels the CPU cannot
//! execute.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicPtr, Ordering};

/// An implementation tier of the blocked kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable 4-wide unrolled scalar kernels (every platform).
    Unrolled,
    /// Explicit AVX2 + FMA kernels (x86_64 with both features detected).
    Avx2Fma,
}

/// Telemetry bit flag for a strict-mode solve (exact sequential kernels,
/// not part of the dispatch table). See [`KernelTier::code`].
pub const SEQUENTIAL_STRICT_CODE: u64 = 4;

impl KernelTier {
    /// Stable display / serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelTier::Unrolled => "unrolled",
            KernelTier::Avx2Fma => "avx2+fma",
        }
    }

    /// Telemetry bit flag: 1 = unrolled, 2 = avx2+fma (4 is
    /// [`SEQUENTIAL_STRICT_CODE`]). The `kernel_tier` counter OR-merges
    /// these into a mask of every tier the session's fits used, so a run
    /// mixing strict and fast families (or repeated fits) stays decodable
    /// — see [`describe_mask`].
    pub fn code(self) -> u64 {
        match self {
            KernelTier::Unrolled => 1,
            KernelTier::Avx2Fma => 2,
        }
    }

    /// Parse a tier name: `unrolled` / `portable` / `scalar`, or `avx2` /
    /// `avx2+fma` / `avx2fma`.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.to_ascii_lowercase().as_str() {
            "unrolled" | "portable" | "scalar" => Some(KernelTier::Unrolled),
            "avx2" | "avx2+fma" | "avx2fma" => Some(KernelTier::Avx2Fma),
            _ => None,
        }
    }

    /// Whether this tier's kernels can execute on the current CPU.
    pub fn supported(self) -> bool {
        match self {
            KernelTier::Unrolled => true,
            KernelTier::Avx2Fma => avx2_table().is_some(),
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Human name(s) for a `kernel_tier` telemetry mask: the OR of
/// [`KernelTier::code`] bits and [`SEQUENTIAL_STRICT_CODE`], comma-joined
/// in flag order. `None` for an empty mask or one with unknown bits
/// (e.g. a trace written by an incompatible version).
pub fn describe_mask(mask: u64) -> Option<String> {
    const FLAGS: [(u64, &str); 3] =
        [(1, "unrolled"), (2, "avx2+fma"), (SEQUENTIAL_STRICT_CODE, "sequential-strict")];
    const KNOWN: u64 = 1 | 2 | SEQUENTIAL_STRICT_CODE;
    if mask == 0 || mask & !KNOWN != 0 {
        return None;
    }
    let names: Vec<&str> =
        FLAGS.iter().filter(|&&(bit, _)| mask & bit != 0).map(|&(_, name)| name).collect();
    Some(names.join(","))
}

/// The once-resolved kernel table: plain function pointers, so a kernel
/// call costs one relaxed atomic load plus an indirect call — no feature
/// detection anywhere near the inner loops.
struct KernelTable {
    tier: KernelTier,
    dot: fn(&[f64], &[f64], f64) -> f64,
    axpy: fn(f64, &[f64], &mut [f64]),
    sq_norm: fn(&[f64], f64) -> f64,
    dot_f32: fn(&[f64], &[f64], f64) -> f64,
    dot_f32_packed: fn(&[f32], &[f64], f64) -> f64,
}

static UNROLLED_TABLE: KernelTable = KernelTable {
    tier: KernelTier::Unrolled,
    dot: portable::dot,
    axpy: portable::axpy,
    sq_norm: portable::sq_norm,
    dot_f32: portable::dot_f32,
    dot_f32_packed: portable::dot_f32_packed,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    tier: KernelTier::Avx2Fma,
    dot: avx2::dot,
    axpy: avx2::axpy,
    sq_norm: avx2::sq_norm,
    dot_f32: avx2::dot_f32,
    dot_f32_packed: avx2::dot_f32_packed,
};

/// The active table; null until first use. Only ever holds a pointer to
/// one of the `'static` tables above.
static ACTIVE: AtomicPtr<KernelTable> = AtomicPtr::new(std::ptr::null_mut());

fn table() -> &'static KernelTable {
    let p = ACTIVE.load(Ordering::Acquire);
    if p.is_null() {
        resolve()
    } else {
        // SAFETY: `ACTIVE` is written only by `install`, always with a
        // pointer to one of the immutable `'static` tables.
        unsafe { &*p }
    }
}

fn install(t: &'static KernelTable) -> &'static KernelTable {
    ACTIVE.store(t as *const KernelTable as *mut KernelTable, Ordering::Release);
    t
}

/// First-use resolution: honor `FRAC_KERNEL_TIER` if set (unparseable
/// values fall through to auto-detection), else pick the best supported
/// tier.
fn resolve() -> &'static KernelTable {
    let requested = std::env::var("FRAC_KERNEL_TIER")
        .ok()
        .and_then(|v| KernelTier::parse(&v));
    install(select(requested))
}

fn select(requested: Option<KernelTier>) -> &'static KernelTable {
    match requested {
        Some(KernelTier::Unrolled) => &UNROLLED_TABLE,
        Some(KernelTier::Avx2Fma) | None => avx2_table().unwrap_or(&UNROLLED_TABLE),
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_table() -> Option<&'static KernelTable> {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    {
        Some(&AVX2_TABLE)
    } else {
        None
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_table() -> Option<&'static KernelTable> {
    None
}

/// The tier currently serving the blocked kernels (resolving it on first
/// call).
pub fn active_tier() -> KernelTier {
    table().tier
}

/// Override the dispatch decision (benchmark A/B, CLI `--kernel-tier`).
/// `None` re-runs auto-detection (ignoring the environment override).
/// Returns the tier actually installed — a request for an unsupported tier
/// falls back to the portable one.
///
/// Swapping tiers changes fast-path summation grouping from that point on;
/// strict-path results are unaffected. Not intended for use concurrent
/// with in-flight solves (the swap is atomic, but a solve spanning it
/// would mix groupings — still within the fast path's tolerance gate,
/// just not reproducible).
pub fn force_tier(requested: Option<KernelTier>) -> KernelTier {
    install(select(requested)).tier
}

/// `init + Σ_i x[i]·w[i]` through the active tier.
///
/// # Panics
/// Panics if `x.len() != w.len()` — the asserted equality is what keeps
/// the AVX2 tier's raw loads in bounds, so it is a hard assert, not a
/// debug one (the length compare is noise next to the kernel itself).
#[inline]
pub fn dot_blocked(x: &[f64], w: &[f64], init: f64) -> f64 {
    assert_eq!(x.len(), w.len());
    (table().dot)(x, w, init)
}

/// `w[i] += alpha · x[i]` through the active tier. Bit-identical to the
/// sequential loop on every tier (no cross-lane reduction; the AVX2 tier
/// uses separate multiply and add, never FMA).
///
/// # Panics
/// Panics if `x.len() != w.len()` (see [`dot_blocked`]).
#[inline]
pub fn axpy_blocked(alpha: f64, x: &[f64], w: &mut [f64]) {
    assert_eq!(x.len(), w.len());
    (table().axpy)(alpha, x, w);
}

/// `acc + Σ_i x[i]²` through the active tier.
#[inline]
pub fn sq_norm_blocked(x: &[f64], acc: f64) -> f64 {
    (table().sq_norm)(x, acc)
}

/// `init + Σ_i f64(f32(x[i]) · f32(w[i]))` through the active tier: the
/// mixed-precision f32-compute / f64-accumulate dot for the fast solver
/// path's optional f32 mode.
///
/// # Panics
/// Panics if `x.len() != w.len()` (see [`dot_blocked`]).
#[inline]
pub fn dot_f32_blocked(x: &[f64], w: &[f64], init: f64) -> f64 {
    assert_eq!(x.len(), w.len());
    (table().dot_f32)(x, w, init)
}

/// [`dot_f32_blocked`] over a pre-demoted f32 row: `x` already holds the
/// `as f32` values, so the kernel reads them with unit-stride f32 loads and
/// only demotes `w` per lane. Same products and summation grouping as
/// [`dot_f32_blocked`] within a tier, so the result is bit-identical to
/// demoting `x` on the fly.
///
/// # Panics
/// Panics if `x.len() != w.len()` (see [`dot_blocked`]).
#[inline]
pub fn dot_f32_packed(x: &[f32], w: &[f64], init: f64) -> f64 {
    assert_eq!(x.len(), w.len());
    (table().dot_f32_packed)(x, w, init)
}

/// Run one kernel under an explicit tier without touching the process-wide
/// table (equivalence tests exercise both tiers in one process).
///
/// # Panics
/// Panics if the tier is not [supported](KernelTier::supported) on this
/// CPU, or if `x.len() != w.len()` (see [`dot_blocked`]).
pub fn dot_for_tier(tier: KernelTier, x: &[f64], w: &[f64], init: f64) -> f64 {
    assert_eq!(x.len(), w.len());
    (table_for(tier).dot)(x, w, init)
}

/// Per-tier variant of [`axpy_blocked`]; see [`dot_for_tier`].
///
/// # Panics
/// Panics if the tier is not supported on this CPU, or if
/// `x.len() != w.len()`.
pub fn axpy_for_tier(tier: KernelTier, alpha: f64, x: &[f64], w: &mut [f64]) {
    assert_eq!(x.len(), w.len());
    (table_for(tier).axpy)(alpha, x, w);
}

/// Per-tier variant of [`sq_norm_blocked`]; see [`dot_for_tier`].
///
/// # Panics
/// Panics if the tier is not supported on this CPU.
pub fn sq_norm_for_tier(tier: KernelTier, x: &[f64], acc: f64) -> f64 {
    (table_for(tier).sq_norm)(x, acc)
}

/// Per-tier variant of [`dot_f32_blocked`]; see [`dot_for_tier`].
///
/// # Panics
/// Panics if the tier is not supported on this CPU, or if
/// `x.len() != w.len()`.
pub fn dot_f32_for_tier(tier: KernelTier, x: &[f64], w: &[f64], init: f64) -> f64 {
    assert_eq!(x.len(), w.len());
    (table_for(tier).dot_f32)(x, w, init)
}

/// Per-tier variant of [`dot_f32_packed`]; see [`dot_for_tier`].
///
/// # Panics
/// Panics if the tier is not supported on this CPU, or if
/// `x.len() != w.len()`.
pub fn dot_f32_packed_for_tier(tier: KernelTier, x: &[f32], w: &[f64], init: f64) -> f64 {
    assert_eq!(x.len(), w.len());
    (table_for(tier).dot_f32_packed)(x, w, init)
}

fn table_for(tier: KernelTier) -> &'static KernelTable {
    match tier {
        KernelTier::Unrolled => &UNROLLED_TABLE,
        KernelTier::Avx2Fma => match avx2_table() {
            Some(t) => t,
            None => panic!("kernel tier avx2+fma is not supported on this CPU"),
        },
    }
}

/// Portable fallback tier: 4-wide unrolled with independent accumulators.
mod portable {
    pub(super) fn dot(x: &[f64], w: &[f64], init: f64) -> f64 {
        let mut xc = x.chunks_exact(4);
        let mut wc = w.chunks_exact(4);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (xs, ws) in (&mut xc).zip(&mut wc) {
            a0 += xs[0] * ws[0];
            a1 += xs[1] * ws[1];
            a2 += xs[2] * ws[2];
            a3 += xs[3] * ws[3];
        }
        let mut acc = init + ((a0 + a2) + (a1 + a3));
        for (xv, wv) in xc.remainder().iter().zip(wc.remainder()) {
            acc += xv * wv;
        }
        acc
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], w: &mut [f64]) {
        let mut xc = x.chunks_exact(4);
        let mut wc = w.chunks_exact_mut(4);
        for (xs, ws) in (&mut xc).zip(&mut wc) {
            ws[0] += alpha * xs[0];
            ws[1] += alpha * xs[1];
            ws[2] += alpha * xs[2];
            ws[3] += alpha * xs[3];
        }
        for (xv, wv) in xc.remainder().iter().zip(wc.into_remainder()) {
            *wv += alpha * xv;
        }
    }

    pub(super) fn sq_norm(x: &[f64], acc: f64) -> f64 {
        let mut xc = x.chunks_exact(4);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for xs in &mut xc {
            a0 += xs[0] * xs[0];
            a1 += xs[1] * xs[1];
            a2 += xs[2] * xs[2];
            a3 += xs[3] * xs[3];
        }
        let mut acc = acc + ((a0 + a2) + (a1 + a3));
        for xv in xc.remainder() {
            acc += xv * xv;
        }
        acc
    }

    pub(super) fn dot_f32(x: &[f64], w: &[f64], init: f64) -> f64 {
        let mut xc = x.chunks_exact(4);
        let mut wc = w.chunks_exact(4);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (xs, ws) in (&mut xc).zip(&mut wc) {
            a0 += f64::from(xs[0] as f32 * ws[0] as f32);
            a1 += f64::from(xs[1] as f32 * ws[1] as f32);
            a2 += f64::from(xs[2] as f32 * ws[2] as f32);
            a3 += f64::from(xs[3] as f32 * ws[3] as f32);
        }
        let mut acc = init + ((a0 + a2) + (a1 + a3));
        for (xv, wv) in xc.remainder().iter().zip(wc.remainder()) {
            acc += f64::from(*xv as f32 * *wv as f32);
        }
        acc
    }

    /// `dot_f32` with `x` pre-demoted: identical products and grouping, so
    /// the result matches `dot_f32` over the f64 originals bit for bit.
    pub(super) fn dot_f32_packed(x: &[f32], w: &[f64], init: f64) -> f64 {
        let mut xc = x.chunks_exact(4);
        let mut wc = w.chunks_exact(4);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (xs, ws) in (&mut xc).zip(&mut wc) {
            a0 += f64::from(xs[0] * ws[0] as f32);
            a1 += f64::from(xs[1] * ws[1] as f32);
            a2 += f64::from(xs[2] * ws[2] as f32);
            a3 += f64::from(xs[3] * ws[3] as f32);
        }
        let mut acc = init + ((a0 + a2) + (a1 + a3));
        for (xv, wv) in xc.remainder().iter().zip(wc.remainder()) {
            acc += f64::from(*xv * *wv as f32);
        }
        acc
    }
}

/// Explicit AVX2/FMA tier. The safe entry points here are sound only when
/// the CPU has AVX2 and FMA — they are reachable exclusively through a
/// kernel table installed after runtime detection (`select`), or through
/// `table_for`, which panics on unsupported tiers.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_cvtpd_ps, _mm256_cvtps_pd,
        _mm256_extractf128_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_loadu_ps,
        _mm_mul_ps, _mm_unpackhi_pd,
    };

    pub(super) fn dot(x: &[f64], w: &[f64], init: f64) -> f64 {
        // SAFETY: reachable only via a table installed after runtime
        // detection of avx2+fma (see module docs).
        unsafe { dot_impl(x, w, init) }
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], w: &mut [f64]) {
        // SAFETY: as for `dot`.
        unsafe { axpy_impl(alpha, x, w) }
    }

    pub(super) fn sq_norm(x: &[f64], acc: f64) -> f64 {
        // SAFETY: as for `dot`.
        unsafe { sq_norm_impl(x, acc) }
    }

    pub(super) fn dot_f32(x: &[f64], w: &[f64], init: f64) -> f64 {
        // SAFETY: as for `dot`.
        unsafe { dot_f32_impl(x, w, init) }
    }

    pub(super) fn dot_f32_packed(x: &[f32], w: &[f64], init: f64) -> f64 {
        // SAFETY: as for `dot`.
        unsafe { dot_f32_packed_impl(x, w, init) }
    }

    /// Horizontal sum of the four lanes, in a fixed (pairwise) order.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// 16 lanes per iteration in four independent accumulator registers —
    /// enough chains to cover the ~4-cycle FMA latency at the loads' issue
    /// rate; FMA keeps each product unrounded until its lane add.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_impl(x: &[f64], w: &[f64], init: f64) -> f64 {
        // Equal lengths are hard-asserted at every public entry point;
        // bounding by the shorter slice anyway makes this function
        // memory-safe on its own rather than by caller contract.
        let n = x.len().min(w.len());
        let (xp, wp) = (x.as_ptr(), w.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n ≤ min(x.len(), w.len())` keeps all eight
            // 4-lane loads in bounds.
            unsafe {
                acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(wp.add(i)), acc0);
                acc1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 4)),
                    _mm256_loadu_pd(wp.add(i + 4)),
                    acc1,
                );
                acc2 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 8)),
                    _mm256_loadu_pd(wp.add(i + 8)),
                    acc2,
                );
                acc3 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 12)),
                    _mm256_loadu_pd(wp.add(i + 12)),
                    acc3,
                );
            }
            i += 16;
        }
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps both 4-lane loads in bounds.
            unsafe {
                acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(wp.add(i)), acc0);
            }
            i += 4;
        }
        let mut acc =
            init + hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc2), _mm256_add_pd(acc1, acc3)));
        while i < n {
            acc += x[i] * w[i];
            i += 1;
        }
        acc
    }

    /// 8 lanes per iteration; multiply *then* add (never FMA), so every
    /// lane performs the same double rounding as the sequential loop and
    /// the result stays bit-identical on every tier.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn axpy_impl(alpha: f64, x: &[f64], w: &mut [f64]) {
        let n = x.len().min(w.len());
        let a = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let wp = w.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` keeps every load/store in bounds; `x`
            // and `w` cannot alias (`&[f64]` vs `&mut [f64]`).
            unsafe {
                let x0 = _mm256_loadu_pd(xp.add(i));
                let x1 = _mm256_loadu_pd(xp.add(i + 4));
                let w0 = _mm256_loadu_pd(wp.add(i));
                let w1 = _mm256_loadu_pd(wp.add(i + 4));
                _mm256_storeu_pd(wp.add(i), _mm256_add_pd(w0, _mm256_mul_pd(a, x0)));
                _mm256_storeu_pd(wp.add(i + 4), _mm256_add_pd(w1, _mm256_mul_pd(a, x1)));
            }
            i += 8;
        }
        while i < n {
            w[i] += alpha * x[i];
            i += 1;
        }
    }

    /// 16 lanes per iteration in four independent accumulator registers.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn sq_norm_impl(x: &[f64], acc: f64) -> f64 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` keeps all four 4-lane loads in bounds.
            unsafe {
                let x0 = _mm256_loadu_pd(xp.add(i));
                let x1 = _mm256_loadu_pd(xp.add(i + 4));
                let x2 = _mm256_loadu_pd(xp.add(i + 8));
                let x3 = _mm256_loadu_pd(xp.add(i + 12));
                acc0 = _mm256_fmadd_pd(x0, x0, acc0);
                acc1 = _mm256_fmadd_pd(x1, x1, acc1);
                acc2 = _mm256_fmadd_pd(x2, x2, acc2);
                acc3 = _mm256_fmadd_pd(x3, x3, acc3);
            }
            i += 16;
        }
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps the 4-lane load in bounds.
            unsafe {
                let x0 = _mm256_loadu_pd(xp.add(i));
                acc0 = _mm256_fmadd_pd(x0, x0, acc0);
            }
            i += 4;
        }
        let mut acc =
            acc + hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc2), _mm256_add_pd(acc1, acc3)));
        while i < n {
            acc += x[i] * x[i];
            i += 1;
        }
        acc
    }

    /// f32-compute / f64-accumulate: demote each 4-lane f64 block to f32,
    /// multiply in f32, promote the products back and accumulate in f64.
    /// 16 lanes per iteration, four independent f64 accumulators.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_f32_impl(x: &[f64], w: &[f64], init: f64) -> f64 {
        // Shorter-slice bound: see `dot_impl`.
        let n = x.len().min(w.len());
        let (xp, wp) = (x.as_ptr(), w.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` keeps all eight 4-lane loads in bounds.
            unsafe {
                let x0 = _mm256_cvtpd_ps(_mm256_loadu_pd(xp.add(i)));
                let w0 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i)));
                let x1 = _mm256_cvtpd_ps(_mm256_loadu_pd(xp.add(i + 4)));
                let w1 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i + 4)));
                let x2 = _mm256_cvtpd_ps(_mm256_loadu_pd(xp.add(i + 8)));
                let w2 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i + 8)));
                let x3 = _mm256_cvtpd_ps(_mm256_loadu_pd(xp.add(i + 12)));
                let w3 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i + 12)));
                acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm_mul_ps(x0, w0)));
                acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm_mul_ps(x1, w1)));
                acc2 = _mm256_add_pd(acc2, _mm256_cvtps_pd(_mm_mul_ps(x2, w2)));
                acc3 = _mm256_add_pd(acc3, _mm256_cvtps_pd(_mm_mul_ps(x3, w3)));
            }
            i += 16;
        }
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps both 4-lane loads in bounds.
            unsafe {
                let x0 = _mm256_cvtpd_ps(_mm256_loadu_pd(xp.add(i)));
                let w0 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i)));
                acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm_mul_ps(x0, w0)));
            }
            i += 4;
        }
        let mut acc =
            init + hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc2), _mm256_add_pd(acc1, acc3)));
        while i < n {
            acc += f64::from(x[i] as f32 * w[i] as f32);
            i += 1;
        }
        acc
    }

    /// [`dot_f32_impl`] with `x` pre-demoted to f32: the row side becomes a
    /// unit-stride 128-bit f32 load (half the bytes, no convert), only `w`
    /// pays the demote. Same blocking and accumulator layout, so results
    /// are bit-identical to `dot_f32_impl` over the f64 originals.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_f32_packed_impl(x: &[f32], w: &[f64], init: f64) -> f64 {
        // Shorter-slice bound: see `dot_impl`.
        let n = x.len().min(w.len());
        let (xp, wp) = (x.as_ptr(), w.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` keeps the four f32 loads and four f64
            // loads in bounds.
            unsafe {
                let x0 = _mm_loadu_ps(xp.add(i));
                let w0 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i)));
                let x1 = _mm_loadu_ps(xp.add(i + 4));
                let w1 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i + 4)));
                let x2 = _mm_loadu_ps(xp.add(i + 8));
                let w2 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i + 8)));
                let x3 = _mm_loadu_ps(xp.add(i + 12));
                let w3 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i + 12)));
                acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm_mul_ps(x0, w0)));
                acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm_mul_ps(x1, w1)));
                acc2 = _mm256_add_pd(acc2, _mm256_cvtps_pd(_mm_mul_ps(x2, w2)));
                acc3 = _mm256_add_pd(acc3, _mm256_cvtps_pd(_mm_mul_ps(x3, w3)));
            }
            i += 16;
        }
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps both loads in bounds.
            unsafe {
                let x0 = _mm_loadu_ps(xp.add(i));
                let w0 = _mm256_cvtpd_ps(_mm256_loadu_pd(wp.add(i)));
                acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm_mul_ps(x0, w0)));
            }
            i += 4;
        }
        let mut acc =
            init + hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc2), _mm256_add_pd(acc1, acc3)));
        while i < n {
            acc += f64::from(x[i] * w[i] as f32);
            i += 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37 - 1.1).sin()).collect();
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91 + 0.3).cos()).collect();
        (x, w)
    }

    fn tiers() -> Vec<KernelTier> {
        [KernelTier::Unrolled, KernelTier::Avx2Fma]
            .into_iter()
            .filter(|t| t.supported())
            .collect()
    }

    #[test]
    fn dot_matches_sequential_within_tolerance() {
        for tier in tiers() {
            for n in [0, 1, 3, 4, 5, 7, 8, 9, 15, 64, 129] {
                let (x, w) = vecs(n);
                let seq: f64 = 0.5 + x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>();
                let blocked = dot_for_tier(tier, &x, &w, 0.5);
                assert!(
                    (seq - blocked).abs() <= 1e-10 * (1.0 + seq.abs()),
                    "{tier} n={n}: {seq} vs {blocked}"
                );
            }
        }
    }

    #[test]
    fn axpy_is_bit_identical_to_sequential() {
        for tier in tiers() {
            for n in [0, 1, 3, 4, 6, 7, 8, 9, 13, 65] {
                let (x, w0) = vecs(n);
                let mut a = w0.clone();
                let mut b = w0.clone();
                axpy_for_tier(tier, 1.75, &x, &mut a);
                for (wv, xv) in b.iter_mut().zip(&x) {
                    *wv += 1.75 * xv;
                }
                assert_eq!(
                    a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{tier} n={n}"
                );
            }
        }
    }

    #[test]
    fn sq_norm_matches_sequential_within_tolerance() {
        for tier in tiers() {
            for n in [0, 1, 2, 4, 7, 9, 31, 128] {
                let (x, _) = vecs(n);
                let seq: f64 = x.iter().map(|v| v * v).sum();
                let blocked = sq_norm_for_tier(tier, &x, 0.0);
                assert!((seq - blocked).abs() <= 1e-10 * (1.0 + seq), "{tier} n={n}");
            }
        }
    }

    #[test]
    fn dot_f32_matches_f64_within_f32_tolerance() {
        for tier in tiers() {
            for n in [0, 1, 5, 8, 33, 200] {
                let (x, w) = vecs(n);
                let exact: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>();
                let mixed = dot_f32_for_tier(tier, &x, &w, 0.0);
                let budget = 4.0 * f64::from(f32::EPSILON)
                    * x.iter().zip(&w).map(|(a, b)| (a * b).abs()).sum::<f64>()
                    + 1e-12;
                assert!(
                    (exact - mixed).abs() <= budget,
                    "{tier} n={n}: {exact} vs {mixed} (budget {budget})"
                );
            }
        }
    }

    #[test]
    fn dot_f32_packed_is_bit_identical_to_demote_per_visit() {
        // The packed-f32 kernel only moves the `as f32` demotion of the row
        // to pack time; products and summation grouping are unchanged, so
        // within a tier it must reproduce `dot_f32` bit for bit.
        for tier in tiers() {
            for n in [0, 1, 3, 4, 5, 8, 15, 16, 17, 33, 200] {
                let (x, w) = vecs(n);
                let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
                let demoted = dot_f32_for_tier(tier, &x, &w, 0.25);
                let packed = dot_f32_packed_for_tier(tier, &xf, &w, 0.25);
                assert_eq!(demoted.to_bits(), packed.to_bits(), "{tier} n={n}");
            }
        }
    }

    #[test]
    fn blocked_results_are_deterministic() {
        // Per-tier entry points: the global table may be swapped by the
        // force test running in a sibling thread.
        for tier in tiers() {
            let (x, w) = vecs(101);
            assert_eq!(
                dot_for_tier(tier, &x, &w, 0.0).to_bits(),
                dot_for_tier(tier, &x, &w, 0.0).to_bits()
            );
            assert_eq!(
                sq_norm_for_tier(tier, &x, 0.0).to_bits(),
                sq_norm_for_tier(tier, &x, 0.0).to_bits()
            );
        }
    }

    #[test]
    fn tier_parse_and_codes_round_trip() {
        assert_eq!(KernelTier::parse("unrolled"), Some(KernelTier::Unrolled));
        assert_eq!(KernelTier::parse("portable"), Some(KernelTier::Unrolled));
        assert_eq!(KernelTier::parse("AVX2"), Some(KernelTier::Avx2Fma));
        assert_eq!(KernelTier::parse("avx2+fma"), Some(KernelTier::Avx2Fma));
        assert_eq!(KernelTier::parse("mmx"), None);
        for tier in [KernelTier::Unrolled, KernelTier::Avx2Fma] {
            assert_eq!(describe_mask(tier.code()).as_deref(), Some(tier.as_str()));
        }
        assert_eq!(
            describe_mask(SEQUENTIAL_STRICT_CODE).as_deref(),
            Some("sequential-strict")
        );
        assert_eq!(
            describe_mask(KernelTier::Avx2Fma.code() | SEQUENTIAL_STRICT_CODE).as_deref(),
            Some("avx2+fma,sequential-strict")
        );
        assert_eq!(describe_mask(0), None);
        assert_eq!(describe_mask(8), None);
        assert_eq!(describe_mask(1 | 8), None);
    }

    #[test]
    fn mismatched_lengths_panic_at_every_entry_point() {
        // A length mismatch would walk the AVX2 loads out of bounds if it
        // ever reached a kernel, so the public entry points hard-assert
        // equality in release builds too.
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let (x, w) = vecs(67);
        let mut wm = w.clone();
        assert!(catch_unwind(AssertUnwindSafe(|| dot_blocked(&x, &w[..33], 0.0))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| dot_f32_blocked(&x[..19], &w, 0.0))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| axpy_blocked(1.5, &x[..33], &mut wm))).is_err());
        for tier in tiers() {
            assert!(
                catch_unwind(AssertUnwindSafe(|| dot_for_tier(tier, &x, &w[..33], 0.0))).is_err(),
                "{tier}"
            );
        }
    }

    #[test]
    fn active_tier_is_supported_and_forceable() {
        let resolved = active_tier();
        assert!(resolved.supported());
        // Forcing the portable tier always succeeds; restore auto after.
        assert_eq!(force_tier(Some(KernelTier::Unrolled)), KernelTier::Unrolled);
        let (x, w) = vecs(37);
        let portable = dot_blocked(&x, &w, 0.0);
        assert_eq!(portable.to_bits(), dot_for_tier(KernelTier::Unrolled, &x, &w, 0.0).to_bits());
        let back = force_tier(None);
        assert!(back.supported());
    }
}
