//! Blocked inner-loop kernels for the solver fast path.
//!
//! The SVM coordinate-descent sweeps spend almost all their time in three
//! row-wise primitives: `dot`, `axpy`, and squared norm. The reference
//! implementations fold strictly left to right, which serializes every
//! addition behind a ~4-cycle FP latency chain. These kernels break that
//! chain with four independent accumulators (the compiler is then free to
//! keep them in separate registers / SIMD lanes), turning the sweeps
//! memory-bandwidth-bound instead of scalar-issue-bound.
//!
//! The lane split changes floating-point summation *grouping*, so blocked
//! results are not bit-identical to the sequential fold — they are used only
//! by the fast solver path ([`crate::DesignView::row_dot_blocked`] and
//! friends); the strict reference path keeps the exact sequential kernels.
//! Within one slice the grouping is a deterministic function of its length,
//! so fast-path results are still reproducible run to run and across thread
//! counts.

/// `init + Σ_i x[i]·w[i]` with four independent accumulators.
///
/// # Panics
/// Debug-asserts `x.len() == w.len()`.
#[inline]
pub fn dot_blocked(x: &[f64], w: &[f64], init: f64) -> f64 {
    debug_assert_eq!(x.len(), w.len());
    let mut xc = x.chunks_exact(4);
    let mut wc = w.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xs, ws) in (&mut xc).zip(&mut wc) {
        a0 += xs[0] * ws[0];
        a1 += xs[1] * ws[1];
        a2 += xs[2] * ws[2];
        a3 += xs[3] * ws[3];
    }
    let mut acc = init + ((a0 + a2) + (a1 + a3));
    for (xv, wv) in xc.remainder().iter().zip(wc.remainder()) {
        acc += xv * wv;
    }
    acc
}

/// `w[i] += alpha · x[i]`, 4-wide unrolled.
///
/// Unlike the reductions, axpy has no cross-lane dependency, so the result
/// is bit-identical to the sequential loop — the unroll only removes bounds
/// checks and exposes independent stores.
///
/// # Panics
/// Debug-asserts `x.len() == w.len()`.
#[inline]
pub fn axpy_blocked(alpha: f64, x: &[f64], w: &mut [f64]) {
    debug_assert_eq!(x.len(), w.len());
    let mut xc = x.chunks_exact(4);
    let mut wc = w.chunks_exact_mut(4);
    for (xs, ws) in (&mut xc).zip(&mut wc) {
        ws[0] += alpha * xs[0];
        ws[1] += alpha * xs[1];
        ws[2] += alpha * xs[2];
        ws[3] += alpha * xs[3];
    }
    for (xv, wv) in xc.remainder().iter().zip(wc.into_remainder()) {
        *wv += alpha * xv;
    }
}

/// `acc + Σ_i x[i]²` with four independent accumulators.
#[inline]
pub fn sq_norm_blocked(x: &[f64], acc: f64) -> f64 {
    let mut xc = x.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for xs in &mut xc {
        a0 += xs[0] * xs[0];
        a1 += xs[1] * xs[1];
        a2 += xs[2] * xs[2];
        a3 += xs[3] * xs[3];
    }
    let mut acc = acc + ((a0 + a2) + (a1 + a3));
    for xv in xc.remainder() {
        acc += xv * xv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37 - 1.1).sin()).collect();
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91 + 0.3).cos()).collect();
        (x, w)
    }

    #[test]
    fn dot_matches_sequential_within_tolerance() {
        for n in [0, 1, 3, 4, 5, 7, 8, 64, 129] {
            let (x, w) = vecs(n);
            let seq: f64 = 0.5 + x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>();
            let blocked = dot_blocked(&x, &w, 0.5);
            assert!(
                (seq - blocked).abs() <= 1e-12 * (1.0 + seq.abs()),
                "n={n}: {seq} vs {blocked}"
            );
        }
    }

    #[test]
    fn axpy_is_bit_identical_to_sequential() {
        for n in [0, 1, 3, 4, 6, 8, 65] {
            let (x, w0) = vecs(n);
            let mut a = w0.clone();
            let mut b = w0.clone();
            axpy_blocked(1.75, &x, &mut a);
            for (wv, xv) in b.iter_mut().zip(&x) {
                *wv += 1.75 * xv;
            }
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn sq_norm_matches_sequential_within_tolerance() {
        for n in [0, 1, 2, 4, 9, 31, 128] {
            let (x, _) = vecs(n);
            let seq: f64 = x.iter().map(|v| v * v).sum();
            let blocked = sq_norm_blocked(&x, 0.0);
            assert!((seq - blocked).abs() <= 1e-12 * (1.0 + seq), "n={n}");
        }
    }

    #[test]
    fn blocked_results_are_deterministic() {
        let (x, w) = vecs(101);
        assert_eq!(dot_blocked(&x, &w, 0.0).to_bits(), dot_blocked(&x, &w, 0.0).to_bits());
        assert_eq!(sq_norm_blocked(&x, 0.0).to_bits(), sq_norm_blocked(&x, 0.0).to_bits());
    }
}
