//! Column-major mixed-type data set storage.
//!
//! FRaC is feature-centric: every feature is in turn a prediction *target*,
//! and entropy / error-model statistics are computed per feature. Column-major
//! storage makes those per-feature scans contiguous. Row-major design matrices
//! for model training are materialized on demand by [`crate::design`].

use crate::crc::Fnv64;
use crate::mmap::MmapFile;
use crate::schema::{Feature, FeatureKind, Schema};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Sentinel code for a missing categorical value.
pub const MISSING_CODE: u32 = u32::MAX;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for u32 {}
}

/// Element types a [`ColStore`] can hold: the two scalar kinds FCB column
/// extents are made of (`f64` values, `u32` categorical codes). Sealed —
/// the on-disk format, not the caller, decides what can be mapped.
pub trait ColElem: sealed::Sealed + Copy + PartialEq + fmt::Debug + 'static {
    /// Zero-copy typed view of `len` elements at `byte_off` of `map`;
    /// `None` when out of bounds or misaligned.
    #[doc(hidden)]
    fn mapped_slice(map: &MmapFile, byte_off: usize, len: usize) -> Option<&[Self]>;
}

impl ColElem for f64 {
    fn mapped_slice(map: &MmapFile, byte_off: usize, len: usize) -> Option<&[f64]> {
        map.slice_f64(byte_off, len)
    }
}

impl ColElem for u32 {
    fn mapped_slice(map: &MmapFile, byte_off: usize, len: usize) -> Option<&[u32]> {
        map.slice_u32(byte_off, len)
    }
}

/// Backing storage of one column: either an owned `Vec` or a zero-copy
/// view into a memory-mapped FCB file ([`crate::fcb`]).
///
/// `ColStore` derefs to `[T]`, so readers are oblivious to the backing —
/// every slice-shaped access (`len`, indexing, iteration) works identically
/// on owned and mapped columns, and the mapped case materializes nothing.
/// Mutation (`push` / `extend_from_slice`) is copy-on-write: a mapped store
/// first copies its view into an owned `Vec`, then mutates that.
pub struct ColStore<T: ColElem> {
    repr: StoreRepr<T>,
}

enum StoreRepr<T> {
    Owned(Vec<T>),
    /// `len` *elements* starting at `byte_off` of the shared mapping. The
    /// range is validated (bounds + alignment) when the store is built, so
    /// deref cannot fail later.
    Mapped { map: Arc<MmapFile>, byte_off: usize, len: usize },
}

impl<T: ColElem> ColStore<T> {
    /// Zero-copy store over `len` elements at `byte_off` of `map`.
    /// Returns `None` when the range is out of bounds or misaligned.
    pub(crate) fn mapped(map: Arc<MmapFile>, byte_off: usize, len: usize) -> Option<Self> {
        T::mapped_slice(&map, byte_off, len)?;
        Some(ColStore { repr: StoreRepr::Mapped { map, byte_off, len } })
    }

    /// The stored elements as a slice (what `Deref` returns).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            StoreRepr::Owned(v) => v,
            StoreRepr::Mapped { map, byte_off, len } => T::mapped_slice(map, *byte_off, *len)
                .expect("mapped extent was validated when the store was built"),
        }
    }

    /// True when backed by a memory-mapped file rather than owned memory.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, StoreRepr::Mapped { .. })
    }

    /// Mutable owned storage, converting a mapped view into an owned copy
    /// on first use (copy-on-write).
    fn make_owned(&mut self) -> &mut Vec<T> {
        if let StoreRepr::Mapped { .. } = self.repr {
            self.repr = StoreRepr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            StoreRepr::Owned(v) => v,
            StoreRepr::Mapped { .. } => unreachable!("just converted to owned"),
        }
    }

    /// Append one element (copy-on-write for mapped stores).
    pub fn push(&mut self, value: T) {
        self.make_owned().push(value);
    }

    /// Append a slice of elements (copy-on-write for mapped stores).
    pub fn extend_from_slice(&mut self, other: &[T]) {
        self.make_owned().extend_from_slice(other);
    }
}

impl<T: ColElem> Deref for ColStore<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: ColElem> From<Vec<T>> for ColStore<T> {
    fn from(v: Vec<T>) -> Self {
        ColStore { repr: StoreRepr::Owned(v) }
    }
}

impl<T: ColElem> FromIterator<T> for ColStore<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Vec::from_iter(iter).into()
    }
}

impl<T: ColElem> Clone for ColStore<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            StoreRepr::Owned(v) => ColStore { repr: StoreRepr::Owned(v.clone()) },
            // Cloning a mapped store clones the Arc, not the data.
            StoreRepr::Mapped { map, byte_off, len } => ColStore {
                repr: StoreRepr::Mapped { map: Arc::clone(map), byte_off: *byte_off, len: *len },
            },
        }
    }
}

impl<'a, T: ColElem> IntoIterator for &'a ColStore<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: ColElem> fmt::Debug for ColStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as the slice: backing is a performance detail, not identity.
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: ColElem> PartialEq for ColStore<T> {
    fn eq(&self, other: &Self) -> bool {
        // Element-wise, with `T`'s own semantics (NaN != NaN, like `Vec`).
        self.as_slice() == other.as_slice()
    }
}

/// A single (possibly missing) feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A real value.
    Real(f64),
    /// A categorical code in `0..arity`.
    Categorical(u32),
    /// Missing / undefined. Per the paper's NS definition, missing values
    /// contribute zero surprisal and are skipped by predictors.
    Missing,
}

impl Value {
    /// Is this value missing?
    #[inline]
    pub fn is_missing(self) -> bool {
        matches!(self, Value::Missing)
    }

    /// The real payload, if any.
    #[inline]
    pub fn as_real(self) -> Option<f64> {
        match self {
            Value::Real(x) => Some(x),
            _ => None,
        }
    }

    /// The categorical code, if any.
    #[inline]
    pub fn as_categorical(self) -> Option<u32> {
        match self {
            Value::Categorical(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Real(x) => write!(f, "{x}"),
            Value::Categorical(c) => write!(f, "{c}"),
            Value::Missing => write!(f, "?"),
        }
    }
}

/// One column of data, matching a [`FeatureKind`].
///
/// Payloads are [`ColStore`]s — owned vectors for datasets built in memory
/// (TSV parse, generators, row selection), zero-copy mapped views for
/// datasets loaded from an FCB file ([`crate::fcb`]). Both deref to slices,
/// so consumers never distinguish the two.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Real values; `NaN` encodes missing.
    Real(ColStore<f64>),
    /// Categorical codes; [`MISSING_CODE`] encodes missing.
    Categorical {
        /// Number of categories.
        arity: u32,
        /// Codes, one per row.
        codes: ColStore<u32>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Real(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The kind this column stores.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Column::Real(_) => FeatureKind::Real,
            Column::Categorical { arity, .. } => FeatureKind::Categorical { arity: *arity },
        }
    }

    /// Value at `row`.
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Real(v) => {
                let x = v[row];
                if x.is_nan() {
                    Value::Missing
                } else {
                    Value::Real(x)
                }
            }
            Column::Categorical { codes, .. } => {
                let c = codes[row];
                if c == MISSING_CODE {
                    Value::Missing
                } else {
                    Value::Categorical(c)
                }
            }
        }
    }

    /// Real slice, if this is a real column.
    pub fn as_real(&self) -> Option<&[f64]> {
        match self {
            Column::Real(v) => Some(v),
            _ => None,
        }
    }

    /// Codes slice, if this is a categorical column.
    pub fn as_categorical(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// Non-missing real values (empty for categorical columns).
    pub fn present_reals(&self) -> Vec<f64> {
        match self {
            Column::Real(v) => v.iter().copied().filter(|x| !x.is_nan()).collect(),
            _ => Vec::new(),
        }
    }

    /// Number of missing entries.
    pub fn n_missing(&self) -> usize {
        match self {
            Column::Real(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Categorical { codes, .. } => {
                codes.iter().filter(|&&c| c == MISSING_CODE).count()
            }
        }
    }

    /// Column restricted to the given rows (in order, duplicates allowed).
    pub fn select_rows(&self, rows: &[usize]) -> Column {
        match self {
            Column::Real(v) => Column::Real(rows.iter().map(|&r| v[r]).collect()),
            Column::Categorical { arity, codes } => Column::Categorical {
                arity: *arity,
                codes: rows.iter().map(|&r| codes[r]).collect(),
            },
        }
    }
}

/// A column-major data set: a [`Schema`] plus one [`Column`] per feature.
///
/// Rows are samples (patients / cell lines); columns are features (genes /
/// SNPs). All columns have equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// Build a data set from a schema and matching columns.
    ///
    /// # Panics
    /// Panics if column count, kinds, or lengths are inconsistent, or if a
    /// categorical code is out of range.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema has {} features but {} columns were supplied",
            schema.len(),
            columns.len()
        );
        let n_rows = columns.first().map_or(0, Column::len);
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(
                col.kind(),
                schema.kind(i),
                "column {i} kind {:?} does not match schema kind {:?}",
                col.kind(),
                schema.kind(i)
            );
            assert_eq!(col.len(), n_rows, "column {i} has inconsistent length");
            if let Column::Categorical { arity, codes } = col {
                for &c in codes {
                    assert!(
                        c < *arity || c == MISSING_CODE,
                        "column {i}: code {c} out of range for arity {arity}"
                    );
                }
            }
        }
        Dataset { schema, columns, n_rows }
    }

    /// An empty data set with the given schema (zero rows).
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .iter()
            .map(|f| match f.kind {
                FeatureKind::Real => Column::Real(Vec::new().into()),
                FeatureKind::Categorical { arity } => {
                    Column::Categorical { arity, codes: Vec::new().into() }
                }
            })
            .collect();
        Dataset { schema, columns, n_rows: 0 }
    }

    /// Build an all-real data set from row-major data.
    ///
    /// # Panics
    /// Panics if `rows` are ragged.
    pub fn from_real_rows(rows: &[Vec<f64>]) -> Self {
        let n_features = rows.first().map_or(0, Vec::len);
        let mut columns = vec![Vec::with_capacity(rows.len()); n_features];
        for row in rows {
            assert_eq!(row.len(), n_features, "ragged rows");
            for (j, &x) in row.iter().enumerate() {
                columns[j].push(x);
            }
        }
        Dataset::new(
            Schema::all_real(n_features),
            columns.into_iter().map(|v| Column::Real(v.into())).collect(),
        )
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (samples).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    #[inline]
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// The `i`-th column.
    #[inline]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Value at (`row`, `feature`).
    #[inline]
    pub fn value(&self, row: usize, feature: usize) -> Value {
        self.columns[feature].value(row)
    }

    /// Append one row given as values.
    ///
    /// # Panics
    /// Panics on arity/kind mismatch.
    pub fn push_row(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.n_features(), "row width mismatch");
        for (col, &v) in self.columns.iter_mut().zip(values) {
            match (col, v) {
                (Column::Real(vec), Value::Real(x)) => vec.push(x),
                (Column::Real(vec), Value::Missing) => vec.push(f64::NAN),
                (Column::Categorical { arity, codes }, Value::Categorical(c)) => {
                    assert!(c < *arity, "code {c} out of range for arity {arity}");
                    codes.push(c);
                }
                (Column::Categorical { codes, .. }, Value::Missing) => codes.push(MISSING_CODE),
                (col, v) => panic!("value {v:?} incompatible with column kind {:?}", col.kind()),
            }
        }
        self.n_rows += 1;
    }

    /// One row as a vector of values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        (0..self.n_features()).map(|j| self.value(row, j)).collect()
    }

    /// Data set restricted to the given rows (in order; duplicates allowed,
    /// so this also implements bootstrap resampling).
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let columns = self.columns.iter().map(|c| c.select_rows(rows)).collect();
        Dataset { schema: self.schema.clone(), columns, n_rows: rows.len() }
    }

    /// Data set restricted to the given features (in order) — the *full
    /// filtering* reduction of the paper's §II-A.
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        let schema = self.schema.select(features);
        let columns = features.iter().map(|&j| self.columns[j].clone()).collect();
        Dataset { schema, columns, n_rows: self.n_rows }
    }

    /// Vertically concatenate two data sets with identical schemas.
    ///
    /// # Panics
    /// Panics if the schemas differ.
    pub fn vstack(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.schema, other.schema, "schema mismatch in vstack");
        let columns = self
            .columns
            .iter()
            .zip(&other.columns)
            .map(|(a, b)| match (a, b) {
                (Column::Real(x), Column::Real(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Real(v)
                }
                (
                    Column::Categorical { arity, codes: x },
                    Column::Categorical { codes: y, .. },
                ) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Categorical { arity: *arity, codes: v }
                }
                _ => unreachable!("schemas matched"),
            })
            .collect();
        Dataset {
            schema: self.schema.clone(),
            columns,
            n_rows: self.n_rows + other.n_rows,
        }
    }

    /// Approximate resident size of the stored data, in bytes. Used by the
    /// resource meter to reproduce the paper's memory columns.
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                Column::Real(v) => v.len() * std::mem::size_of::<f64>(),
                Column::Categorical { codes, .. } => codes.len() * std::mem::size_of::<u32>(),
            })
            .sum()
    }

    /// Total number of missing entries.
    pub fn n_missing(&self) -> usize {
        self.columns.iter().map(Column::n_missing).sum()
    }

    /// Content fingerprint (FNV-1a 64) over the schema and every cell's bit
    /// pattern. Two datasets share a fingerprint iff they are bit-identical
    /// (names, kinds, arities, row order, and NaN payloads all included), so
    /// the run journal can refuse to resume against different data.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.n_rows as u64);
        h.write_u64(self.columns.len() as u64);
        for (feature, col) in self.schema.iter().zip(&self.columns) {
            h.write(feature.name.as_bytes());
            h.write(&[0]); // name terminator: "ab"+"c" must differ from "a"+"bc"
            match col {
                Column::Real(v) => {
                    h.write_u64(0);
                    for &x in v {
                        h.write_f64(x);
                    }
                }
                Column::Categorical { arity, codes } => {
                    h.write_u64(1 + *arity as u64);
                    for &c in codes {
                        h.write(&c.to_le_bytes());
                    }
                }
            }
        }
        h.finish()
    }
}

/// Builder for assembling datasets feature-by-feature.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    features: Vec<Feature>,
    columns: Vec<Column>,
}

impl DatasetBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a real feature column.
    pub fn real(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.features.push(Feature::real(name));
        self.columns.push(Column::Real(values.into()));
        self
    }

    /// Add a categorical feature column.
    pub fn categorical(
        mut self,
        name: impl Into<String>,
        arity: u32,
        codes: Vec<u32>,
    ) -> Self {
        self.features.push(Feature::categorical(name, arity));
        self.columns.push(Column::Categorical { arity, codes: codes.into() });
        self
    }

    /// Finish, validating shape consistency.
    pub fn build(self) -> Dataset {
        Dataset::new(Schema::new(self.features), self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Dataset {
        DatasetBuilder::new()
            .real("expr", vec![1.0, 2.0, f64::NAN, 4.0])
            .categorical("snp", 3, vec![0, 1, 2, MISSING_CODE])
            .build()
    }

    #[test]
    fn shape_and_values() {
        let d = mixed();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.value(0, 0), Value::Real(1.0));
        assert_eq!(d.value(2, 0), Value::Missing);
        assert_eq!(d.value(1, 1), Value::Categorical(1));
        assert_eq!(d.value(3, 1), Value::Missing);
        assert_eq!(d.n_missing(), 2);
    }

    #[test]
    fn select_rows_reorders_and_duplicates() {
        let d = mixed();
        let s = d.select_rows(&[3, 0, 0]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.value(0, 0), Value::Real(4.0));
        assert_eq!(s.value(1, 0), Value::Real(1.0));
        assert_eq!(s.value(2, 0), Value::Real(1.0));
        assert_eq!(s.value(0, 1), Value::Missing);
    }

    #[test]
    fn select_features_is_full_filtering() {
        let d = mixed();
        let s = d.select_features(&[1]);
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.schema().feature(0).name, "snp");
        assert_eq!(s.n_rows(), 4);
    }

    #[test]
    fn push_row_roundtrip() {
        let mut d = Dataset::empty(
            Schema::new(vec![Feature::real("a"), Feature::categorical("b", 2)]),
        );
        d.push_row(&[Value::Real(0.5), Value::Categorical(1)]);
        d.push_row(&[Value::Missing, Value::Missing]);
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.row(0), vec![Value::Real(0.5), Value::Categorical(1)]);
        assert_eq!(d.row(1), vec![Value::Missing, Value::Missing]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_row_rejects_bad_code() {
        let mut d = Dataset::empty(Schema::new(vec![Feature::categorical("b", 2)]));
        d.push_row(&[Value::Categorical(5)]);
    }

    #[test]
    fn vstack_concatenates() {
        let d = mixed();
        let s = d.vstack(&d);
        assert_eq!(s.n_rows(), 8);
        assert_eq!(s.value(4, 0), Value::Real(1.0));
    }

    #[test]
    fn from_real_rows_transposes() {
        let d = Dataset::from_real_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.column(1).as_real().unwrap(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn approx_bytes_counts_storage() {
        let d = mixed();
        assert_eq!(d.approx_bytes(), 4 * 8 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn new_rejects_ragged_columns() {
        Dataset::new(
            Schema::all_real(2),
            vec![Column::Real(vec![1.0].into()), Column::Real(vec![1.0, 2.0].into())],
        );
    }

    #[test]
    fn present_reals_skips_nan() {
        let d = mixed();
        assert_eq!(d.column(0).present_reals(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let d = mixed();
        assert_eq!(d.fingerprint(), mixed().fingerprint());
        // A single changed cell changes the fingerprint.
        let mut other = DatasetBuilder::new()
            .real("expr", vec![1.0, 2.0, f64::NAN, 4.5])
            .categorical("snp", 3, vec![0, 1, 2, MISSING_CODE])
            .build();
        assert_ne!(d.fingerprint(), other.fingerprint());
        // Row order matters.
        other = d.select_rows(&[3, 2, 1, 0]);
        assert_ne!(d.fingerprint(), other.fingerprint());
        // A renamed feature matters.
        let renamed = DatasetBuilder::new()
            .real("expr2", vec![1.0, 2.0, f64::NAN, 4.0])
            .categorical("snp", 3, vec![0, 1, 2, MISSING_CODE])
            .build();
        assert_ne!(d.fingerprint(), renamed.fingerprint());
    }
}
