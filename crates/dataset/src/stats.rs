//! Small numeric helpers shared across the workspace.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (n−1 denominator); `None` for fewer than two
/// points. Computed with the numerically stable two-pass formula.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Unbiased sample standard deviation; `None` for fewer than two points.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population (biased, n denominator) variance; `None` for an empty slice.
pub fn population_variance(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / xs.len() as f64)
}

/// Median of a slice (averaging the two central order statistics for even
/// lengths); `None` for an empty slice. NaNs are sorted last and should be
/// filtered by the caller when meaningful.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Minimum ignoring NaNs; `None` if no finite values.
pub fn finite_min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| x.is_finite()).fold(None, |acc, x| {
        Some(acc.map_or(x, |a: f64| a.min(x)))
    })
}

/// Maximum ignoring NaNs; `None` if no finite values.
pub fn finite_max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| x.is_finite()).fold(None, |acc, x| {
        Some(acc.map_or(x, |a: f64| a.max(x)))
    })
}

/// Interquartile range via the linear-interpolation quantile rule;
/// `None` for fewer than two points.
pub fn iqr(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(quantile_sorted(&v, 0.75) - quantile_sorted(&v, 0.25))
}

/// Linear-interpolation quantile of an already-sorted slice, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Natural-log Gaussian pdf value at `x` for mean `mu` and std `sigma`.
///
/// For `sigma <= 0`, returns a degenerate spike: 0 density away from the
/// mean, a large finite log-density at it (keeps NS sums finite when a
/// residual distribution collapses, which happens for perfectly predictable
/// features in small training sets).
pub fn log_gaussian_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    /// Cap used for degenerate (zero-variance) error models; e^{+37} ≈ 1e16
    /// keeps scores finite and comparable.
    const DEGENERATE_LOG_DENSITY: f64 = 37.0;
    if sigma <= 0.0 || !sigma.is_finite() {
        return if (x - mu).abs() < 1e-12 {
            DEGENERATE_LOG_DENSITY
        } else {
            -DEGENERATE_LOG_DENSITY
        };
    }
    let z = (x - mu) / sigma;
    -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(population_variance(&[1.0]), Some(0.0));
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn finite_extrema_skip_nan() {
        let xs = [f64::NAN, 2.0, -1.0, f64::INFINITY];
        assert_eq!(finite_min(&xs), Some(-1.0));
        assert_eq!(finite_max(&xs), Some(2.0));
        assert_eq!(finite_min(&[f64::NAN]), None);
    }

    #[test]
    fn quantiles_and_iqr() {
        let v: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 5.0);
        assert_eq!(quantile_sorted(&v, 0.5), 3.0);
        assert_eq!(iqr(&v), Some(2.0));
    }

    #[test]
    fn log_gaussian_matches_closed_form() {
        // N(0,1) at 0: log(1/sqrt(2π)).
        let expect = -0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((log_gaussian_pdf(0.0, 0.0, 1.0) - expect).abs() < 1e-12);
        // Scaling: N(μ,σ) at μ is N(0,1) at 0 minus ln σ.
        assert!(
            (log_gaussian_pdf(5.0, 5.0, 2.0) - (expect - 2.0f64.ln())).abs() < 1e-12
        );
    }

    #[test]
    fn log_gaussian_degenerate_sigma() {
        assert!(log_gaussian_pdf(1.0, 1.0, 0.0) > 0.0);
        assert!(log_gaussian_pdf(2.0, 1.0, 0.0) < 0.0);
        assert!(log_gaussian_pdf(2.0, 1.0, f64::NAN).is_finite());
    }
}
